"""API_HTTP — round-trip latency and concurrent throughput of the HTTP facade.

The v1 API is the seam every frontend plugs into (ROADMAP "Versioned
query API"); this bench prices the facade itself:

1. **Round-trip latency** — cold (index matmuls) vs warm (LRU hit)
   ``POST /v1/search`` over a real socket, so the number includes JSON
   encode/decode and HTTP framing.  The warm path must stay under a
   couple of milliseconds — the transport must not squander what the
   result cache saves.
2. **Concurrent clients** — N threads hammering one
   ``ThreadingHTTPServer`` sharing the memory-mapped index; aggregate
   throughput must not collapse as clients are added, and every answer
   must be identical (the consistency contract of the shared index).
3. **Multi-core batches** — ``POST /v1/search/batch`` against a
   ``n_procs=2`` facade (worker processes mmap-sharing the index store)
   vs the single-process facade: identical answers, and the multi-core
   numbers land in ``benchmarks/results/BENCH_4.json``.
4. **Deep export vs paging** — pulling the *whole* ranking through
   ``POST /v1/search/export`` (one chunked NDJSON stream) vs paging
   ``/v1/search`` to exhaustion with the same slice size: identical
   rows asserted, export must be at least 2x faster (it pays one HTTP
   round trip, one cache lookup, and one metadata serialization for
   the entire ranking), numbers in ``benchmarks/results/BENCH_5.json``.
5. **Sharded scatter-gather vs one node** — the same cold queries
   through a 3-shard ``RouterService`` topology vs a single-node
   facade, sequential client (the shape the sharded tier accelerates:
   each query's scoring fans out across shard nodes concurrently).
   Rankings asserted identical; on a multi-core host sharded
   throughput must not fall below single-node; numbers in
   ``benchmarks/results/BENCH_6.json``.
"""

from __future__ import annotations

import http.client
import json
import math
import os
import threading
import time
import urllib.request
from urllib.parse import urlsplit

import pytest

from repro.api.aio import LoopGroup
from repro.api.app import ApiApp
from repro.api.http import serve
from repro.cluster_serving import build_local_topology
from repro.spell import SpellService
from repro.util.rng import default_rng
from repro.util.timing import Stopwatch

from benchmarks.conftest import update_json_report, write_report

N_LATENCY_QUERIES = 24
QUERY_SIZE = 4
CLIENT_COUNTS = (1, 2, 4, 8)
REQUESTS_PER_CLIENT = 12
AIO_CLIENTS = 8
AIO_REQUESTS_PER_CLIENT = 25
# deep pages tilt per-request cost toward server-side JSON encode, so the
# facade under test — not the GIL-bound measuring client — is the bottleneck
AIO_PAGE_SIZE = 100


def _latency_percentiles(ordered: list[float]) -> dict[str, float]:
    """Nearest-rank p50/p95/p99 over an already-sorted latency list."""

    def pick(q: float) -> float:
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    return {"p50": pick(50), "p95": pick(95), "p99": pick(99)}


def _run_keepalive_clients(
    host: str,
    port: int,
    genes: list[str],
    n_clients: int,
    n_requests: int,
    expected_rows: list | None = None,
    page_size: int = 20,
) -> tuple[float, float, list[float]]:
    """N threads, one persistent HTTP connection each, timing every request.

    Keep-alive is the point: per-request connections would price TCP
    setup instead of the serving tier, and could never exercise the
    async facade's connection reuse.  Returns ``(qps, wall_seconds,
    sorted per-request latencies)``.  With ``expected_rows`` every
    response is parsed and checked; without it only the status is
    checked, keeping the GIL-bound client process cheap enough that the
    *server* stays the measured bottleneck.
    """
    payload = json.dumps({"genes": genes, "page_size": page_size}).encode()
    latencies: list[float] = []
    errors: list[Exception] = []
    mismatches: list[int] = []
    lock = threading.Lock()

    def client(idx: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            for _ in range(n_requests):
                start = time.perf_counter()
                conn.request(
                    "POST",
                    "/v1/search",
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                data = resp.read()
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    if resp.status != 200:
                        errors.append(
                            RuntimeError(f"HTTP {resp.status}: {data[:200]!r}")
                        )
                    elif (
                        expected_rows is not None
                        and json.loads(data)["gene_rows"] != expected_rows
                    ):
                        mismatches.append(idx)
        except Exception as exc:  # pragma: no cover - diagnostic
            with lock:
                errors.append(exc)
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    with Stopwatch() as sw:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors, f"{n_clients} keep-alive clients: {errors[0]!r}"
    assert not mismatches, f"inconsistent answers from clients {mismatches}"
    assert len(latencies) == n_clients * n_requests
    qps = len(latencies) / sw.elapsed if sw.elapsed > 0 else float("inf")
    return qps, sw.elapsed, sorted(latencies)


@pytest.fixture(scope="module")
def live_facade(spell_bench):
    """A live threaded server over the FIG4 compendium + a query batch."""
    comp, truth = spell_bench
    service = SpellService(comp, n_workers=4)
    app = ApiApp(service)
    server = serve(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    universe = comp.gene_universe()
    rng = default_rng(20260729)
    queries = [list(truth.query_genes)]
    while len(queries) < N_LATENCY_QUERIES:
        picks = rng.choice(len(universe), size=QUERY_SIZE, replace=False)
        queries.append([universe[int(p)] for p in picks])

    yield base, queries
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post_search(base: str, genes: list[str], page_size: int = 20) -> dict:
    request = urllib.request.Request(
        base + "/v1/search",
        data=json.dumps({"genes": genes, "page_size": page_size}).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as resp:
        return json.loads(resp.read())


def test_http_roundtrip_latency(live_facade):
    """Cold vs warm-cache POST /v1/search over a real socket."""
    base, queries = live_facade
    with Stopwatch() as sw_cold:
        for genes in queries:
            _post_search(base, genes)
    cold = sw_cold.elapsed / len(queries)
    with Stopwatch() as sw_warm:  # every query now hits the LRU
        for genes in queries:
            _post_search(base, genes)
    warm = sw_warm.elapsed / len(queries)
    speedup = cold / warm if warm > 0 else float("inf")

    write_report(
        "API_HTTP_LATENCY",
        "HTTP facade: cold vs warm-cache search round-trip",
        ["path", "mean round-trip", "requests/sec"],
        [
            ["cold (index search)", f"{cold * 1e3:.3f} ms", f"{1.0 / cold:.0f}"],
            ["warm (cache hit)", f"{warm * 1e3:.3f} ms", f"{1.0 / warm:.0f}"],
        ],
        notes=(
            f"{len(queries)} distinct queries over the 40-dataset FIG4 "
            f"compendium; warm/cold speedup {speedup:.1f}x.  Round-trips "
            "include JSON + HTTP framing, so the transport overhead bounds "
            "the warm path."
        ),
    )
    update_json_report(
        "BENCH_4",
        {
            "http_latency": {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "speedup": speedup,
                "n_queries": len(queries),
            }
        },
    )
    assert warm < cold  # the cache must still be visible through the socket
    assert warm < 0.25, f"warm HTTP round-trip is {warm * 1e3:.1f} ms"


def test_http_concurrent_throughput(live_facade):
    """Aggregate throughput and tail latency as keep-alive clients are added."""
    base, queries = live_facade
    genes = queries[0]
    expected = _post_search(base, genes)["gene_rows"]
    parts = urlsplit(base)

    rows = []
    qps_by_clients = {}
    latency_by_clients = {}
    for n_clients in CLIENT_COUNTS:
        qps, wall, latencies = _run_keepalive_clients(
            parts.hostname,
            parts.port,
            genes,
            n_clients,
            REQUESTS_PER_CLIENT,
            expected_rows=expected,
        )
        pct = _latency_percentiles(latencies)
        qps_by_clients[n_clients] = qps
        latency_by_clients[n_clients] = pct
        rows.append(
            [
                n_clients,
                len(latencies),
                f"{wall * 1e3:.1f} ms",
                f"{qps:.0f}",
                f"{pct['p50'] * 1e3:.2f} ms",
                f"{pct['p95'] * 1e3:.2f} ms",
                f"{pct['p99'] * 1e3:.2f} ms",
            ]
        )

    write_report(
        "API_HTTP_THROUGHPUT",
        "HTTP facade: concurrent keep-alive client throughput (warm cache)",
        ["clients", "requests", "wall time", "requests/sec", "p50", "p95", "p99"],
        rows,
        notes=(
            "All clients reuse one keep-alive connection each and issue the "
            "same warm-cache query against one ThreadingHTTPServer sharing "
            "the index; answers are checked identical.  Throughput must not "
            "collapse as clients are added; percentiles are nearest-rank "
            "over every request."
        ),
    )
    update_json_report(
        "BENCH_4",
        {
            "http_concurrent": {
                "requests_per_client": REQUESTS_PER_CLIENT,
                "qps_by_clients": {str(k): v for k, v in qps_by_clients.items()},
                "latency_ms_by_clients": {
                    str(k): {name: v * 1e3 for name, v in pct.items()}
                    for k, pct in latency_by_clients.items()
                },
            }
        },
    )
    # concurrency must never cost more than ~40% of single-client throughput
    assert qps_by_clients[max(CLIENT_COUNTS)] > 0.6 * qps_by_clients[1], (
        f"throughput collapsed under concurrency: {qps_by_clients}"
    )


def test_http_export_vs_paged_deep_result(live_facade):
    """Full-universe export: one chunked stream vs paging to exhaustion.

    The SPELL-style downstream consumer (enrichment pipelines) wants the
    *entire* ranking; before ``/v1/search/export`` it had to page
    ``/v1/search`` call-by-call, re-hitting the cache and re-serializing
    overlapping metadata every round trip.  Both paths are timed warm
    (the result itself is cached) so the comparison prices the
    transport, which is exactly what the export endpoint exists to
    collapse.  Rows must be bit-identical; export must be >= 2x faster.
    """
    base, queries = live_facade
    genes = queries[0]
    slice_size = 20  # a realistic web-page size; the deep client's handicap

    def fetch_paged() -> list:
        rows: list = []
        page = 0
        while True:
            request = urllib.request.Request(
                base + "/v1/search",
                data=json.dumps(
                    {"genes": genes, "page": page, "page_size": slice_size}
                ).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=60) as resp:
                body = json.loads(resp.read())
            rows.extend(body["gene_rows"])
            page += 1
            if page >= body["total_pages"]:
                return rows

    def fetch_export() -> tuple[list, dict]:
        request = urllib.request.Request(
            base + "/v1/search/export",
            data=json.dumps({"genes": genes, "chunk_size": slice_size}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            lines = [line for line in resp.read().split(b"\n") if line]
        parsed = [json.loads(line) for line in lines]
        trailer = parsed[-1]
        assert trailer["kind"] == "trailer" and trailer["status"] == "ok"
        return [row for c in parsed[:-1] for row in c["gene_rows"]], trailer

    paged_rows = fetch_paged()  # warm the result cache for both paths
    paged_time = float("inf")
    export_time = float("inf")
    for _ in range(3):
        with Stopwatch() as sw:
            paged_rows = fetch_paged()
        paged_time = min(paged_time, sw.elapsed)
        with Stopwatch() as sw:
            export_rows, trailer = fetch_export()
        export_time = min(export_time, sw.elapsed)

    assert export_rows == paged_rows, "export stream diverged from paged rows"
    assert trailer["total_rows"] == len(export_rows)
    speedup = paged_time / export_time if export_time > 0 else float("inf")
    n_pages = -(-len(paged_rows) // slice_size)

    write_report(
        "API_HTTP_EXPORT",
        "HTTP facade: deep result via /v1/search/export vs paged /v1/search",
        ["path", "requests", "rows", "wall time", "rows/sec"],
        [
            ["paged /v1/search", n_pages, len(paged_rows),
             f"{paged_time * 1e3:.1f} ms", f"{len(paged_rows) / paged_time:.0f}"],
            ["/v1/search/export", 1, len(export_rows),
             f"{export_time * 1e3:.1f} ms", f"{len(export_rows) / export_time:.0f}"],
        ],
        notes=(
            f"Full-universe ranking ({len(export_rows)} rows) in slices of "
            f"{slice_size}, warm cache; export streamed {trailer['n_chunks']} "
            f"chunks over one chunked response and came back {speedup:.1f}x "
            "faster.  Rows are asserted bit-identical, and the trailer "
            "checksum covers the streamed bytes."
        ),
    )
    update_json_report(
        "BENCH_5",
        {
            "export_vs_paged": {
                "rows": len(export_rows),
                "slice_size": slice_size,
                "paged_requests": n_pages,
                "paged_seconds": paged_time,
                "export_seconds": export_time,
                "speedup": speedup,
                "export_chunks": trailer["n_chunks"],
            }
        },
    )
    assert speedup >= 2.0, (
        f"deep export only {speedup:.2f}x faster than paging "
        f"({export_time * 1e3:.1f} ms vs {paged_time * 1e3:.1f} ms)"
    )


def test_http_batch_multiproc_consistent_and_reported(
    spell_bench, tmp_path_factory
):
    """POST /v1/search/batch against a single-process and an n_procs=2
    facade: answers must be identical; throughput of both is recorded
    (the hard multi-proc-beats-single-proc gate lives in
    bench_service_throughput, away from HTTP framing noise)."""
    comp, truth = spell_bench
    universe = comp.gene_universe()
    rng = default_rng(20260730)
    queries = [list(truth.query_genes)]
    while len(queries) < 16:
        picks = rng.choice(len(universe), size=QUERY_SIZE, replace=False)
        queries.append([universe[int(p)] for p in picks])
    payload = {
        "searches": [
            {"genes": q, "page_size": 20, "use_cache": False} for q in queries
        ]
    }
    body = json.dumps(payload).encode()

    def boot(**service_kw):
        service = SpellService(comp, cache_size=0, **service_kw)
        app = ApiApp(service)
        server = serve(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return service, server, thread, f"http://{host}:{port}"

    def post_batch(base: str) -> dict:
        request = urllib.request.Request(
            base + "/v1/search/batch", data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            return json.loads(resp.read())

    store = tmp_path_factory.mktemp("spell-http-proc-store")
    facades = {
        "1 process, 2 threads": boot(n_workers=2),
        "2 processes (mmap store)": boot(n_procs=2, store_dir=store),
    }
    rows = []
    qps = {}
    answers = {}
    try:
        for label, (service, _, _, base) in facades.items():
            post_batch(base)  # warm up (spawns the pool on the proc facade)
            best = float("inf")
            for _ in range(3):
                with Stopwatch() as sw:
                    response = post_batch(base)
                best = min(best, sw.elapsed)
            answers[label] = [r["gene_rows"] for r in response["results"]]
            qps[label] = len(queries) / best
            rows.append([label, f"{best * 1e3:.1f} ms", f"{qps[label]:.0f}"])
    finally:
        for service, server, thread, _ in facades.values():
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    first, second = answers.values()
    assert first == second, "multi-proc facade served different rankings"
    cores = os.cpu_count() or 1
    write_report(
        "API_HTTP_BATCH",
        "HTTP facade: /v1/search/batch single-process vs process pool",
        ["facade", "batch wall time", "queries/sec"],
        rows,
        notes=(
            f"{len(queries)} cold queries per batch over HTTP on a "
            f"{cores}-core host; both facades returned identical rankings "
            "(asserted)."
        ),
    )
    update_json_report(
        "BENCH_4",
        {
            "http_batch": {
                "cores": cores,
                "single_proc_qps": qps["1 process, 2 threads"],
                "multi_proc_qps": qps["2 processes (mmap store)"],
            }
        },
    )


def test_http_sharded_vs_single_node(spell_bench):
    """Scatter-gather sharded serving vs one node, same queries over HTTP.

    A sequential client issues cold queries (``use_cache=False``) so every
    request prices real scoring.  The single-node facade scores all 40
    datasets in one process; the sharded facade routes each query through
    ``RouterService`` to three in-process shard nodes over real sockets
    and merges the partials.  Rankings must be identical (the oracle
    property, asserted through the full HTTP stack); on a multi-core host
    the per-query shard parallelism must at least pay for the RPC hop —
    sharded throughput >= single-node.  On one core only the overhead is
    visible, so the gate is informational there.
    """
    comp, _truth = spell_bench
    universe = comp.gene_universe()
    rng = default_rng(20260807)
    queries = []
    while len(queries) < 12:
        # 12-gene queries: enough matmul per request that the scoring the
        # shards parallelize dominates the fixed per-query RPC cost
        picks = rng.choice(len(universe), size=12, replace=False)
        queries.append([universe[int(p)] for p in picks])

    def boot(app):
        server = serve(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return server, thread, f"http://{host}:{port}"

    def post_cold(base: str, genes: list[str]) -> dict:
        request = urllib.request.Request(
            base + "/v1/search",
            data=json.dumps(
                {"genes": genes, "page_size": 20, "use_cache": False}
            ).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as resp:
            return json.loads(resp.read())

    service = SpellService(comp, cache_size=0)
    single_server, single_thread, single_base = boot(ApiApp(service))
    topology = build_local_topology(
        comp, n_shards=3, replication=1, cache_size=0
    )
    shard_server, shard_thread, shard_base = boot(ApiApp(topology.router))

    rows = []
    qps = {}
    try:
        # the oracle property survives the full stack: router + RPC + HTTP
        for genes in queries:
            single_body = post_cold(single_base, genes)
            sharded_body = post_cold(shard_base, genes)
            assert sharded_body["gene_rows"] == single_body["gene_rows"]
            assert sharded_body["dataset_rows"] == single_body["dataset_rows"]
            assert sharded_body["partial"] is False

        for label, base in (
            ("single node", single_base),
            ("3-shard router", shard_base),
        ):
            best = float("inf")
            for _ in range(3):
                with Stopwatch() as sw:
                    for genes in queries:
                        post_cold(base, genes)
                best = min(best, sw.elapsed)
            qps[label] = len(queries) / best
            rows.append(
                [label, f"{best * 1e3:.1f} ms",
                 f"{best / len(queries) * 1e3:.2f} ms", f"{qps[label]:.0f}"]
            )
    finally:
        for server, thread in (
            (single_server, single_thread), (shard_server, shard_thread)
        ):
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        topology.close()
        service.close()

    cores = os.cpu_count() or 1
    ratio = qps["3-shard router"] / qps["single node"]
    write_report(
        "API_HTTP_SHARDED",
        "HTTP facade: 3-shard scatter-gather router vs single node",
        ["serving tier", "batch wall time", "per query", "queries/sec"],
        rows,
        notes=(
            f"{len(queries)} cold queries, sequential client, {cores}-core "
            f"host; sharded/single throughput ratio {ratio:.2f}.  Rankings "
            "asserted bit-identical through the full router + RPC + HTTP "
            "stack before timing."
        ),
    )
    update_json_report(
        "BENCH_6",
        {
            "sharded_vs_single_node": {
                "cores": cores,
                "n_shards": 3,
                "n_queries": len(queries),
                "single_node_qps": qps["single node"],
                "sharded_qps": qps["3-shard router"],
                "ratio": ratio,
            }
        },
    )
    if cores >= 2:
        assert ratio >= 1.0, (
            f"sharded serving slower than single node on {cores} cores: "
            f"{qps['3-shard router']:.0f} vs {qps['single node']:.0f} qps"
        )


def test_async_vs_threaded_concurrent(spell_bench):
    """BENCH_8 gate: asyncio loop group vs the threaded facade, keep-alive.

    The threaded facade is one ``ThreadingHTTPServer`` process — every
    request thread contends on one GIL.  The async tier runs one loop
    worker *process* per core (capped at 4) on one ``SO_REUSEPORT``
    port, so warm-cache request handling (JSON + dict work, exactly
    what the GIL serializes) spreads across cores.  Both facades serve
    the same seed-424 FIG4 compendium; the oracle property (identical
    rankings through either facade) is asserted before any timing.  On
    >= 2 cores the loop group must deliver >= 2x the threaded facade's
    concurrent keep-alive QPS with no worse p99; on one core the
    numbers are informational (both tiers time-slice one CPU).
    """
    comp, truth = spell_bench
    genes = list(truth.query_genes)
    cores = os.cpu_count() or 1
    n_loops = max(2, min(4, cores))

    service = SpellService(comp, n_workers=4)
    threaded_server = serve(ApiApp(service), host="127.0.0.1", port=0)
    threaded_thread = threading.Thread(
        target=threaded_server.serve_forever, daemon=True
    )
    threaded_thread.start()
    t_host, t_port = threaded_server.server_address[:2]

    # each spawned worker rebuilds the exact spell_bench compendium
    # (same params, same seed) so the facades answer from identical data
    group = LoopGroup(
        n_loops=n_loops,
        factory_kwargs={
            "synth_datasets": 40,
            "n_relevant": 8,
            "synth_genes": 600,
            "synth_conditions": 20,
            "module_size": 30,
            "query_size": 5,
            "seed": 424,
            "n_workers": 4,
        },
    )
    qps = {}
    pct = {}
    try:
        group.start()
        expected = _post_search(
            f"http://{t_host}:{t_port}", genes, page_size=AIO_PAGE_SIZE
        )["gene_rows"]
        aio_rows = _post_search(
            f"http://{group.host}:{group.port}", genes, page_size=AIO_PAGE_SIZE
        )["gene_rows"]
        assert aio_rows == expected, "async facade diverged from threaded facade"

        for label, host, port in (
            ("threaded", t_host, t_port),
            ("async", group.host, group.port),
        ):
            # warm-up round checks every answer and, because the kernel
            # balances connections across loops, touches every worker's
            # cache; the measured round then skips client-side parsing so
            # the client cannot become the bottleneck
            _run_keepalive_clients(
                host,
                port,
                genes,
                AIO_CLIENTS,
                3,
                expected_rows=expected,
                page_size=AIO_PAGE_SIZE,
            )
            measured, _, latencies = _run_keepalive_clients(
                host,
                port,
                genes,
                AIO_CLIENTS,
                AIO_REQUESTS_PER_CLIENT,
                page_size=AIO_PAGE_SIZE,
            )
            qps[label] = measured
            pct[label] = _latency_percentiles(latencies)
    finally:
        group.stop()
        threaded_server.close()
        threaded_thread.join(timeout=5)
        service.close()

    ratio = qps["async"] / qps["threaded"] if qps["threaded"] > 0 else float("inf")
    rows = [
        [
            label,
            f"{qps[label]:.0f}",
            f"{pct[label]['p50'] * 1e3:.2f} ms",
            f"{pct[label]['p95'] * 1e3:.2f} ms",
            f"{pct[label]['p99'] * 1e3:.2f} ms",
        ]
        for label in ("threaded", "async")
    ]
    write_report(
        "API_AIO_THROUGHPUT",
        "Async loop group vs threaded facade: concurrent keep-alive clients",
        ["facade", "requests/sec", "p50", "p95", "p99"],
        rows,
        notes=(
            f"{AIO_CLIENTS} keep-alive clients x {AIO_REQUESTS_PER_CLIENT} "
            f"warm-cache searches on a {cores}-core host; async tier ran "
            f"{n_loops} SO_REUSEPORT loop processes, threaded tier one "
            f"ThreadingHTTPServer process.  QPS ratio {ratio:.2f}x.  "
            "Rankings asserted identical across facades before timing."
        ),
    )
    update_json_report(
        "BENCH_8",
        {
            "async_vs_threaded": {
                "cores": cores,
                "loops": n_loops,
                "clients": AIO_CLIENTS,
                "requests_per_client": AIO_REQUESTS_PER_CLIENT,
                "page_size": AIO_PAGE_SIZE,
                "threaded_qps": qps["threaded"],
                "async_qps": qps["async"],
                "qps_ratio": ratio,
                "threaded_latency_ms": {
                    name: v * 1e3 for name, v in pct["threaded"].items()
                },
                "async_latency_ms": {
                    name: v * 1e3 for name, v in pct["async"].items()
                },
            }
        },
    )
    if cores >= 2:
        assert ratio >= 2.0, (
            f"async facade only {ratio:.2f}x threaded QPS on {cores} cores "
            f"({qps['async']:.0f} vs {qps['threaded']:.0f})"
        )
        assert pct["async"]["p99"] <= pct["threaded"]["p99"], (
            f"async p99 regressed: {pct['async']['p99'] * 1e3:.2f} ms vs "
            f"threaded {pct['threaded']['p99'] * 1e3:.2f} ms"
        )
