"""SCALE — §1's data-scale claims.

"A typical genomic dataset now includes 6,000 to 50,000 gene
measurements over hundreds of experiments" and compendia reach
"well over a quarter billion microarray measurements".

Sweep dataset sizes across the paper's quoted range and time the
operations ForestView performs on them: load (synthesis stands in for
parsing), normalization, merged-interface construction, selection
propagation, and a global-view render.  Memory footprints are reported
so the quarter-billion compendium can be extrapolated.
"""

import time

import numpy as np
import pytest

from repro.core import ForestView
from repro.data import Compendium, Dataset, ExpressionMatrix, MergedDatasetInterface, zscore_normalize
from repro.synth import systematic_names
from repro.util.formatting import human_bytes, human_count

from benchmarks.conftest import write_report

#: (n_genes, n_conditions) spanning §1's quoted range.
SWEEP = [(6_000, 100), (22_000, 200), (50_000, 400)]


def make_big(n_genes: int, n_cond: int, seed: int) -> Dataset:
    """Direct noise matrix (module planting is irrelevant to scale timing)."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n_genes, n_cond)).astype(np.float64)
    values[rng.random(values.shape) < 0.02] = np.nan
    return Dataset(
        name=f"scale_{n_genes}x{n_cond}",
        matrix=ExpressionMatrix(
            values, systematic_names(n_genes), [f"c{i}" for i in range(n_cond)]
        ),
    )


@pytest.fixture(scope="module")
def largest():
    return make_big(*SWEEP[-1], seed=1)


def test_scale_selection_on_largest(benchmark, largest):
    """Time: selection propagation on the 50k x 400 dataset."""
    app = ForestView.from_compendium(Compendium([largest]))
    genes = largest.gene_ids[:200]

    def select():
        app.select_genes(genes, source="scale")
        return app.zoom_views()

    views = benchmark(select)
    assert views[0].n_rows == 200


def test_scale_sweep_report():
    rows = []
    total_measurements = 0
    for n_genes, n_cond in SWEEP:
        t0 = time.perf_counter()
        ds = make_big(n_genes, n_cond, seed=n_genes)
        t_load = time.perf_counter() - t0

        t0 = time.perf_counter()
        zscore_normalize(ds)
        t_norm = time.perf_counter() - t0

        comp = Compendium([ds])
        t0 = time.perf_counter()
        merged = MergedDatasetInterface(comp)
        _ = merged.dataset_slab(0, ds.gene_ids[:100])
        t_merged = time.perf_counter() - t0

        app = ForestView.from_compendium(comp)
        t0 = time.perf_counter()
        app.select_genes(ds.gene_ids[:100], source="scale")
        app.zoom_views()
        t_select = time.perf_counter() - t0

        measurements = ds.measurement_count()
        total_measurements += measurements
        rows.append(
            [
                f"{n_genes}x{n_cond}",
                human_count(measurements),
                human_bytes(ds.matrix.values.nbytes),
                f"{t_load * 1000:.0f} ms",
                f"{t_norm * 1000:.0f} ms",
                f"{t_merged * 1000:.0f} ms",
                f"{t_select * 1000:.0f} ms",
            ]
        )
        assert t_select < 5.0, "selection must stay interactive at paper scale"

    quarter_billion = 250_000_000
    per_measure_bytes = 8
    rows.append(
        [
            "quarter-billion compendium",
            human_count(quarter_billion),
            human_bytes(quarter_billion * per_measure_bytes),
            "(extrapolated)",
            "",
            "",
            "",
        ]
    )
    write_report(
        "SCALE",
        "dataset-scale sweep over §1's quoted sizes",
        ["dataset", "measurements", "memory", "load", "normalize", "merged access", "select+sync"],
        rows,
        notes=(
            "Selection propagation stays interactive (<5 s) across the full "
            "6k-50k gene range the paper quotes; the quarter-billion-measurement "
            "compendium fits in ~2 GB at float64, i.e. analyzable on one node."
        ),
    )


def test_scale_merged_gene_scan(benchmark):
    """Time: the cross-dataset gene scan on a 10-dataset merged view."""
    datasets = [make_big(6_000, 50, seed=i) for i in range(10)]
    comp = Compendium(
        [Dataset(name=f"d{i}", matrix=ds.matrix) for i, ds in enumerate(datasets)]
    )
    merged = MergedDatasetInterface(comp)
    gene = comp[0].gene_ids[123]

    slab = benchmark(merged.gene_slice, gene)
    assert slab.shape == (10, 50)
