"""INTERACT — sustained interactivity on the wall (extension of FIG3).

The paper's value proposition is *dynamic* analysis: collaborators pan,
zoom and re-select live at the wall (Figure 3).  This bench runs a
scripted scroll animation through the swap-locked frame-sequence driver
and reports sustained frame rate versus render-node count, plus the cost
of pointer hit-testing — the end-to-end latency budget of an interactive
wall session.
"""

import pytest

from repro.core import ForestView
from repro.wall import (
    DisplayWall,
    FrameSequenceDriver,
    WallGeometry,
    WallInputRouter,
)

from benchmarks.conftest import write_report

GEO = WallGeometry(rows=2, cols=3, tile_width=260, tile_height=200)


@pytest.fixture(scope="module")
def app(case_study_bench):
    comp, truth = case_study_bench
    application = ForestView.from_compendium(comp, cluster_genes=True)
    application.select_genes(list(truth.esr_all), source="interact")
    application.sync_layer.shared_viewport.set_zoom(8)
    return application


def test_interact_hit_testing(benchmark, app):
    """Time: one pointer hit-test on the wall canvas."""
    router = WallInputRouter(app, GEO)
    hit = benchmark(router.hit_test, GEO.canvas_width // 2, GEO.canvas_height // 2)
    assert hit.tile_id is not None


def test_interact_scroll_frame(benchmark, app):
    """Time: one scroll step + frame on a 4-node wall."""
    wall = DisplayWall(GEO, n_nodes=4, schedule="dynamic")

    def one_frame():
        app.sync_layer.shared_viewport.scroll_by(1)
        dl = app.display_list(GEO.canvas_width, GEO.canvas_height)
        return wall.render(dl)

    frame = benchmark.pedantic(one_frame, rounds=3, iterations=1)
    assert frame.metrics.n_tiles == GEO.n_tiles


def test_interact_fps_series(app):
    """Sustained FPS of a 6-frame scroll animation vs node count."""
    rows = []
    for n_nodes in (1, 2, 4):
        wall = DisplayWall(GEO, n_nodes=n_nodes, schedule="dynamic")
        app.sync_layer.shared_viewport.scroll_to(0)
        driver = FrameSequenceDriver(
            wall, lambda: app.display_list(GEO.canvas_width, GEO.canvas_height)
        )
        stats = driver.run(FrameSequenceDriver.scroll_steps(app, 2, 6))
        rows.append(
            [
                n_nodes,
                f"{stats.fps:.1f}",
                f"{stats.mean_frame_seconds() * 1000:.0f} ms",
                f"{stats.worst_frame_seconds() * 1000:.0f} ms",
                f"{sum(stats.update_seconds) / len(stats.update_seconds) * 1000:.1f} ms",
            ]
        )
    write_report(
        "INTERACT",
        "sustained scroll-animation frame rate on the wall (6 tiles)",
        ["render nodes", "fps", "mean frame", "worst frame", "state update"],
        rows,
        notes=(
            "Swap-locked sequence: frame N is complete on every tile before "
            "frame N+1 begins, matching the wall's synchronized-swap discipline."
        ),
    )
    # interactivity floor: the wall sustains at least 1 fps in-simulation
    assert all(float(r[1]) >= 1.0 for r in rows)
