"""BENCH_9 — cold-tier storage economics and resumable-export overhead.

Three gates on the PR-9 durability layer:

1. **Compression** — demoting float32 shards to the cold tier
   (deflate-in-zip over the exact ``.npy`` bytes) must shrink them
   >= 2x on a realistically sparse compendium (SPELL normalization
   zeroes missing measurements, and real microarray compendia are
   full of them).
2. **Promotion latency** — a search served right after
   ``IndexStore.promote`` must land within 5x the warm (always
   resident) search latency: tiering is allowed to cost a cold start,
   never steady-state serving.
3. **Resume overhead** — an export interrupted at a chunk boundary and
   resumed via ``resume_offset`` must cost <= 10% more wall time than
   the same export streamed uninterrupted (the resumed request re-hits
   the result cache; only the skipped-prefix bookkeeping is new).

Every gate asserts bit-identical results before it times anything —
speed from a different answer is a bug, not a win.
"""

from __future__ import annotations

import json
import statistics

import numpy as np
import pytest

from repro.api.app import ApiApp
from repro.spell import SpellService
from repro.spell.index import SpellIndex
from repro.spell.store import IndexStore
from repro.synth import make_spell_compendium
from repro.util.timing import Stopwatch

from benchmarks.conftest import update_json_report, write_report

#: Export slice: small enough that resume skips a real prefix.
EXPORT_CHUNK = 64
#: Timing repeats; medians keep one scheduler hiccup from gating.
REPEATS = 7


def _timed(fn) -> float:
    with Stopwatch() as sw:
        fn()
    return sw.elapsed


@pytest.fixture(scope="module")
def tiering_bench():
    """Sparse float32-friendly compendium: missing measurements (zeroed
    by normalization) make the shards genuinely compressible, like the
    incomplete microarray submissions SPELL actually serves."""
    return make_spell_compendium(
        n_datasets=12,
        n_relevant=4,
        n_genes=800,
        n_conditions=40,
        module_size=30,
        query_size=4,
        missing_fraction=0.65,
        seed=909,
    )


@pytest.fixture(scope="module")
def export_bench():
    """Universe-heavy compendium: the export streams thousands of rows,
    so per-stream wall time dwarfs per-request fixed cost and the
    resume-overhead ratio measures the thing it claims to."""
    return make_spell_compendium(
        n_datasets=8,
        n_relevant=3,
        n_genes=4000,
        n_conditions=12,
        module_size=30,
        query_size=4,
        seed=910,
    )


def _rows(result):
    return [(g.gene_id, g.score, g.n_datasets) for g in result.genes]


def test_cold_tier_compression_and_promotion_latency(
    tiering_bench, tmp_path_factory
):
    comp, truth = tiering_bench
    store = tmp_path_factory.mktemp("tiering-store")
    index = SpellIndex.build(comp, dtype=np.float32)
    IndexStore.save(index, store)
    names = [ds.name for ds in comp]
    query = list(truth.query_genes)

    # warm baseline: resident store, arrays in RAM, best-of-N search
    warm_index = IndexStore.load(store, mmap=False)
    warm_rows = _rows(warm_index.search(query))
    t_warm = min(
        _timed(lambda: warm_index.search(query)) for _ in range(REPEATS)
    )

    resident_bytes = sum(p.stat().st_size for p in store.glob("shard-*.npy"))
    with Stopwatch() as sw_demote:
        demoted = IndexStore.demote(store, names)
    assert demoted == tuple(names)
    cold_bytes = sum(p.stat().st_size for p in store.glob("shard-*.npz"))
    ratio = resident_bytes / cold_bytes

    # a fully cold store still serves (decompress-verify into RAM) ...
    cold_served = IndexStore.load(store)
    assert _rows(cold_served.search(query)) == warm_rows

    # ... and promotion restores the resident tier bit-identically
    with Stopwatch() as sw_promote:
        promoted = IndexStore.promote(store, names, bind=comp)
    assert promoted == tuple(names)
    promoted_index = IndexStore.load(store, mmap=False)
    assert _rows(promoted_index.search(query)) == warm_rows
    t_promoted = min(
        _timed(lambda: promoted_index.search(query))
        for _ in range(REPEATS)
    )

    write_report(
        "STORE_TIERING",
        "Cold-tier compression and promotion latency (float32 shards)",
        ["metric", "value", "notes"],
        [
            ["resident bytes", f"{resident_bytes / 2**20:.2f} MiB",
             f"{len(names)} shards"],
            ["cold bytes", f"{cold_bytes / 2**20:.2f} MiB",
             f"deflate in zip, ratio {ratio:.2f}x"],
            ["demote (all shards)", f"{sw_demote.elapsed * 1e3:.1f} ms",
             "verify + compress + manifest publish"],
            ["promote (all shards)", f"{sw_promote.elapsed * 1e3:.1f} ms",
             "decompress + re-verify + manifest publish"],
            ["warm search", f"{t_warm * 1e3:.2f} ms", "resident baseline"],
            ["search after promote", f"{t_promoted * 1e3:.2f} ms",
             f"{t_promoted / t_warm:.2f}x warm"],
        ],
        notes=(
            f"{comp.total_measurements()} measurements at missing_fraction="
            "0.65; all three serving paths (resident, cold-loaded, promoted) "
            "asserted bit-identical before timing."
        ),
    )
    update_json_report(
        "BENCH_9",
        {
            "cold_tier": {
                "shards": len(names),
                "resident_bytes": resident_bytes,
                "cold_bytes": cold_bytes,
                "compression_ratio": ratio,
                "demote_seconds": sw_demote.elapsed,
                "promote_seconds": sw_promote.elapsed,
                "warm_search_seconds": t_warm,
                "promoted_search_seconds": t_promoted,
                "promoted_over_warm": t_promoted / t_warm,
            }
        },
    )
    assert ratio >= 2.0, f"cold tier only compressed {ratio:.2f}x (< 2x gate)"
    assert t_promoted <= 5.0 * t_warm, (
        f"search after promotion {t_promoted * 1e3:.2f} ms vs warm "
        f"{t_warm * 1e3:.2f} ms (> 5x gate)"
    )


def test_resumed_export_overhead(export_bench):
    comp, truth = export_bench
    genes = list(truth.query_genes)
    payload = {"genes": genes, "chunk_size": EXPORT_CHUNK}

    with SpellService(comp) as service:
        app = ApiApp(service)

        def run_full() -> list[bytes]:
            return list(app.export(dict(payload)))

        full = run_full()  # warms the result cache, like a live server
        n_chunks = len(full) - 1
        assert n_chunks >= 4, "ranking too small to interrupt meaningfully"
        cut = n_chunks // 2
        offset = cut * EXPORT_CHUNK

        def run_spliced() -> list[bytes]:
            stream = app.export(dict(payload))
            prefix: list[bytes] = []
            for line in stream:
                prefix.append(line)
                if len(prefix) == cut:
                    break
            stream.close()  # the client vanished mid-stream
            resumed = list(
                app.export(dict(payload, resume_offset=offset))
            )
            return prefix + resumed

        # correctness before timing: the spliced stream's chunk lines are
        # byte-identical to the uninterrupted export's
        assert run_spliced()[:-1] == full[:-1]
        trailer = json.loads(run_spliced()[-1])
        assert trailer["status"] == "ok"
        assert trailer["resume_offset"] == offset

        t_full = statistics.median(
            _timed(run_full) for _ in range(REPEATS)
        )
        t_spliced = statistics.median(
            _timed(run_spliced) for _ in range(REPEATS)
        )

    overhead = t_spliced / t_full - 1.0
    write_report(
        "STORE_EXPORT_RESUME",
        "Resumable export: interrupted+resumed vs uninterrupted stream",
        ["path", "wall time", "notes"],
        [
            ["uninterrupted export", f"{t_full * 1e3:.2f} ms",
             f"{n_chunks} chunks x {EXPORT_CHUNK} rows"],
            ["interrupt at chunk boundary + resume", f"{t_spliced * 1e3:.2f} ms",
             f"resume_offset={offset}; overhead {overhead * 100:+.1f}%"],
        ],
        notes=(
            "Direct ApiApp streams (no socket noise); spliced chunk lines "
            "asserted byte-identical to the uninterrupted export before "
            "timing.  The resumed request re-hits the result cache, so the "
            "only new cost is the skipped-prefix bookkeeping."
        ),
    )
    update_json_report(
        "BENCH_9",
        {
            "export_resume": {
                "chunks": n_chunks,
                "chunk_size": EXPORT_CHUNK,
                "resume_offset": offset,
                "full_seconds": t_full,
                "spliced_seconds": t_spliced,
                "overhead_fraction": overhead,
            }
        },
    )
    # 10% gate with a 2 ms absolute floor: at sub-10ms stream times a
    # single scheduler tick would otherwise dominate the ratio
    assert t_spliced <= t_full * 1.10 + 0.002, (
        f"resumed export {t_spliced * 1e3:.2f} ms vs uninterrupted "
        f"{t_full * 1e3:.2f} ms ({overhead * 100:+.1f}% > 10% gate)"
    )
