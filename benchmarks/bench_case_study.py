"""CASE4 — the §4 biological-insight case study, scored.

The paper reports qualitatively that a collaborator recovered a general
stress-response effect inside nutrient-limitation and knockout data, and
that doing so previously required "over a dozen independent instances of
a program and continually cut and paste selections between instances".

With planted ground truth we can score both halves:
  * recovery quality — precision/recall/F1 of ESR-module recovery from a
    nutrient-data seed, via cross-dataset correlation in ForestView;
  * workflow cost — operation counts for the one-app ForestView flow vs
    the dozen-instances baseline.
"""

import numpy as np
import pytest

from repro.core import ForestView
from repro.stats import pearson_to_vector

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def setup(case_study_bench):
    comp, truth = case_study_bench
    return ForestView.from_compendium(comp), truth


def recover_esr(app, truth, *, threshold: float = 0.5) -> set[str]:
    """The collaborator's workflow as an algorithm.

    Seed: a handful of genes that co-vary in the *nutrient* study.  For
    every dataset, correlate all genes against the seed's mean profile
    and keep genes passing ``threshold`` in a majority of the stress
    datasets — i.e. "examine how those genes related to each other
    within the standard collection of stress datasets" (§4).
    """
    seed_genes = list(truth.esr_induced[:4])
    stress = list(truth.stress_dataset_names)
    votes: dict[str, int] = {}
    for name in stress:
        ds = app.compendium[name]
        rows = ds.matrix.indices_of(seed_genes, missing="skip")
        seed_profile = np.nanmean(ds.matrix.values[np.asarray(rows)], axis=0)
        corr = pearson_to_vector(ds.matrix.values, seed_profile)
        for gene, r in zip(ds.matrix.gene_ids, corr):
            if not np.isnan(r) and r >= threshold:
                votes[gene] = votes.get(gene, 0) + 1
    majority = len(stress) // 2 + 1
    return {g for g, v in votes.items() if v >= majority}


def test_case4_recovery_benchmark(benchmark, setup):
    """Time: the full cross-dataset recovery analysis."""
    app, truth = setup
    recovered = benchmark(recover_esr, app, truth)
    assert recovered


def test_case4_recovery_quality_and_workflow_cost(setup):
    app, truth = setup
    recovered = recover_esr(app, truth)
    expected = set(truth.esr_induced)

    tp = len(recovered & expected)
    precision = tp / max(1, len(recovered))
    recall = tp / max(1, len(expected))
    f1 = 2 * precision * recall / max(1e-12, precision + recall)

    # ------------------------------------------------------- workflow costs
    n_datasets = len(app.compendium)
    # ForestView: one instance; one selection op propagates everywhere;
    # zero manual exports to move the gene list between datasets.
    forestview_ops = {"instances": 1, "selection ops": 1, "exports/pastes": 0}
    # Baseline (per §4): one single-dataset viewer per dataset, and moving a
    # selection into every other dataset costs an export + paste pair.
    baseline_ops = {
        "instances": n_datasets,
        "selection ops": n_datasets,
        "exports/pastes": 2 * (n_datasets - 1),
    }

    rows = [
        ["ESR genes planted", len(expected), ""],
        ["genes recovered", len(recovered), ""],
        ["precision", f"{precision:.2f}", ""],
        ["recall", f"{recall:.2f}", ""],
        ["F1", f"{f1:.2f}", "expect near 1.0"],
        ["instances needed", forestview_ops["instances"],
         f"baseline: {baseline_ops['instances']}"],
        ["selection operations", forestview_ops["selection ops"],
         f"baseline: {baseline_ops['selection ops']}"],
        ["export/paste operations", forestview_ops["exports/pastes"],
         f"baseline: {baseline_ops['exports/pastes']}"],
    ]
    write_report(
        "CASE4",
        "§4 stress-response case study: recovery quality and workflow cost",
        ["quantity", "ForestView", "note"],
        rows,
        notes=(
            "The paper's collaborator needed 'over a dozen independent instances' "
            "with cut-and-paste; ForestView needs one instance and one selection. "
            "Recovery is scored against the planted ESR ground truth."
        ),
    )
    assert f1 >= 0.85
    assert forestview_ops["instances"] == 1
    assert baseline_ops["instances"] >= 5


def test_case4_selection_propagation_cost(benchmark, setup):
    """Time: the single ForestView selection op across all datasets."""
    app, truth = setup

    def one_op():
        app.select_genes(list(truth.esr_induced), source="case4")
        return app.zoom_views()

    views = benchmark(one_op)
    assert len(views) == len(app.compendium)
