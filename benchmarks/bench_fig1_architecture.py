"""FIG1 — the software architecture of Figure 1.

The figure is a block diagram; its reproducible content is that every
boxed component exists, is wired the way the arrows say, and that the
stack constructs quickly enough for interactive use.  The bench times
full-application construction (datasets -> merged interface -> panes ->
sync layer) and the report lists the component inventory with the
module implementing each box.
"""

import pytest

from repro.core import ForestView, SpellAdapter
from repro.core.search import find_genes
from repro.data.merged import MergedDatasetInterface

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def compendium(case_study_bench):
    comp, _ = case_study_bench
    return comp


def test_fig1_construct_application(benchmark, compendium):
    """Time: full ForestView stack construction over the compendium."""

    def construct():
        app = ForestView.from_compendium(compendium)
        _ = app.merged_interface  # force the Figure 1 merged-interface build
        return app

    app = benchmark(construct)

    # --- verify every Figure 1 box exists and is wired -------------------
    inventory = [
        ("Dataset 1..n", "repro.data.Dataset", f"{len(app.compendium)} datasets"),
        (
            "Merged Dataset Interface",
            "repro.data.MergedDatasetInterface",
            f"3-D shape {app.merged_interface.shape}",
        ),
        (
            "Dataset Analysis",
            "repro.core.integration.SpellAdapter/GolemAdapter",
            "wired" if SpellAdapter(app) else "",
        ),
        (
            "Find Genes by name",
            "repro.core.search.find_genes",
            f"{len(find_genes(app.compendium, ['heat shock']))} hits for 'heat shock'",
        ),
        ("Order Datasets", "repro.core.ordering", "3 strategies"),
        ("Export Gene List", "repro.core.export.format_gene_list", "ok"),
        ("Export Merged Dataset", "repro.core.export.format_merged_pcl", "ok"),
        (
            "Visualization Synchronization",
            "repro.core.sync.SynchronizationLayer",
            f"sync={'on' if app.synchronized else 'off'}",
        ),
        (
            "Gene Visualization 1..n",
            "repro.core.panes.DatasetPane",
            f"{len(app.panes)} panes",
        ),
        ("User Interface", "repro.core.app.ForestView (headless facade)", "ok"),
    ]
    assert isinstance(app.merged_interface, MergedDatasetInterface)
    assert len(app.panes) == len(app.compendium)

    write_report(
        "FIG1",
        "software architecture inventory (Figure 1)",
        ["figure-1 box", "implementing module", "status"],
        inventory,
        notes=(
            "Every component of the paper's architecture diagram exists and is "
            "reachable from the ForestView facade; construction is benchmarked above."
        ),
    )
