"""FIG4 — the SPELL web interface "displaying the results of a search
through a very large compendia of microarray data" (Figure 4).

Reproduces the search workload on a 40-dataset compendium with a planted
co-expression module: query latency (interactive web-service contract),
the dataset/gene orderings the page displays, and the retrieval-quality
contrast against the text-match strawman that motivates SPELL (§3).
"""

import pytest

from repro.api.protocol import SearchRequest
from repro.spell import SpellEngine, SpellIndex, SpellService, TextSearchBaseline
from repro.stats import average_precision, precision_at_k

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def setup(spell_bench):
    comp, truth = spell_bench
    return comp, truth, SpellIndex.build(comp)


def test_fig4_indexed_query_latency(benchmark, setup):
    """Time: one interactive query against the prebuilt index."""
    comp, truth, index = setup
    result = benchmark(index.search, list(truth.query_genes))
    assert len(result.datasets) == len(comp)


def test_fig4_cold_query_latency(benchmark, setup):
    """Time: the same query recomputing correlations from raw data."""
    comp, truth, _ = setup
    engine = SpellEngine(comp)
    result = benchmark.pedantic(
        engine.search, args=(list(truth.query_genes),), rounds=3, iterations=1
    )
    assert len(result.datasets) == len(comp)


def test_fig4_index_build(benchmark, setup):
    """Time: building the index (the web service's startup cost)."""
    comp, _, _ = setup
    index = benchmark.pedantic(SpellIndex.build, args=(comp,), rounds=3, iterations=1)
    assert index.n_datasets == len(comp)


def test_fig4_result_page_and_quality(setup):
    """The Figure 4 page content plus retrieval quality vs the baseline."""
    comp, truth, index = setup
    service = SpellService(comp, use_index=True)
    page = service.respond(
        SearchRequest(genes=tuple(truth.query_genes), page=0, page_size=10)
    )

    hidden = set(truth.module_genes) - set(truth.query_genes)
    k = len(hidden)
    spell_result = index.search(list(truth.query_genes))
    baseline_result = TextSearchBaseline(comp).search(list(truth.query_genes))

    spell_p = precision_at_k(spell_result.gene_ranking(), hidden, k)
    base_p = precision_at_k(baseline_result.gene_ranking(), hidden, k)
    spell_ap = average_precision(spell_result.gene_ranking(), hidden)
    base_ap = average_precision(baseline_result.gene_ranking(), hidden)

    relevant = set(truth.relevant_datasets)
    ds_p = precision_at_k(spell_result.dataset_ranking(), relevant, len(relevant))

    rows = [
        ["SPELL (indexed)", f"{page.elapsed_seconds * 1000:.1f} ms",
         f"{spell_p:.2f}", f"{spell_ap:.2f}", f"{ds_p:.2f}"],
        ["text-match baseline", "-", f"{base_p:.2f}", f"{base_ap:.2f}", "-"],
    ]
    write_report(
        "FIG4",
        "SPELL search over a 40-dataset compendium (Figure 4)",
        ["method", "query latency", f"gene P@{k}", "gene AP", "dataset P@R"],
        rows,
        notes=(
            f"Query: {len(truth.query_genes)} genes; planted module of "
            f"{len(truth.module_genes)} genes coexpressed in "
            f"{len(relevant)}/{len(comp)} datasets. SPELL returns both the "
            "ordered dataset list and ordered gene list the web page shows."
        ),
    )
    # the paper's motivating contrast must hold decisively
    assert spell_p >= base_p + 0.4
    assert ds_p >= 0.8
    assert page.gene_rows[0][0] == 1


def test_fig4_iterative_refinement(setup):
    """§3's directed-search loop: growing the query keeps quality high."""
    comp, truth, _ = setup
    engine = SpellEngine(comp)
    hidden = set(truth.module_genes) - set(truth.query_genes)
    result = engine.search_iterative(list(truth.query_genes), rounds=2, grow_by=3)
    assert precision_at_k(result.gene_ranking(), hidden, len(hidden)) >= 0.8
