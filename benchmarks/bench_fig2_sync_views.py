"""FIG2 — "ForestView application displaying a gene subset across three
datasets" (Figure 2).

Reproduces the screen's workload: select a gene subset in one dataset,
propagate it through the synchronization layer to every pane, and render
the multi-pane frame (global views + synchronized zoom views +
highlights).  Benchmarks the two interactive operations — selection
propagation and frame render — and reports the per-pane alignment the
figure shows.
"""

import pytest

from repro.core import ForestView, SynchronizationLayer

from benchmarks.conftest import write_report

FRAME_W, FRAME_H = 1600, 900


@pytest.fixture(scope="module")
def app(case_study_bench):
    comp, truth = case_study_bench
    # Figure 2 shows exactly three panes; use the three stress datasets
    from repro.data import Compendium

    three = Compendium([comp[name] for name in truth.stress_dataset_names])
    application = ForestView.from_compendium(three, cluster_genes=True)
    return application, truth


def test_fig2_selection_propagation(benchmark, app):
    """Time: region-select in pane 0 -> synchronized views in all panes."""
    application, truth = app

    def select_and_sync():
        application.select_region(application.compendium.names[0], 10, 40)
        return application.zoom_views()

    views = benchmark(select_and_sync)
    assert SynchronizationLayer.rows_aligned(views)
    assert len(views) == 3


def test_fig2_frame_render(benchmark, app):
    """Time: render the 3-pane Figure 2 frame at 1600x900."""
    application, truth = app
    application.select_genes(list(truth.esr_induced), source="esr")

    pixels = benchmark(application.render, FRAME_W, FRAME_H)
    assert pixels.shape == (FRAME_H, FRAME_W, 3)

    # --- the Figure 2 report: what each pane displays ----------------------
    views = application.zoom_views()
    rows = []
    for pane, view in zip(application.panes, views):
        highlight_rows = pane.highlight_rows(application.selection)
        rows.append(
            [
                pane.name,
                f"{pane.n_genes}x{pane.n_conditions}",
                len(highlight_rows),
                f"{sum(view.present)}/{view.n_rows}",
                "yes" if view.synchronized else "no",
            ]
        )
    aligned = SynchronizationLayer.rows_aligned(views)
    write_report(
        "FIG2",
        "gene subset across three datasets (Figure 2)",
        ["pane", "global view", "highlight marks", "zoom rows present", "synced"],
        rows,
        notes=(
            f"All panes display the selection in identical order: {aligned}. "
            f"Frame rendered at {FRAME_W}x{FRAME_H}; timings in the benchmark table."
        ),
    )
    assert aligned


def test_fig2_sync_toggle_changes_order(app):
    """The figure's synchronized order vs the per-dataset native order."""
    application, truth = app
    application.select_genes(list(truth.esr_induced), source="esr")
    application.set_synchronized(True)
    synced = [v.gene_ids for v in application.zoom_views()]
    application.set_synchronized(False)
    native = [v.gene_ids for v in application.zoom_views()]
    application.set_synchronized(True)
    assert all(order == synced[0] for order in synced)
    # clustered datasets disagree on native order for at least one pane
    assert any(n != synced[0] for n in native)
