"""FIG6 — "The ForestView system viewed with two other microarray analysis
and visualization tools, GOLEM and SPELL" (Figure 6).

The combined-workspace workload: run a SPELL query, reorder and reselect
in ForestView, run GOLEM enrichment on the selection, and render the
resulting screen across a display wall.  Benchmarks the full pipeline and
reports per-stage timing — the interactivity budget of the integrated
system.
"""

import time

import numpy as np
import pytest

from repro.core import ForestView, GolemAdapter, SpellAdapter
from repro.ontology import Golem
from repro.synth import make_annotated_ontology
from repro.wall import DisplayWall, WallGeometry

from benchmarks.conftest import write_report

GEO = WallGeometry(rows=2, cols=3, tile_width=300, tile_height=220)


@pytest.fixture(scope="module")
def setup(case_study_bench):
    comp, truth = case_study_bench
    app = ForestView.from_compendium(comp, cluster_genes=True)
    genes = comp.gene_universe()
    onto, store, otruth = make_annotated_ontology(
        genes,
        n_terms=400,
        planted={"environmental stress response": list(truth.esr_all)},
        seed=66,
    )
    golem = Golem(onto, store)
    spell_adapter = SpellAdapter(app)
    golem_adapter = GolemAdapter(app, golem)
    wall = DisplayWall(GEO, n_nodes=4, schedule="dynamic")
    return app, truth, otruth, spell_adapter, golem_adapter, wall


def run_pipeline(app, truth, spell_adapter, golem_adapter, wall):
    spell_adapter.query(list(truth.esr_induced[:5]), top_n=15)
    report = golem_adapter.enrich_selection()
    frame = app.render_on_wall(wall)
    return report, frame


def test_fig6_full_pipeline(benchmark, setup):
    """Time: SPELL query -> reorder/select -> GOLEM enrich -> wall frame."""
    app, truth, otruth, spell_adapter, golem_adapter, wall = setup
    report, frame = benchmark.pedantic(
        run_pipeline,
        args=(app, truth, spell_adapter, golem_adapter, wall),
        rounds=3,
        iterations=1,
    )
    assert frame.pixels.shape == (GEO.canvas_height, GEO.canvas_width, 3)
    assert len(report) > 0


def test_fig6_stage_breakdown(setup):
    """Per-stage timings + correctness of every integration edge."""
    app, truth, otruth, spell_adapter, golem_adapter, wall = setup

    t0 = time.perf_counter()
    spell_result = spell_adapter.query(list(truth.esr_induced[:5]), top_n=15)
    t_spell = time.perf_counter() - t0

    # SPELL edge: panes reordered to the ranking, top genes selected
    assert app.compendium.names == list(spell_result.dataset_ranking())
    assert app.selection is not None and len(app.selection) >= 15

    t0 = time.perf_counter()
    report = golem_adapter.enrich_selection()
    t_golem = time.perf_counter() - t0
    planted_id = next(iter(otruth.planted_terms))
    planted_rank = [r.term_id for r in report.results].index(planted_id) + 1

    t0 = time.perf_counter()
    frame = app.render_on_wall(wall)
    t_wall = time.perf_counter() - t0
    reference = app.display_list(GEO.canvas_width, GEO.canvas_height).render_full()
    assert np.array_equal(frame.pixels, reference)

    rows = [
        ["SPELL query + reorder + select", f"{t_spell * 1000:.0f} ms",
         f"top dataset: {spell_result.top_datasets(1)[0]}"],
        ["GOLEM enrichment of selection", f"{t_golem * 1000:.0f} ms",
         f"planted term rank {planted_rank}"],
        ["wall frame (6 tiles, 4 nodes)", f"{t_wall * 1000:.0f} ms",
         f"speedup {frame.metrics.parallel_speedup():.2f}"],
        ["total", f"{(t_spell + t_golem + t_wall) * 1000:.0f} ms", "interactive"],
    ]
    write_report(
        "FIG6",
        "integrated ForestView + SPELL + GOLEM pipeline (Figure 6)",
        ["stage", "time", "outcome"],
        rows,
        notes=(
            "Analysis output drives the display (ordering + selection) and the "
            "display's selection drives analysis — the closed loop of Figure 1/6."
        ),
    )
    assert planted_rank <= 3
