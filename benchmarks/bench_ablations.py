"""ABL — ablations of the design choices DESIGN.md calls out.

Not figures from the paper; these quantify why the implementation is
built the way it is:

  * synchronization layer on vs off (what alignment costs);
  * SPELL precomputed index vs exact on-the-fly engine (speed/accuracy);
  * wall scheduling policies on content-skewed frames;
  * vectorized hypergeometric vs per-term scipy loop (also in FIG5).
"""

import time

import numpy as np
import pytest

from repro.core import ForestView
from repro.spell import SpellEngine, SpellIndex
from repro.util.timing import Stopwatch
from repro.stats import enrichment_pvalues, precision_at_k
from repro.viz import DisplayList, HeatmapCmd, RectCmd, get_colormap
from repro.wall import DisplayWall, WallGeometry

from benchmarks.conftest import write_report


# ---------------------------------------------------------------------------
# ablation 1: synchronization layer
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sync_app(case_study_bench):
    comp, truth = case_study_bench
    app = ForestView.from_compendium(comp)
    return app, truth


@pytest.mark.parametrize("synchronized", [True, False])
def test_abl_sync_mode_cost(benchmark, sync_app, synchronized):
    """Time: zoom-view computation with the sync layer on vs off."""
    app, truth = sync_app
    app.select_genes(list(truth.esr_all), source="abl")
    app.set_synchronized(synchronized)
    views = benchmark(app.zoom_views)
    assert len(views) == len(app.compendium)
    app.set_synchronized(True)


# ---------------------------------------------------------------------------
# ablation 2: SPELL index vs exact engine
# ---------------------------------------------------------------------------
def test_abl_spell_index_vs_exact(spell_bench):
    comp, truth = spell_bench
    hidden = set(truth.module_genes) - set(truth.query_genes)
    k = len(hidden)
    query = list(truth.query_genes)

    t0 = time.perf_counter()
    index = SpellIndex.build(comp)
    t_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    indexed = index.search(query)
    t_indexed = time.perf_counter() - t0

    engine = SpellEngine(comp)
    t0 = time.perf_counter()
    exact = engine.search(query)
    t_exact = time.perf_counter() - t0

    p_indexed = precision_at_k(indexed.gene_ranking(), hidden, k)
    p_exact = precision_at_k(exact.gene_ranking(), hidden, k)
    # rank agreement on the top 50 genes
    top_exact = exact.gene_ranking()[:50]
    agreement = len(set(top_exact) & set(indexed.gene_ranking()[:50])) / 50

    rows = [
        ["exact engine query", f"{t_exact * 1000:.0f} ms", f"P@{k} {p_exact:.2f}"],
        ["indexed query", f"{t_indexed * 1000:.1f} ms",
         f"P@{k} {p_indexed:.2f}, {t_exact / max(t_indexed, 1e-9):.0f}x faster"],
        ["index build (once)", f"{t_build * 1000:.0f} ms",
         f"{index.nbytes() / 1024:.0f} KiB resident"],
        ["top-50 rank agreement", f"{agreement:.2f}", "index approximates exact"],
    ]
    write_report(
        "ABL-spell-index",
        "SPELL: precomputed index vs exact on-the-fly correlation",
        ["variant", "time", "quality"],
        rows,
        notes=(
            "The index trades exact pairwise-complete correlation for a single "
            "matmul per query; retrieval quality is preserved on realistic "
            "missingness (2%)."
        ),
    )
    assert t_indexed < t_exact
    assert p_indexed >= p_exact - 0.1
    assert agreement >= 0.7


# ---------------------------------------------------------------------------
# ablation 2b: float32 vs float64 index shards
# ---------------------------------------------------------------------------
def test_abl_spell_index_float32(spell_bench):
    """The optional float32 compute path: memory/speed vs rank agreement.

    Shards stored in float32 halve index memory and speed the scoring
    matmuls; scores drift in the last digits, so this quantifies how
    well the float32 ranking agrees with the float64 reference.
    """
    comp, truth = spell_bench
    query = list(truth.query_genes)
    f64 = SpellIndex.build(comp)
    f32 = SpellIndex.build(comp, dtype=np.float32)

    def mean_query_seconds(index, repeats=10):
        with Stopwatch() as sw:
            for _ in range(repeats):
                index.search(query)
        return sw.elapsed / repeats

    t64 = mean_query_seconds(f64)
    t32 = mean_query_seconds(f32)
    rank64 = f64.search(query).gene_ranking()
    rank32 = f32.search(query).gene_ranking()
    agreement = len(set(rank64[:50]) & set(rank32[:50])) / 50

    write_report(
        "ABL-spell-f32",
        "SPELL index: float32 vs float64 shard precision",
        ["variant", "index size", "query time", "quality"],
        [
            ["float64 (reference)", f"{f64.nbytes() / 1024:.0f} KiB",
             f"{t64 * 1e3:.2f} ms", "exact aggregation dtype"],
            ["float32 shards", f"{f32.nbytes() / 1024:.0f} KiB",
             f"{t32 * 1e3:.2f} ms",
             f"top-50 rank agreement {agreement:.2f}"],
        ],
        notes=(
            "Normalization and aggregation stay float64 in both variants; "
            "only the stored shards (and therefore the scoring matmuls) "
            "drop precision. The persistent store records the dtype in its "
            "manifest, so a reopened index keeps the policy it was built "
            "with."
        ),
    )
    assert f32.nbytes() * 2 == f64.nbytes()
    assert agreement >= 0.9, f"float32 top-50 agreement only {agreement:.2f}"


# ---------------------------------------------------------------------------
# ablation 3: wall scheduling under content skew
# ---------------------------------------------------------------------------
def _skewed_scene(geo: WallGeometry) -> DisplayList:
    """All heatmap content piled onto the left third of the canvas."""
    rng = np.random.default_rng(3)
    dl = DisplayList(geo.canvas_width, geo.canvas_height, background=(4, 4, 4))
    cm = get_colormap("red-green")
    third = geo.canvas_width // 3
    for i in range(12):
        dl.add(
            HeatmapCmd(
                4, 4 + i * (geo.canvas_height // 13),
                third, geo.canvas_height // 14,
                rng.normal(size=(300, 150)), cm,
            )
        )
    dl.add(RectCmd(third, 0, geo.canvas_width - third, geo.canvas_height, (10, 10, 10)))
    return dl


def test_abl_wall_scheduling(spell_bench):
    geo = WallGeometry(rows=2, cols=6, tile_width=250, tile_height=200)
    dl = _skewed_scene(geo)
    reference = dl.render_full()
    rows = []
    frame_times = {}
    for schedule in ("static", "balanced", "dynamic", "workstealing"):
        wall = DisplayWall(geo, n_nodes=4, schedule=schedule)
        best = np.inf
        imbalance = 1.0
        for _ in range(3):
            frame = wall.render(dl)
            assert np.array_equal(frame.pixels, reference)
            if frame.metrics.frame_seconds < best:
                best = frame.metrics.frame_seconds
                imbalance = frame.metrics.load_imbalance()
        frame_times[schedule] = best
        rows.append([schedule, f"{best * 1000:.0f} ms", f"{imbalance:.2f}"])
    write_report(
        "ABL-wall-schedule",
        "tile scheduling on a content-skewed frame (12 tiles, 4 nodes)",
        ["schedule", "best frame time", "load imbalance"],
        rows,
        notes=(
            "Static block assignment concentrates the expensive left-column tiles "
            "on few nodes; cost-balanced/dynamic/work-stealing spread them.  All "
            "schedules produce byte-identical frames."
        ),
    )
    # at least one adaptive schedule should beat plain static on skewed content
    adaptive_best = min(frame_times["balanced"], frame_times["dynamic"],
                        frame_times["workstealing"])
    assert adaptive_best <= frame_times["static"] * 1.5


# ---------------------------------------------------------------------------
# ablation 4: dendrogram leaf ordering
# ---------------------------------------------------------------------------
def test_abl_leaf_ordering(case_study_bench):
    """Does weight-oriented subtree flipping improve heatmap readability?

    Metric: mean correlation-distance between adjacent leaves in display
    order (smaller = smoother heatmap).  Compares merge-order leaves vs
    the Cluster 3.0-style oriented tree.
    """
    from repro.cluster import hierarchical_cluster, order_leaves_by_weight
    from repro.cluster.distance import correlation_distance

    comp, _ = case_study_bench
    rows = []
    improvements = []
    for ds in list(comp)[:3]:
        data = ds.matrix.values
        tree = hierarchical_cluster(data)
        ordered = order_leaves_by_weight(tree, data)
        dist = correlation_distance(data)

        def adjacency_cost(order: list[int]) -> float:
            return float(
                np.mean([dist[a, b] for a, b in zip(order, order[1:])])
            )

        before = adjacency_cost(tree.leaf_order())
        after = adjacency_cost(ordered.leaf_order())
        improvements.append(before - after)
        rows.append([ds.name, f"{before:.3f}", f"{after:.3f}",
                     f"{(before - after) / before * 100:+.1f}%"])
    write_report(
        "ABL-leaf-order",
        "dendrogram leaf ordering: adjacent-leaf distance in display order",
        ["dataset", "merge order", "weight-oriented", "improvement"],
        rows,
        notes=(
            "Subtree flipping by mean expression never changes the clustering, "
            "only its drawn orientation; lower adjacent-leaf distance means a "
            "smoother global-view heatmap."
        ),
    )
    # orientation must never make adjacency dramatically worse
    assert all(impr > -0.05 for impr in improvements)


# ---------------------------------------------------------------------------
# ablation 5: vectorized hypergeometric
# ---------------------------------------------------------------------------
def test_abl_hypergeom_vectorization(benchmark):
    """Time: scoring 2000 terms in one vectorized call."""
    rng = np.random.default_rng(9)
    N, n = 6000, 120
    K = rng.integers(2, 400, size=2000)
    k = np.minimum(K, rng.integers(0, 40, size=2000))
    pvals = benchmark(enrichment_pvalues, k, N, K, n)
    assert pvals.shape == (2000,)
    assert ((pvals >= 0) & (pvals <= 1)).all()
