"""SERVICE — throughput of the serving layer under repeated, batched and
mutating workloads (the ROADMAP's "heavy traffic" scenario).

Five contracts the production service must honour, each measured here:

1. **Result cache** — a warm-cache query (LRU hit on the canonicalized
   query) must be at least an order of magnitude faster than the cold
   indexed path.
2. **Batched queries** — ``respond_batch`` fans a batch over threads
   sharing one index; throughput must not regress vs one worker, and on
   a multi-core host must actually scale (NumPy releases the GIL in the
   scoring matmuls).
3. **Batched kernel** — ``SpellIndex.search_batch`` makes one pass over
   the shard arena per *batch* (one stacked matmul per shard) and must
   beat B per-query passes while staying bit-identical to them.
4. **Multi-process serving** — ``SpellService(n_procs>=2)`` scatters a
   batch across worker processes sharing the mmap store; on a >= 2 core
   host it must beat the single-process threaded path, and every
   ranking must be bit-identical to the direct ``SpellIndex.search``
   oracle.
5. **Incremental index maintenance** — ``SpellIndex.add_dataset`` must
   beat a full rebuild while producing *bit-identical* rankings.

Machine-readable numbers (cold/warm latency, single- vs multi-proc batch
QPS) land in ``benchmarks/results/BENCH_4.json`` for CI trending.
"""

from __future__ import annotations

import os

import pytest

from repro.api.protocol import BatchSearchRequest, SearchRequest
from repro.data.compendium import Compendium
from repro.spell import SpellIndex, SpellService
from repro.synth import make_spell_compendium
from repro.util.rng import default_rng
from repro.util.timing import Stopwatch

from benchmarks.conftest import update_json_report, write_report

N_QUERIES = 32
QUERY_SIZE = 4


@pytest.fixture(scope="module")
def workload(spell_bench):
    """The FIG4 compendium plus a deterministic mixed query batch."""
    comp, truth = spell_bench
    universe = comp.gene_universe()
    rng = default_rng(20260729)
    queries = [list(truth.query_genes)]
    while len(queries) < N_QUERIES:
        picks = rng.choice(len(universe), size=QUERY_SIZE, replace=False)
        queries.append([universe[int(p)] for p in picks])
    return comp, truth, queries


def _mean_query_seconds(service, queries, *, use_cache):
    with Stopwatch() as sw:
        for q in queries:
            service.search(q, use_cache=use_cache)
    return sw.elapsed / len(queries)


def test_service_cold_vs_warm_cache(workload):
    """Cache hits must be >= 10x faster than cold indexed queries."""
    comp, _, queries = workload
    service = SpellService(comp)
    cold = _mean_query_seconds(service, queries, use_cache=False)
    for q in queries:  # prime
        service.search(q)
    warm = _mean_query_seconds(service, queries, use_cache=True)
    stats = service.cache_stats()
    speedup = cold / warm if warm > 0 else float("inf")

    write_report(
        "SERVICE_CACHE",
        "SPELL service: cold vs warm-cache query latency",
        ["path", "mean latency", "queries/sec"],
        [
            ["cold (indexed, no cache)", f"{cold * 1e3:.3f} ms", f"{1.0 / cold:.0f}"],
            ["warm (LRU hit)", f"{warm * 1e6:.1f} us", f"{1.0 / warm:.0f}"],
        ],
        notes=(
            f"{len(queries)} distinct queries over the 40-dataset FIG4 "
            f"compendium; speedup {speedup:.0f}x; cache stats {stats}."
        ),
    )
    update_json_report(
        "BENCH_4",
        {
            "service_latency": {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "speedup": speedup,
                "n_queries": len(queries),
            }
        },
    )
    assert stats["hits"] >= len(queries)
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster than cold"


def _batch_request(queries, *, scheduler="map", use_cache=True):
    return BatchSearchRequest(
        searches=tuple(
            SearchRequest(genes=tuple(q), page_size=20, use_cache=use_cache)
            for q in queries
        ),
        scheduler=scheduler,
    )


def test_service_batched_throughput(workload):
    """respond_batch: batched throughput across worker counts and schedulers."""
    comp, _, queries = workload
    rows = []
    qps = {}
    for n_workers in (1, 2, 4):
        for scheduler in ("map", "steal"):
            if n_workers == 1 and scheduler == "steal":
                continue
            service = SpellService(comp, n_workers=n_workers, cache_size=0)
            batch = service.respond_batch(_batch_request(queries, scheduler=scheduler))
            qps[(n_workers, scheduler)] = batch.queries_per_second
            rows.append(
                [
                    n_workers,
                    scheduler,
                    f"{batch.total_seconds * 1e3:.1f} ms",
                    f"{batch.queries_per_second:.0f}",
                ]
            )
            assert len(batch.results) == len(queries)
            assert batch.cache_hits == 0  # caching disabled on this path

    cores = os.cpu_count() or 1
    serial = qps[(1, "map")]
    best_parallel = max(v for (w, _), v in qps.items() if w > 1)
    write_report(
        "SERVICE_BATCH",
        "SPELL service: batched multi-query throughput (respond_batch)",
        ["workers", "scheduler", "batch wall time", "queries/sec"],
        rows,
        notes=(
            f"{len(queries)} queries per batch, shared index, cache off; "
            f"host has {cores} core(s); workers-vs-serial ratio "
            f"{best_parallel / serial:.2f}x. The strict scaling gate is "
            "opt-in (SPELL_BENCH_STRICT_SCALING=1) — thread throughput on "
            "small shared runners is too noisy for a hard CI gate."
        ),
    )
    # batching must never collapse throughput...
    assert best_parallel >= 0.5 * serial
    # ...and must genuinely scale where a quiet multi-core host is
    # guaranteed (opt-in: timing gates flake on shared CI runners)
    if os.environ.get("SPELL_BENCH_STRICT_SCALING") and cores >= 2:
        assert best_parallel >= 1.1 * serial, (
            f"batched path failed to scale: {best_parallel:.0f} qps with "
            f"workers vs {serial:.0f} serial on {cores} cores"
        )


def test_batched_kernel_beats_per_query_passes(workload):
    """search_batch: one arena pass per batch must beat B per-query passes
    while every ranking stays bit-identical to SpellIndex.search."""
    comp, _, queries = workload
    index = SpellIndex.build(comp)
    for q in queries[:3]:  # warm the BLAS/scratch paths out of the timing
        index.search(q)

    t_single = float("inf")
    t_batch = float("inf")
    for _ in range(3):
        with Stopwatch() as sw:
            solo = [index.search(q) for q in queries]
        t_single = min(t_single, sw.elapsed)
        with Stopwatch() as sw:
            batch = index.search_batch(queries)
        t_batch = min(t_batch, sw.elapsed)

    for a, b in zip(solo, batch):  # the oracle gate: bit-identical rankings
        assert [(g.gene_id, g.score, g.n_datasets) for g in a.genes] == [
            (g.gene_id, g.score, g.n_datasets) for g in b.genes
        ]
        assert [(d.name, d.weight) for d in a.datasets] == [
            (d.name, d.weight) for d in b.datasets
        ]

    speedup = t_single / t_batch if t_batch > 0 else float("inf")
    write_report(
        "SERVICE_KERNEL",
        "SPELL index: batched arena kernel vs per-query passes",
        ["path", "batch wall time", "queries/sec"],
        [
            ["per-query search x32", f"{t_single * 1e3:.1f} ms",
             f"{len(queries) / t_single:.0f}"],
            ["search_batch (stacked matmuls)", f"{t_batch * 1e3:.1f} ms",
             f"{len(queries) / t_batch:.0f}"],
        ],
        notes=(
            f"{len(queries)} queries over the FIG4 compendium; one "
            f"Xn @ Qall.T matmul per shard instead of one per (shard, "
            f"query); {speedup:.2f}x, rankings bit-identical (asserted)."
        ),
    )
    update_json_report(
        "BENCH_4",
        {
            "batch_kernel": {
                "per_query_seconds": t_single,
                "batched_seconds": t_batch,
                "speedup": speedup,
                "n_queries": len(queries),
            }
        },
    )
    # the batched kernel must never *lose* to per-query dispatch by more
    # than timing noise; the speedup itself is reported, not gated (BLAS
    # thread counts vary wildly across CI hosts)
    assert t_batch <= 1.2 * t_single, (
        f"batched kernel slower than per-query: {t_batch:.4f}s vs {t_single:.4f}s"
    )


def test_multiproc_batch_beats_single_proc(workload, tmp_path_factory):
    """n_procs=2 batch serving must beat the single-process threaded path
    on a multi-core host, with every ranking bit-identical to the direct
    SpellIndex.search oracle."""
    comp, _, queries = workload
    cores = os.cpu_count() or 1
    request = BatchSearchRequest(
        searches=tuple(
            SearchRequest(genes=tuple(q), page_size=20, use_cache=False)
            for q in queries
        )
    )
    store = tmp_path_factory.mktemp("spell-proc-store")

    single = SpellService(comp, n_workers=2, cache_size=0)
    multi = SpellService(comp, n_procs=2, cache_size=0, store_dir=store)
    try:
        single.respond_batch(request)  # warm the threads
        warm = multi.respond_batch(request)  # spawn + first-touch, untimed
        assert multi._procpool is not None and not multi._procpool.broken

        t_single = float("inf")
        t_multi = float("inf")
        for _ in range(3):
            with Stopwatch() as sw:
                single_batch = single.respond_batch(request)
            t_single = min(t_single, sw.elapsed)
            with Stopwatch() as sw:
                multi_batch = multi.respond_batch(request)
            t_multi = min(t_multi, sw.elapsed)
        assert multi._procpool.batches >= 4  # proc path actually served

        # oracle gate: every served ranking bit-identical to the direct index
        oracle = SpellIndex.build(comp)
        for q, s_resp, m_resp, w_resp in zip(
            queries, single_batch.results, multi_batch.results, warm.results
        ):
            expect = tuple(
                (i + 1, g.gene_id, g.score)
                for i, g in enumerate(oracle.search(q).genes[:20])
            )
            assert s_resp.gene_rows == expect
            assert m_resp.gene_rows == expect
            assert w_resp.gene_rows == expect

        single_qps = len(queries) / t_single
        multi_qps = len(queries) / t_multi
        write_report(
            "SERVICE_PROCS",
            "SPELL service: single-process threads vs process pool (batch)",
            ["path", "batch wall time", "queries/sec"],
            [
                ["1 process, 2 threads", f"{t_single * 1e3:.1f} ms",
                 f"{single_qps:.0f}"],
                ["2 processes (mmap store)", f"{t_multi * 1e3:.1f} ms",
                 f"{multi_qps:.0f}"],
            ],
            notes=(
                f"{len(queries)} cold queries per batch on a {cores}-core "
                f"host; workers share shard pages via the OS page cache. "
                f"Rankings bit-identical to the direct SpellIndex.search "
                f"oracle (asserted). The multi-proc-beats-single-proc gate "
                f"is enforced on >= 2 cores."
            ),
        )
        update_json_report(
            "BENCH_4",
            {
                "proc_serving": {
                    "cores": cores,
                    "n_procs": 2,
                    "single_proc_qps": single_qps,
                    "multi_proc_qps": multi_qps,
                    "speedup": multi_qps / single_qps if single_qps else None,
                    "gate_enforced": cores >= 2,
                }
            },
        )
        if cores >= 2:
            assert multi_qps > single_qps, (
                f"multi-process batch serving failed to beat single-process: "
                f"{multi_qps:.0f} vs {single_qps:.0f} qps on {cores} cores"
            )
    finally:
        single.close()
        multi.close()


def test_service_warm_batch_beats_cold_batch(workload):
    """The combined path: a warm cache accelerates whole batches too."""
    comp, _, queries = workload
    service = SpellService(comp, n_workers=2)
    cold_batch = service.respond_batch(_batch_request(queries))
    warm_batch = service.respond_batch(_batch_request(queries))
    assert warm_batch.cache_hits == len(queries)
    assert warm_batch.total_seconds < cold_batch.total_seconds
    for cold_page, warm_page in zip(cold_batch.results, warm_batch.results):
        assert cold_page.gene_rows == warm_page.gene_rows


def test_incremental_add_matches_fresh_build():
    """add_dataset must beat a full rebuild and match it exactly."""
    comp, truth = make_spell_compendium(
        n_datasets=24,
        n_relevant=6,
        n_genes=400,
        n_conditions=16,
        module_size=20,
        query_size=4,
        seed=31,
    )
    datasets = list(comp)
    base = Compendium(datasets[:-1])

    index = SpellIndex.build(base)
    with Stopwatch() as sw_incr:
        index.add_dataset(datasets[-1])
    with Stopwatch() as sw_full:
        fresh = SpellIndex.build(comp)

    query = list(truth.query_genes)
    incr_result = index.search(query)
    fresh_result = fresh.search(query)
    assert incr_result.dataset_ranking() == fresh_result.dataset_ranking()
    assert [(g.gene_id, g.score) for g in incr_result.genes] == [
        (g.gene_id, g.score) for g in fresh_result.genes
    ]

    write_report(
        "SERVICE_INCR",
        "SPELL index: incremental add_dataset vs full rebuild",
        ["operation", "wall time"],
        [
            ["add_dataset (1 of 24 shards)", f"{sw_incr.elapsed * 1e3:.2f} ms"],
            ["full rebuild (24 shards)", f"{sw_full.elapsed * 1e3:.2f} ms"],
        ],
        notes=(
            "Incremental maintenance indexes only the new shard; rankings "
            "and scores are bit-identical to a fresh build."
        ),
    )
    assert sw_incr.elapsed < sw_full.elapsed


def test_parallel_build_matches_serial(workload):
    """Sharded parallel build must equal the serial build's answers."""
    comp, truth, _ = workload
    serial = SpellIndex.build(comp, n_workers=1)
    parallel = SpellIndex.build(comp, n_workers=4)
    query = list(truth.query_genes)
    a, b = serial.search(query), parallel.search(query)
    assert a.dataset_ranking() == b.dataset_ranking()
    assert [(g.gene_id, g.score) for g in a.genes] == [
        (g.gene_id, g.score) for g in b.genes
    ]
