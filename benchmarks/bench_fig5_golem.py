"""FIG5 — "a portion of the gene ontology (GO) hierarchy displayed using
the GOLEM system" (Figure 5).

Reproduces GOLEM's two workloads on a ~1500-term synthetic GO DAG:
statistical enrichment of a selected gene list (hypergeometric + FDR
over every annotated term) and extraction/layout of the local
exploration map.  Reports planted-term recovery and the speedup of the
vectorized enrichment over a naive per-term Python loop.
"""

import time

import numpy as np
import pytest
from scipy.stats import hypergeom as scipy_hypergeom

from repro.ontology import Golem
from repro.stats import benjamini_hochberg

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def setup(golem_bench):
    onto, store, truth, genes = golem_bench
    return onto, store, truth, genes, Golem(onto, store)


def test_fig5_enrichment_latency(benchmark, setup):
    """Time: enrichment of a 45-gene selection against all terms."""
    onto, store, truth, genes, golem = setup
    selection = genes[:40] + genes[200:205]
    report = benchmark(golem.enrich_selection, selection)
    assert len(report) > 100


def test_fig5_local_map_latency(benchmark, setup):
    """Time: local exploration map extraction + layered layout."""
    onto, store, truth, genes, golem = setup
    golem.enrich_selection(genes[:40])
    focus = next(iter(truth.planted_terms))
    lm = benchmark(golem.local_map, focus, up=2, down=2)
    assert lm.focus == focus


def test_fig5_recovery_and_ablation(setup):
    """Planted-term recovery + vectorized-vs-naive enrichment timing."""
    onto, store, truth, genes, golem = setup
    selection = genes[:40] + genes[200:205]

    t0 = time.perf_counter()
    report = golem.enrich_selection(selection)
    vectorized_s = time.perf_counter() - t0

    planted_id = next(iter(truth.planted_terms))
    rank = [r.term_id for r in report.results].index(planted_id) + 1
    planted = report.term(planted_id)
    # terms outranking the planted one may only be its ancestors (their gene
    # sets contain the planted set after true-path propagation)
    ancestors = store.ontology.ancestors(planted_id)
    outrankers = [r.term_id for r in report.results[: rank - 1]]
    assert all(t in ancestors for t in outrankers)

    # naive baseline: per-term scipy hypergeom in a Python loop
    propagated = store.propagated()
    universe = set(propagated.genes())
    sel = set(selection) & universe
    t0 = time.perf_counter()
    naive_pvals = []
    for term_id in propagated.annotated_terms():
        term_genes = propagated.genes_for(term_id) & universe
        K = len(term_genes)
        if K < 2:
            continue
        k = len(term_genes & sel)
        naive_pvals.append(
            float(scipy_hypergeom.sf(k - 1, len(universe), K, len(sel))) if k else 1.0
        )
    benjamini_hochberg(np.asarray(naive_pvals))
    naive_s = time.perf_counter() - t0

    rows = [
        ["terms scored", len(report), ""],
        ["planted term rank", rank, "top-3 (only its ancestors may outrank it)"],
        ["planted term p-value", f"{planted.pvalue:.2e}", "significant"],
        ["significant terms (FDR 0.05)", len(report.significant_terms()), "few"],
        ["vectorized enrichment", f"{vectorized_s * 1000:.1f} ms", ""],
        ["naive per-term loop", f"{naive_s * 1000:.1f} ms",
         f"{naive_s / max(vectorized_s, 1e-9):.1f}x slower"],
    ]
    write_report(
        "FIG5",
        "GOLEM enrichment + local GO exploration (Figure 5)",
        ["quantity", "value", "note"],
        rows,
        notes=(
            "The planted term dominates the ranking; random background terms "
            "stay below the FDR threshold.  The vectorized scorer makes the "
            "interactive use the paper describes feasible."
        ),
    )
    assert rank <= 3
    assert planted.significant
    assert len(report.significant_terms()) < 25


def test_fig5_map_structure(setup):
    """The map has the layered ancestor/descendant shape Figure 5 draws."""
    onto, store, truth, genes, golem = setup
    golem.enrich_selection(genes[:40])
    lm = golem.most_enriched_map(up=2, down=2)
    layers = {n.layer for n in lm.nodes}
    assert 0 in layers and min(layers) < 0  # focus plus ancestors
    for node in lm.nodes:
        assert 0.0 <= node.position.x <= 1.0
        assert 0.0 <= node.position.y <= 1.0
