"""Shared benchmark fixtures and the paper-style report writer.

Every bench regenerates the rows/series for one paper artifact (see
DESIGN.md §4) and records them via :func:`write_report`, which both
prints the table and persists it under ``benchmarks/results/`` so the
numbers survive pytest's output capture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import pytest

from repro.synth import (
    make_annotated_ontology,
    make_case_study,
    make_spell_compendium,
)
from repro.util.formatting import format_table

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def update_json_report(exp_id: str, fragment: dict) -> dict:
    """Merge ``fragment`` into ``results/<exp_id>.json`` (machine-readable).

    Benchmarks that contribute to one experiment run as separate pytest
    tests (possibly in separate files), so the JSON artifact accumulates
    via read-merge-write; top-level keys are owned by one contributor
    each.  Returns the merged document.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{exp_id}.json"
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        document = {}
    if not isinstance(document, dict):
        document = {}
    document.setdefault("bench", exp_id)
    document.update(fragment)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def write_report(
    exp_id: str, title: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Persist one experiment's paper-style table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table = format_table(headers, rows)
    body = f"# {exp_id}: {title}\n\n{table}\n"
    if notes:
        body += f"\n{notes}\n"
    (RESULTS_DIR / f"{exp_id}.txt").write_text(body)
    print(f"\n{body}")
    return table


@pytest.fixture(scope="session")
def case_study_bench():
    """§4 collection at benchmark scale."""
    return make_case_study(n_genes=400, n_conditions=16, n_knockouts=24, seed=2007)


@pytest.fixture(scope="session")
def spell_bench():
    """FIG4 compendium: 40 datasets, planted module in 8 of them."""
    return make_spell_compendium(
        n_datasets=40,
        n_relevant=8,
        n_genes=600,
        n_conditions=20,
        module_size=30,
        query_size=5,
        seed=424,
    )


@pytest.fixture(scope="session")
def golem_bench():
    """FIG5 ontology: ~1500 terms with one planted enriched term."""
    from repro.synth import systematic_names

    genes = systematic_names(1200)
    onto, store, truth = make_annotated_ontology(
        genes,
        n_terms=1500,
        annotations_per_gene=4.0,
        planted={"planted stress response": genes[:40]},
        seed=555,
    )
    return onto, store, truth, genes
