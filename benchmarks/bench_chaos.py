"""CHAOS — tail latency under a slow shard: hedged replicas at work.

The robustness gate (ISSUE 7): with hedging enabled, the p99 of a query
stream against a topology whose slowest shard stalls *every* reply must
stay within 2x the fault-free p99.  The hedge converts a pathological
owner into a bounded latency bump — the router fires the same work at
the dataset's next replica once the original call ages past the
observed latency percentile, and first answer wins, bit-identically.

For contrast the same slow topology runs once with hedging disabled:
there every query eats the full stall, which is exactly the tail the
paper's interactive-latency goal cannot absorb.

Machine-readable numbers land in ``benchmarks/results/BENCH_7.json``.
"""

from __future__ import annotations

import math
import time
from collections import Counter

import pytest

from repro.api.protocol import SearchRequest
from repro.cluster_serving import build_local_topology
from repro.cluster_serving.hedging import HedgePolicy
from repro.rpc.faults import FaultPlan
from repro.synth import make_spell_compendium

from benchmarks.conftest import update_json_report, write_report

N_SHARDS = 3
N_WARMUP = 10
N_QUERIES = 40
STALL_SECONDS = 0.25
#: Aggressive tail-chasing policy: hedge once a call ages past half the
#: observed p90, never later than 15ms.  The tight ``max_delay`` matters
#: because the stalled originals eventually complete and pollute the
#: latency reservoir — the cap keeps the hedge delay anchored to the
#: healthy shards' timescale, not the pathological one.
HEDGE = HedgePolicy(
    percentile=90.0, factor=0.5, min_delay=0.001, max_delay=0.015,
    initial_delay=0.01,
)


@pytest.fixture(scope="module")
def chaos_workload():
    comp, truth = make_spell_compendium(
        n_datasets=12,
        n_relevant=3,
        n_genes=300,
        n_conditions=12,
        module_size=16,
        query_size=4,
        seed=11,
    )
    return comp, tuple(truth.query_genes)


def _percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def _run_stream(router, genes, n: int, *, pause: float = 0.0) -> list[float]:
    """Latency of ``n`` sequential queries; asserts none degrade.

    ``pause`` spaces requests out so the slow shard's serialized backlog
    (every stalled reply holds its node's client for the full stall)
    drains instead of compounding — the bench measures tail latency, not
    queue collapse.
    """
    request = SearchRequest(genes=genes, page_size=25)
    latencies = []
    for _ in range(n):
        t0 = time.monotonic()
        response = router.respond(request)
        latencies.append(time.monotonic() - t0)
        assert not response.partial  # hedging must cover, not degrade
        if pause:
            time.sleep(pause)
    return latencies


def test_hedged_p99_with_one_slow_shard_within_2x(chaos_workload):
    comp, genes = chaos_workload

    # -------- fault-free baseline (hedging on, same policy) --------
    with build_local_topology(
        comp, n_shards=N_SHARDS, replication=2, cache_size=0, hedge=HEDGE
    ) as topo:
        _run_stream(topo.router, genes, N_WARMUP)
        baseline = _run_stream(topo.router, genes, N_QUERIES)
        # slow down the shard that primaries the most datasets — the
        # worst case (consistent hashing can leave a node nearly empty)
        primaries = Counter(owners[0] for owners in topo.router._plan.values())
        victim = primaries.most_common(1)[0][0]

    def stall_plan():
        return FaultPlan(
            seed=9, stall=1.0, stall_seconds=STALL_SECONDS, methods=("partials",)
        )

    # -------- one slow shard, hedging on (the gate) --------
    with build_local_topology(
        comp,
        n_shards=N_SHARDS,
        replication=2,
        cache_size=0,
        hedge=HEDGE,
        rpc_timeout=30.0,  # covers the victim's serialized stall backlog
        fault_plans={victim: stall_plan()},
    ) as topo:
        _run_stream(topo.router, genes, N_WARMUP, pause=0.02)
        hedged = _run_stream(topo.router, genes, N_QUERIES, pause=0.02)
        hedging = topo.router.shard_stats()["hedging"]

    # -------- same slow shard, hedging off (the contrast row) --------
    with build_local_topology(
        comp,
        n_shards=N_SHARDS,
        replication=2,
        cache_size=0,
        hedge=HedgePolicy.disabled(),
        rpc_timeout=30.0,
        fault_plans={victim: stall_plan()},
    ) as topo:
        unhedged = _run_stream(topo.router, genes, N_WARMUP)

    p99_base = _percentile(baseline, 99.0)
    p99_hedged = _percentile(hedged, 99.0)
    p99_unhedged = _percentile(unhedged, 99.0)
    ratio = p99_hedged / p99_base if p99_base > 0 else float("inf")

    write_report(
        "CHAOS_HEDGING",
        f"Tail latency with one slow shard (stall {STALL_SECONDS * 1000:.0f}ms/reply)",
        ["topology", "p50 (ms)", "p99 (ms)", "vs fault-free p99"],
        [
            [
                "fault-free, hedged",
                f"{_percentile(baseline, 50.0) * 1e3:.1f}",
                f"{p99_base * 1e3:.1f}",
                "1.00x",
            ],
            [
                f"slow {victim}, hedged",
                f"{_percentile(hedged, 50.0) * 1e3:.1f}",
                f"{p99_hedged * 1e3:.1f}",
                f"{ratio:.2f}x",
            ],
            [
                f"slow {victim}, no hedge",
                f"{_percentile(unhedged, 50.0) * 1e3:.1f}",
                f"{p99_unhedged * 1e3:.1f}",
                f"{p99_unhedged / p99_base:.2f}x",
            ],
        ],
        notes=(
            f"gate: hedged p99 with one slow shard <= 2x fault-free p99; "
            f"hedges fired={hedging['fired']}, wins={hedging['wins']}."
        ),
    )
    update_json_report(
        "BENCH_7",
        {
            "hedged_tail_latency": {
                "n_queries": N_QUERIES,
                "stall_seconds": STALL_SECONDS,
                "victim": victim,
                "fault_free_p99_seconds": p99_base,
                "slow_shard_hedged_p99_seconds": p99_hedged,
                "slow_shard_unhedged_p99_seconds": p99_unhedged,
                "hedged_over_fault_free_p99": ratio,
                "hedges_fired": hedging["fired"],
                "hedge_wins": hedging["wins"],
            }
        },
    )

    assert hedging["fired"] >= 1, "the slow shard never triggered a hedge"
    assert ratio <= 2.0, (
        f"hedged p99 {p99_hedged * 1e3:.1f}ms exceeds 2x fault-free "
        f"p99 {p99_base * 1e3:.1f}ms (ratio {ratio:.2f})"
    )
    # the contrast row must actually show the pathology hedging removes
    assert p99_unhedged >= STALL_SECONDS
