"""BENCH_10 — multi-tenant fleet: tenant-switch cost, default-tenant QPS.

Two gates on the PR-10 multi-tenant catalog:

1. **Tenant switch** — after the LRU evicts a tenant and a request
   reloads it (sources re-parsed, index store reopened via mmap), the
   first search served off the reloaded tenant must land within 5x the
   warm (still-resident) search latency — the BENCH_9 bar for cold
   starts: tiering may cost a switch, never steady-state serving.  The
   reload itself must also beat a *first-ever* load of the same tenant
   (one that has to normalize every dataset and write the store): the
   mmap store has to actually skip the index rebuild, or eviction is
   just a deferred recompute.
2. **Default-tenant QPS** — a catalog-backed ``ApiApp`` (other tenants
   resident) serving requests that omit ``compendium`` must hold the
   plain single-tenant app's concurrent keep-alive QPS under the
   BENCH_8 conditions (8 clients x 25 requests, page_size 100):
   multi-tenancy is routing, and routing the default tenant is one
   dict lookup.

Every gate asserts bit-identical rankings before it times anything —
speed from a different answer is a bug, not a win.
"""

from __future__ import annotations

import shutil
import threading
import time

import pytest

from repro.api.app import ApiApp
from repro.api.http import serve
from repro.data.pcl import write_pcl
from repro.spell import SpellService
from repro.spell.catalog import CompendiumCatalog
from repro.synth import make_spell_compendium

from benchmarks.bench_api_http import (
    AIO_CLIENTS,
    AIO_PAGE_SIZE,
    AIO_REQUESTS_PER_CLIENT,
    _latency_percentiles,
    _run_keepalive_clients,
)
from benchmarks.conftest import update_json_report, write_report

#: Timing repeats; minima keep one scheduler hiccup from gating.
REPEATS = 5
#: Evict-then-reload cycles; the gate takes the best switch.
SWITCH_CYCLES = 3


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def fleet_bench():
    """FIG4-scale compendium (seed 424) — same data BENCH_8 served."""
    return make_spell_compendium(
        n_datasets=12,
        n_relevant=4,
        n_genes=600,
        n_conditions=20,
        module_size=30,
        query_size=5,
        seed=424,
    )


def _populate(catalog, tenant, compendium, tmp_path) -> None:
    for ds in compendium:
        path = tmp_path / f"{ds.name}.pcl"
        if not path.exists():
            write_pcl(ds.matrix, path)
        catalog.ingest(tenant, ds.name, "pcl", path.read_text())


def _rows(result):
    return [(g.gene_id, g.score, g.n_datasets) for g in result.genes]


def test_tenant_switch_latency(fleet_bench, tmp_path_factory):
    comp, truth = fleet_bench
    query = list(truth.query_genes)
    tmp = tmp_path_factory.mktemp("fleet-switch")
    catalog = CompendiumCatalog(tmp / "cat", max_resident=1)
    try:
        _populate(catalog, "a", comp, tmp)
        _populate(catalog, "b", comp, tmp)  # evicts a (max_resident=1)

        # warm baseline: resident tenant, best-of-N uncached search
        _, warm = catalog.resolve("a")
        warm_rows = _rows(warm.search(query))
        t_warm = min(
            _timed(lambda: warm.search(query, use_cache=False))
            for _ in range(REPEATS)
        )

        # evict-then-reload cycles: touch b (evicts a), reload a, serve
        t_reload, t_switch_search = [], []
        for _ in range(SWITCH_CYCLES):
            catalog.resolve("b")
            assert not catalog.stats()["a"]["resident"]
            start = time.perf_counter()
            _, reloaded = catalog.resolve("a")
            t_reload.append(time.perf_counter() - start)
            start = time.perf_counter()
            result = reloaded.search(query, use_cache=False)
            t_switch_search.append(time.perf_counter() - start)
            assert _rows(result) == warm_rows  # bit-identical across switch
        t_reload_best = min(t_reload)
        t_switch_best = min(t_switch_search)

        # first-ever load baseline: same sources, no store to mmap —
        # the path that must normalize every dataset and write shards
        shutil.rmtree(tmp / "cat" / "a" / "store")
        catalog.resolve("b")
        start = time.perf_counter()
        _, rebuilt = catalog.resolve("a")
        t_rebuild = time.perf_counter() - start
        assert _rows(rebuilt.search(query, use_cache=False)) == warm_rows
    finally:
        catalog.close()

    write_report(
        "MULTITENANT_SWITCH",
        "Tenant switch: evict-then-reload vs warm serving",
        ["metric", "value", "notes"],
        [
            ["warm search", f"{t_warm * 1e3:.2f} ms",
             "resident tenant, uncached"],
            ["search after switch", f"{t_switch_best * 1e3:.2f} ms",
             f"{t_switch_best / t_warm:.2f}x warm"],
            ["reload (mmap store)", f"{t_reload_best * 1e3:.1f} ms",
             "parse sources + reopen current store"],
            ["first-ever load", f"{t_rebuild * 1e3:.1f} ms",
             "parse + normalize + write store"],
        ],
        notes=(
            f"{len(comp)} datasets/tenant, max_resident=1 (worst-case "
            "thrash); rankings asserted bit-identical across every switch "
            "before timing."
        ),
    )
    update_json_report(
        "BENCH_10",
        {
            "tenant_switch": {
                "datasets_per_tenant": len(comp),
                "max_resident": 1,
                "warm_search_seconds": t_warm,
                "switch_search_seconds": t_switch_best,
                "switch_over_warm": t_switch_best / t_warm,
                "reload_seconds": t_reload_best,
                "first_load_seconds": t_rebuild,
                "reload_over_first_load": t_reload_best / t_rebuild,
            }
        },
    )
    # serving after a switch stays within the cold-start bar
    assert t_switch_best <= 5.0 * t_warm, (
        f"first search after tenant switch {t_switch_best * 1e3:.2f} ms "
        f"vs warm {t_warm * 1e3:.2f} ms"
    )
    # the mmap store must actually skip the rebuild
    assert t_reload_best <= t_rebuild, (
        f"reload with a current store ({t_reload_best * 1e3:.0f} ms) is "
        f"no cheaper than a first-ever load ({t_rebuild * 1e3:.0f} ms)"
    )


def test_default_tenant_qps_no_regression(fleet_bench, tmp_path_factory):
    comp, truth = fleet_bench
    genes = list(truth.query_genes)
    tmp = tmp_path_factory.mktemp("fleet-qps")

    plain_service = SpellService(comp, n_workers=4)
    plain_app = ApiApp(plain_service)

    fleet_service = SpellService(comp, n_workers=4)
    catalog = CompendiumCatalog(tmp / "cat", default_service=fleet_service)
    # a realistically busy catalog: two extra tenants resident
    small, _ = make_spell_compendium(
        n_datasets=4, n_relevant=2, n_genes=200, n_conditions=10,
        module_size=12, query_size=3, seed=77,
    )
    _populate(catalog, "t1", small, tmp)
    _populate(catalog, "t2", small, tmp)
    fleet_app = ApiApp(fleet_service, catalog=catalog)

    servers = {}
    threads = {}
    qps = {}
    pct = {}
    try:
        for label, app in (("plain", plain_app), ("catalog", fleet_app)):
            server = serve(app, host="127.0.0.1", port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            servers[label], threads[label] = server, thread

        # oracle before timing: both apps answer identically for a
        # request that omits ``compendium`` (the pre-fleet wire format)
        payload = {"genes": genes, "page_size": AIO_PAGE_SIZE}
        expected = plain_app.handle_wire("search", dict(payload))[1]["gene_rows"]
        assert (
            fleet_app.handle_wire("search", dict(payload))[1]["gene_rows"]
            == expected
        )

        for label, server in servers.items():
            host, port = server.server_address[:2]
            _run_keepalive_clients(  # warm-up, every answer checked
                host, port, genes, AIO_CLIENTS, 3,
                expected_rows=expected, page_size=AIO_PAGE_SIZE,
            )
            measured, _, latencies = _run_keepalive_clients(
                host, port, genes, AIO_CLIENTS, AIO_REQUESTS_PER_CLIENT,
                page_size=AIO_PAGE_SIZE,
            )
            qps[label] = measured
            pct[label] = _latency_percentiles(latencies)
    finally:
        for label, server in servers.items():
            server.close()
            threads[label].join(timeout=5)
        catalog.close()
        fleet_service.close()
        plain_service.close()

    ratio = qps["catalog"] / qps["plain"]
    write_report(
        "MULTITENANT_QPS",
        "Default tenant through the catalog vs plain single-tenant app",
        ["app", "requests/sec", "p50", "p95", "p99"],
        [
            [
                label,
                f"{qps[label]:.0f}",
                f"{pct[label]['p50'] * 1e3:.2f} ms",
                f"{pct[label]['p95'] * 1e3:.2f} ms",
                f"{pct[label]['p99'] * 1e3:.2f} ms",
            ]
            for label in ("plain", "catalog")
        ],
        notes=(
            f"{AIO_CLIENTS} keep-alive clients x {AIO_REQUESTS_PER_CLIENT} "
            f"warm-cache searches, page_size {AIO_PAGE_SIZE} (the BENCH_8 "
            f"conditions); requests omit 'compendium'.  Catalog app held 2 "
            f"extra resident tenants.  QPS ratio {ratio:.2f}x.  Rankings "
            "asserted identical across apps before timing."
        ),
    )
    update_json_report(
        "BENCH_10",
        {
            "default_tenant_qps": {
                "clients": AIO_CLIENTS,
                "requests_per_client": AIO_REQUESTS_PER_CLIENT,
                "page_size": AIO_PAGE_SIZE,
                "extra_resident_tenants": 2,
                "plain_qps": qps["plain"],
                "catalog_qps": qps["catalog"],
                "qps_ratio": ratio,
                "plain_latency_ms": {
                    name: v * 1e3 for name, v in pct["plain"].items()
                },
                "catalog_latency_ms": {
                    name: v * 1e3 for name, v in pct["catalog"].items()
                },
            }
        },
    )
    # no regression for the default tenant: the catalog hop is one dict
    # lookup, so anything past timing noise is a routing bug
    assert ratio >= 0.8, (
        f"default tenant through the catalog lost QPS: "
        f"{qps['catalog']:.0f} vs {qps['plain']:.0f} ({ratio:.2f}x)"
    )
