"""FIG3 — the display wall deployment (Figure 3) and §1's capability claim.

The paper: "Today's 2-million-pixel, 30-inch desktop display can only
visualize a tiny percent of such visualization task at a time.  Using
large-format scalable display walls can improve the visualization
capability by about two orders of magnitude due to high resolution and
scale."

Series reproduced:
  1. pixel capability of wall configurations vs the 2-Mpixel desktop
     (at the projectors' real resolutions);
  2. tile-parallel render time and speedup vs render-node count on the
     simulated cluster (at reduced tile resolution, same tile/node
     structure);
  3. byte-identical compositing (correctness gate for the whole series).
"""

import numpy as np
import pytest

from repro.core import ForestView
from repro.wall import DESKTOP_2MPIXEL, DisplayWall, WallGeometry

from benchmarks.conftest import write_report

#: (label, grid, real per-tile resolution) — desktop reference first.
REAL_CONFIGS = [
    ("desktop 30in", (1, 1), (1600, 1200)),
    ("wall 2x2", (2, 2), (1920, 1080)),
    ("wall 2x4", (2, 4), (1920, 1080)),
    ("wall 3x8", (3, 8), (2560, 1600)),
    ("wall 4x12", (4, 12), (2560, 1600)),
]

#: simulation tile size (keeps render time tractable; structure preserved)
SIM_TILE = (300, 200)


@pytest.fixture(scope="module")
def app(case_study_bench):
    comp, truth = case_study_bench
    application = ForestView.from_compendium(comp, cluster_genes=True)
    application.select_genes(list(truth.esr_induced), source="esr")
    return application


def test_fig3_pixel_capability_series(app):
    """§1's 'two orders of magnitude' series at real resolutions."""
    rows = []
    desktop_px = DESKTOP_2MPIXEL.displayed_pixels
    ratios = {}
    for label, (r, c), (tw, th) in REAL_CONFIGS:
        geo = WallGeometry(rows=r, cols=c, tile_width=tw, tile_height=th)
        ratio = geo.displayed_pixels / desktop_px
        ratios[label] = ratio
        rows.append(
            [label, f"{r}x{c}", f"{tw}x{th}",
             f"{geo.displayed_pixels / 1e6:.1f}M", f"{ratio:.1f}x"]
        )
    write_report(
        "FIG3a",
        "display capability vs 2-Mpixel desktop (paper: ~two orders of magnitude)",
        ["config", "tiles", "tile resolution", "pixels", "vs desktop"],
        rows,
        notes=(
            "The 3x8 and 4x12 walls reach ~51x and ~102x the desktop's pixels — "
            "'about two orders of magnitude', matching the paper's claim."
        ),
    )
    assert ratios["wall 3x8"] > 40
    assert ratios["wall 4x12"] > 90  # two orders of magnitude


@pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
def test_fig3_render_scaling(benchmark, app, n_nodes):
    """Frame time on a 3x8-tile wall as render nodes are added."""
    geo = WallGeometry(rows=3, cols=8, tile_width=SIM_TILE[0], tile_height=SIM_TILE[1])
    wall = DisplayWall(geo, n_nodes=n_nodes, schedule="dynamic")
    dl = app.display_list(geo.canvas_width, geo.canvas_height)

    frame = benchmark.pedantic(wall.render, args=(dl,), rounds=3, iterations=1)
    assert frame.metrics.n_tiles == 24


def test_fig3_scaling_series_and_equivalence(app):
    """Speedup series + the byte-identical composite gate, in one report."""
    geo = WallGeometry(rows=3, cols=8, tile_width=SIM_TILE[0], tile_height=SIM_TILE[1])
    dl = app.display_list(geo.canvas_width, geo.canvas_height)
    reference = dl.render_full()

    rows = []
    speedups = {}
    for n_nodes in (1, 2, 4, 8):
        wall = DisplayWall(geo, n_nodes=n_nodes, schedule="dynamic")
        frame = wall.render(dl)
        assert np.array_equal(frame.pixels, reference), "compositing must be exact"
        m = frame.metrics
        speedups[n_nodes] = m.parallel_speedup()
        rows.append(
            [
                n_nodes,
                f"{m.frame_seconds * 1000:.0f} ms",
                f"{m.parallel_speedup():.2f}",
                f"{m.efficiency():.2f}",
                f"{m.load_imbalance():.2f}",
                "identical",
            ]
        )
    write_report(
        "FIG3b",
        "tile-parallel rendering on the simulated cluster (24 tiles)",
        ["render nodes", "frame time", "speedup", "efficiency", "imbalance", "vs serial pixels"],
        rows,
        notes="Composite equals the single-surface render byte-for-byte at every node count.",
    )
    # speedup must grow with node count (allowing thread-scheduling noise)
    assert speedups[4] > speedups[1] * 1.5
    assert speedups[8] >= speedups[2]


def test_fig3_network_traffic(app):
    """Per-frame tile traffic and achievable fps on common links.

    On the real cluster the frame protocol moves every tile's pixels per
    frame; this series quantifies that cost with and without the RLE
    codec for the actual application frame.
    """
    from repro.wall import DisplayWall, estimate_traffic

    geo = WallGeometry(rows=3, cols=8, tile_width=SIM_TILE[0], tile_height=SIM_TILE[1])
    wall = DisplayWall(geo, n_nodes=4, schedule="dynamic")
    frame = wall.render(app.display_list(geo.canvas_width, geo.canvas_height))
    traffic = estimate_traffic(geo, frame.tile_pixels)

    links = [
        ("100 Mbit ethernet", 12_500_000),
        ("1 Gbit ethernet", 125_000_000),
        ("10 Gbit ethernet", 1_250_000_000),
    ]
    rows = [
        ["raw tile pixels / frame", f"{traffic.raw_bytes / 1e6:.1f} MB", ""],
        ["RLE-compressed / frame", f"{traffic.compressed_bytes / 1e6:.2f} MB",
         f"{traffic.compression_ratio:.1f}x smaller"],
    ]
    for name, bps in links:
        rows.append(
            [name,
             f"{traffic.max_fps(bps, compressed=False):.1f} fps raw",
             f"{traffic.max_fps(bps):.0f} fps compressed"]
        )
    write_report(
        "FIG3c",
        "frame-protocol network traffic for the 24-tile wall",
        ["quantity", "value", "note"],
        rows,
        notes=(
            "ForestView frames compress well under RLE (flat backgrounds, "
            "saturated heatmap cells), which is what made interactive tiled "
            "walls feasible on the era's gigabit links."
        ),
    )
    assert traffic.compression_ratio > 1.5
