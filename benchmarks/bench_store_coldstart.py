"""STORE — cold-start and hot-path economics of the persistent index.

Two contracts the persistence layer must honour:

1. **Zero-copy cold start** — reopening a saved index via
   ``IndexStore.load(mmap=True)`` must be at least an order of magnitude
   faster than re-normalizing the compendium with ``SpellIndex.build``,
   and must answer queries bit-identically to the fresh build.
2. **Top-k page queries** — the ``argpartition`` page path must beat the
   pre-refactor full-sort path (materialize a ``GeneScore`` for every
   gene, sort with a Python comparator) while returning rankings
   bit-identical to the pre-refactor float64 results.  The reference
   implementation below *is* that pre-refactor path, kept verbatim as
   the regression oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spell import GeneScore, IndexStore, SpellIndex
from repro.spell.engine import MIN_QUERY_PRESENT
from repro.stats.correlation import fisher_z
from repro.synth import make_spell_compendium
from repro.util.rng import default_rng
from repro.util.timing import Stopwatch

from benchmarks.conftest import write_report

#: Page size the top-k path serves (the web UI's rows-per-screen).
PAGE_K = 25


@pytest.fixture(scope="module")
def coldstart_bench():
    """Condition-heavy compendium: normalization cost dwarfs metadata IO."""
    return make_spell_compendium(
        n_datasets=32,
        n_relevant=6,
        n_genes=500,
        n_conditions=320,
        module_size=30,
        query_size=4,
        seed=777,
    )


@pytest.fixture(scope="module")
def universe_bench():
    """Universe-heavy compendium: ranking cost dominates the query."""
    return make_spell_compendium(
        n_datasets=16,
        n_relevant=5,
        n_genes=4000,
        n_conditions=12,
        module_size=30,
        query_size=4,
        seed=778,
    )


def _rows(result):
    return [(g.gene_id, g.score, g.n_datasets) for g in result.genes]


def test_mmap_coldstart_vs_rebuild(coldstart_bench, tmp_path_factory):
    """Reopening saved shards must be >= 10x faster than a full build."""
    comp, truth = coldstart_bench
    store = tmp_path_factory.mktemp("spell-store")

    with Stopwatch() as sw_build:
        built = SpellIndex.build(comp)
    IndexStore.save(built, store)

    t_mmap = np.inf
    for _ in range(3):
        with Stopwatch() as sw:
            loaded = IndexStore.load(store, mmap=True)
        t_mmap = min(t_mmap, sw.elapsed)
    with Stopwatch() as sw_ram:
        in_memory = IndexStore.load(store, mmap=False)

    query = list(truth.query_genes)
    with Stopwatch() as sw_first:
        mmap_result = loaded.search(query)  # pages fault in here
    built_result = built.search(query)
    assert _rows(mmap_result) == _rows(built_result)
    assert _rows(in_memory.search(query)) == _rows(built_result)

    speedup = sw_build.elapsed / t_mmap
    write_report(
        "STORE_COLD",
        "SPELL persistent index: mmap cold start vs full rebuild",
        ["path", "wall time", "notes"],
        [
            ["SpellIndex.build (full re-normalize)", f"{sw_build.elapsed * 1e3:.1f} ms",
             f"{comp.total_measurements()} measurements"],
            ["IndexStore.load mmap=True", f"{t_mmap * 1e3:.2f} ms",
             f"{speedup:.0f}x faster; zero-copy (np.load mmap_mode='r')"],
            ["IndexStore.load mmap=False", f"{sw_ram.elapsed * 1e3:.1f} ms",
             "materialized in RAM up front"],
            ["first query on mmap index", f"{sw_first.elapsed * 1e3:.2f} ms",
             "shard pages fault in lazily"],
        ],
        notes=(
            f"{len(comp)} datasets, {built.nbytes() / 2**20:.1f} MiB of shards; "
            "rankings from the reopened index are bit-identical to the fresh "
            "build. Manifest carries gene lists, dtype, format version and "
            "per-dataset content fingerprints."
        ),
    )
    assert speedup >= 10.0, f"mmap cold start only {speedup:.1f}x faster than rebuild"


def _prerefactor_search_genes(index: SpellIndex, query: list[str]):
    """The pre-refactor float64 query path, verbatim: per-gene dict probing,
    a ``GeneScore`` object per scored gene, Python-comparator full sort.

    Kept as the oracle for the array/top-k path: same math, legacy
    materialization — output must match bit-for-bit.
    """
    query_used = tuple(g for g in query if any(g in e.gene_pos for e in index._entries))
    n_slots = len(index._slot_gene)
    totals = np.zeros(n_slots)
    weight_mass = np.zeros(n_slots)
    counts = np.zeros(n_slots, dtype=np.intp)
    query_set = set(query_used)

    for entry, slots in zip(index._entries, index._global_rows):
        present = [g for g in query_used if g in entry.gene_pos]
        if len(present) < MIN_QUERY_PRESENT:
            continue
        rows = np.asarray([entry.gene_pos[g] for g in present], dtype=np.intp)
        Q = entry.normalized[rows]
        qcorr = np.clip(Q @ Q.T, -1.0, 1.0)
        iu = np.triu_indices(len(present), k=1)
        mean_r = float(np.tanh(np.mean(fisher_z(qcorr[iu]))))
        weight = max(0.0, mean_r) ** 2
        if weight <= 0.0:
            continue
        scores = np.clip(entry.normalized @ Q.T, -1.0, 1.0).mean(axis=1)
        totals[slots] += weight * scores
        weight_mass[slots] += weight
        counts[slots] += 1

    scored = np.flatnonzero(counts)
    with np.errstate(invalid="ignore", divide="ignore"):
        final = totals[scored] / weight_mass[scored]
    gene_scores = [
        GeneScore(gene_id=g, score=float(s), n_datasets=int(n))
        for g, s, n in zip(
            (index._slot_gene[i] for i in scored), final, counts[scored]
        )
        if g not in query_set
    ]
    gene_scores.sort(key=lambda s: (-s.score, s.gene_id))
    return gene_scores


def test_topk_beats_prerefactor_full_sort(universe_bench):
    """argpartition page queries: faster than materialize-and-sort-all,
    rankings bit-identical to the pre-refactor float64 results."""
    comp, truth = universe_bench
    index = SpellIndex.build(comp)
    universe = comp.gene_universe()
    rng = default_rng(20260729)
    queries = [list(truth.query_genes)]
    while len(queries) < 12:
        picks = rng.choice(len(universe), size=4, replace=False)
        queries.append([universe[int(p)] for p in picks])

    # correctness first: full ranking and top-k page vs the legacy oracle
    for q in queries:
        legacy = _prerefactor_search_genes(index, q)
        full = index.search(q)
        assert [(g.gene_id, g.score, g.n_datasets) for g in full.genes] == [
            (g.gene_id, g.score, g.n_datasets) for g in legacy
        ]
        page = index.search(q, top_k=PAGE_K)
        assert _rows(page) == [
            (g.gene_id, g.score, g.n_datasets) for g in legacy[:PAGE_K]
        ]
        assert page.total_genes == len(legacy)

    def timed(fn):
        with Stopwatch() as sw:
            for q in queries:
                fn(q)
        return sw.elapsed / len(queries)

    t_legacy = timed(lambda q: _prerefactor_search_genes(index, q))
    t_full = timed(lambda q: index.search(q))
    t_topk = timed(lambda q: index.search(q, top_k=PAGE_K))

    write_report(
        "STORE_TOPK",
        f"SPELL query: top-{PAGE_K} page vs full-sort paths "
        f"({len(universe)}-gene universe)",
        ["path", "mean latency", "notes"],
        [
            ["pre-refactor full sort", f"{t_legacy * 1e3:.2f} ms",
             "GeneScore per gene + Python comparator"],
            ["array full sort", f"{t_full * 1e3:.2f} ms",
             "np.lexsort over score arrays"],
            [f"top-{PAGE_K} page (argpartition)", f"{t_topk * 1e3:.2f} ms",
             f"{t_legacy / t_topk:.1f}x vs pre-refactor"],
        ],
        notes=(
            f"{len(queries)} queries over {len(comp)} datasets; all three "
            "paths return bit-identical float64 rankings (asserted above); "
            "the page path sorts only the rows it serves."
        ),
    )
    assert t_topk < t_legacy, (
        f"top-k page path ({t_topk * 1e3:.2f} ms) failed to beat the "
        f"pre-refactor full sort ({t_legacy * 1e3:.2f} ms)"
    )
    # the array paths must never regress below the materializing path
    assert t_full < t_legacy
