"""Setup shim.

Kept alongside pyproject.toml so `pip install -e . --no-use-pep517` works
on environments whose setuptools lacks PEP 660 support (no `wheel`
package available offline).
"""

from setuptools import setup

setup()
