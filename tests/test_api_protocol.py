"""The v1 wire protocol: round-tripping, validation, error mapping, paging.

Covers the contract every transport relies on: ``from_wire(to_wire(x))``
is the identity for every message type (property-tested), malformed
payloads become structured :class:`ApiError` codes (never bare Python
exceptions), and pagination semantics (``total_pages``,
``PAGE_OUT_OF_RANGE``) live in the protocol layer.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.errors import API_VERSION, ERROR_STATUS, ApiError, as_api_error, error_payload
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ClusterRequest,
    ClusterResponse,
    DatasetInfo,
    DatasetListRequest,
    DatasetListResponse,
    ExportChunk,
    ExportRequest,
    ExportTrailer,
    HealthResponse,
    RenderRequest,
    RenderResponse,
    SearchRequest,
    SearchResponse,
    page_count,
)
from repro.spell import SpellService
from repro.spell.service import BatchSearchResult
from repro.util.errors import RenderError, SearchError, StoreError, ValidationError

# ---------------------------------------------------------------- strategies
gene_ids = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", min_size=1, max_size=8
)
gene_lists = st.lists(gene_ids, min_size=1, max_size=6, unique=True).map(tuple)
scores = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def search_requests(draw):
    return SearchRequest(
        genes=draw(gene_lists),
        top_k=draw(st.one_of(st.none(), st.integers(1, 500))),
        page=draw(st.integers(0, 50)),
        page_size=draw(st.integers(1, 100)),
        top_datasets=draw(st.integers(0, 20)),
        datasets=draw(
            st.one_of(
                st.none(),
                st.lists(gene_ids, min_size=1, max_size=4, unique=True).map(tuple),
            )
        ),
        use_cache=draw(st.booleans()),
    )


@st.composite
def search_responses(draw):
    n_rows = draw(st.integers(0, 5))
    return SearchResponse(
        query=draw(gene_lists),
        query_used=draw(gene_lists),
        query_missing=draw(st.lists(gene_ids, max_size=3, unique=True).map(tuple)),
        page=draw(st.integers(0, 10)),
        page_size=draw(st.integers(1, 50)),
        total_genes=draw(st.integers(0, 10_000)),
        total_pages=draw(st.integers(0, 500)),
        gene_rows=tuple(
            (i + 1, draw(gene_ids), draw(scores)) for i in range(n_rows)
        ),
        dataset_rows=tuple(
            (i + 1, draw(gene_ids), draw(scores)) for i in range(draw(st.integers(0, 3)))
        ),
        elapsed_seconds=draw(st.floats(0, 10, allow_nan=False)),
    )


def wire_identity(message, cls):
    """to_wire -> real JSON -> from_wire must reproduce the message."""
    payload = json.loads(json.dumps(message.to_wire()))
    assert cls.from_wire(payload) == message


# ---------------------------------------------------------------- round-trip
class TestWireRoundTrip:
    @given(req=search_requests())
    @settings(max_examples=60, deadline=None)
    def test_search_request(self, req):
        wire_identity(req, SearchRequest)

    @given(reqs=st.lists(search_requests(), min_size=1, max_size=3),
           scheduler=st.sampled_from(["map", "steal"]))
    @settings(max_examples=30, deadline=None)
    def test_batch_request(self, reqs, scheduler):
        wire_identity(
            BatchSearchRequest(searches=tuple(reqs), scheduler=scheduler),
            BatchSearchRequest,
        )

    def test_dataset_list_request(self):
        wire_identity(DatasetListRequest(), DatasetListRequest)

    @given(req=search_requests(), top=st.integers(2, 50),
           metric=st.sampled_from(["correlation", "euclidean"]),
           linkage=st.sampled_from(["average", "complete", "single", "ward"]))
    @settings(max_examples=30, deadline=None)
    def test_cluster_request(self, req, top, metric, linkage):
        wire_identity(
            ClusterRequest(search=req, top_genes=top, metric=metric, linkage=linkage),
            ClusterRequest,
        )

    @given(req=search_requests(), top=st.integers(1, 50),
           colormap=st.sampled_from(["red-green", "grayscale"]),
           saturation=st.one_of(st.none(), st.floats(0.1, 5.0)),
           cw=st.integers(1, 16), ch=st.integers(1, 16), cluster=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_render_request(self, req, top, colormap, saturation, cw, ch, cluster):
        wire_identity(
            RenderRequest(
                search=req, top_genes=top, colormap=colormap, saturation=saturation,
                cell_width=cw, cell_height=ch, cluster=cluster,
            ),
            RenderRequest,
        )

    @given(resp=search_responses())
    @settings(max_examples=60, deadline=None)
    def test_search_response(self, resp):
        wire_identity(resp, SearchResponse)

    @given(resps=st.lists(search_responses(), min_size=0, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_batch_response(self, resps):
        wire_identity(
            BatchSearchResponse(
                results=tuple(resps), total_seconds=0.5, n_workers=2,
                cache_hits=1, cache_misses=2,
            ),
            BatchSearchResponse,
        )

    def test_dataset_list_response(self):
        wire_identity(
            DatasetListResponse(
                datasets=(
                    DatasetInfo("ds0", 10, 4, {"kind": "background"}),
                    DatasetInfo("ds1", 7, 3),
                )
            ),
            DatasetListResponse,
        )

    def test_cluster_response(self):
        wire_identity(
            ClusterResponse(
                genes=("G1", "G2", "G3"),
                dataset="ds0",
                metric="correlation",
                linkage="average",
                merges=((0, 1, 0.25, 2), (3, 2, 0.5, 3)),
                elapsed_seconds=0.01,
            ),
            ClusterResponse,
        )

    def test_render_response(self):
        wire_identity(
            RenderResponse(
                width=8, height=4, dataset="ds0", colormap="red-green",
                genes=("G1",), ppm=b"P6\n2 1\n255\n" + bytes(6),
                elapsed_seconds=0.01,
            ),
            RenderResponse,
        )

    def test_health_response(self):
        wire_identity(
            HealthResponse(
                status="ok", uptime_seconds=1.5, datasets=3, genes=100,
                index_bytes=4096, query_count=7,
                cache={"hits": 2, "misses": 5},
                endpoints={"search": {"count": 7, "errors": 1,
                                      "total_seconds": 0.2, "mean_seconds": 0.03}},
                serving={"n_workers": 2},
                limits={"rate_limited": 3, "auth_required": True},
            ),
            HealthResponse,
        )

    @given(genes=gene_lists, top_k=st.one_of(st.none(), st.integers(1, 500)),
           chunk=st.integers(1, 5000), use_cache=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_export_request(self, genes, top_k, chunk, use_cache):
        wire_identity(
            ExportRequest(
                genes=genes, top_k=top_k, chunk_size=chunk, use_cache=use_cache
            ),
            ExportRequest,
        )

    @given(offset=st.integers(0, 10_000), n_rows=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_export_chunk(self, offset, n_rows):
        wire_identity(
            ExportChunk(
                offset=offset,
                gene_rows=tuple(
                    (offset + i + 1, f"G{i}", 0.5 - i * 0.01) for i in range(n_rows)
                ),
            ),
            ExportChunk,
        )

    def test_export_trailer(self):
        wire_identity(
            ExportTrailer(
                status="ok", total_genes=1000, total_rows=1000, n_chunks=2,
                checksum="sha256:abc123", query=("G1", "G2"),
                query_used=("G1",), query_missing=("G2",),
                dataset_rows=((1, "ds0", 0.9),), elapsed_seconds=0.05,
            ),
            ExportTrailer,
        )
        wire_identity(
            ExportTrailer(
                status="error", n_chunks=1, checksum="sha256:def",
                error={"code": "INTERNAL", "message": "boom"},
            ),
            ExportTrailer,
        )


# ---------------------------------------------------------------- validation
class TestValidation:
    def test_empty_query_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest(genes=())
        assert exc.value.code == "INVALID_QUERY"

    def test_duplicate_genes_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest(genes=("A", "A"))
        assert exc.value.code == "INVALID_QUERY"

    @pytest.mark.parametrize(
        "field,value",
        [("page", -1), ("page_size", 0), ("top_k", 0), ("top_datasets", -2)],
    )
    def test_bad_numeric_fields(self, field, value):
        with pytest.raises(ApiError) as exc:
            SearchRequest(genes=("A",), **{field: value})
        assert exc.value.code == "INVALID_REQUEST"

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest.from_wire({"genes": ["A"], "limit": 5})
        assert exc.value.code == "INVALID_REQUEST"
        assert "limit" in exc.value.details["unknown_fields"]

    def test_wrong_version_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest.from_wire({"api_version": "v2", "genes": ["A"]})
        assert exc.value.code == "UNSUPPORTED_VERSION"
        assert exc.value.details["supported"] == [API_VERSION]

    def test_non_object_payload_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest.from_wire(["A", "B"])
        assert exc.value.code == "MALFORMED_BODY"

    def test_non_string_genes_rejected(self):
        with pytest.raises(ApiError) as exc:
            SearchRequest.from_wire({"genes": ["A", 3]})
        assert exc.value.code == "INVALID_REQUEST"

    def test_batch_needs_searches(self):
        with pytest.raises(ApiError):
            BatchSearchRequest.from_wire({"searches": "nope"})
        with pytest.raises(ApiError):
            BatchSearchRequest(searches=())

    def test_bad_scheduler(self):
        with pytest.raises(ApiError) as exc:
            BatchSearchRequest(
                searches=(SearchRequest(genes=("A",)),), scheduler="fifo"
            )
        assert exc.value.code == "INVALID_REQUEST"

    def test_cluster_unknown_metric_linkage(self):
        search = SearchRequest(genes=("A",))
        with pytest.raises(ApiError):
            ClusterRequest(search=search, metric="cosine")
        with pytest.raises(ApiError):
            ClusterRequest(search=search, linkage="median")

    def test_render_unknown_colormap(self):
        with pytest.raises(ApiError) as exc:
            RenderRequest(search=SearchRequest(genes=("A",)), colormap="viridis")
        assert "choices" in exc.value.details

    def test_render_bad_base64(self):
        with pytest.raises(ApiError):
            RenderResponse.from_wire({"width": 1, "height": 1, "ppm_base64": "%%%"})

    def test_export_request_validation(self):
        with pytest.raises(ApiError) as exc:
            ExportRequest.from_wire({"genes": ["A"], "chunk_size": 0})
        assert exc.value.code == "INVALID_REQUEST"
        with pytest.raises(ApiError) as exc:
            ExportRequest.from_wire({"genes": ["A"], "page": 2})  # no paging here
        assert exc.value.code == "INVALID_REQUEST"
        with pytest.raises(ApiError) as exc:
            ExportRequest.from_wire({"chunk_size": 5})
        assert exc.value.code == "INVALID_QUERY"

    def test_stream_lines_reject_kind_mismatch(self):
        """A trailer parsed as a chunk (or vice versa) must be a
        structured error — the kind discriminator is load-bearing."""
        trailer_wire = ExportTrailer(status="ok").to_wire()
        with pytest.raises(ApiError):
            ExportChunk.from_wire(trailer_wire)
        chunk_wire = ExportChunk(offset=0, gene_rows=()).to_wire()
        with pytest.raises(ApiError):
            ExportTrailer.from_wire(chunk_wire)

    def test_trailer_error_status_pairing(self):
        with pytest.raises(ApiError):
            ExportTrailer(status="error")  # error status needs an error object
        with pytest.raises(ApiError):
            ExportTrailer(status="ok", error={"code": "INTERNAL", "message": "x"})
        with pytest.raises(ApiError):
            ExportTrailer(status="partial")


# ------------------------------------------------------------- error mapping
class TestErrorModel:
    def test_every_code_has_a_status(self):
        for code, status in ERROR_STATUS.items():
            assert 400 <= status < 600, code

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ApiError("NOT_A_CODE", "nope")

    @pytest.mark.parametrize(
        "exc,code",
        [
            (StoreError("store gone"), "INDEX_STALE"),
            (SearchError("bad query"), "INVALID_QUERY"),
            (ValidationError("bad arg"), "INVALID_REQUEST"),
            (RenderError("bad geometry"), "INVALID_REQUEST"),
            (RuntimeError("boom"), "INTERNAL"),
        ],
    )
    def test_classification(self, exc, code):
        err = as_api_error(exc)
        assert err.code == code
        assert err.http_status == ERROR_STATUS[code]

    def test_api_error_passes_through(self):
        original = ApiError("UNKNOWN_GENE", "nope", details={"unknown_genes": ["X"]})
        assert as_api_error(original) is original

    def test_error_payload_shape(self):
        payload = error_payload(ApiError("INVALID_QUERY", "empty", details={"n": 0}))
        assert payload["api_version"] == API_VERSION
        assert payload["error"]["code"] == "INVALID_QUERY"
        assert payload["error"]["details"] == {"n": 0}
        json.dumps(payload)  # wire form must be JSON-serializable


# ----------------------------------------------------------------- paging
class TestPaging:
    @given(total=st.integers(0, 10_000), page_size=st.integers(1, 100))
    @settings(max_examples=80, deadline=None)
    def test_page_count(self, total, page_size):
        pages = page_count(total, page_size)
        assert pages >= 1  # an empty ranking still has one (empty) page
        assert pages == max(1, math.ceil(total / page_size))

    def test_respond_reports_total_pages(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        response = service.respond(
            SearchRequest(genes=truth.query_genes, page_size=10)
        )
        assert response.total_pages == page_count(response.total_genes, 10)
        assert response.total_genes > 0

    def test_respond_page_out_of_range(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        with pytest.raises(ApiError) as exc:
            service.respond(SearchRequest(genes=truth.query_genes, page=10_000))
        assert exc.value.code == "PAGE_OUT_OF_RANGE"
        assert exc.value.details["page"] == 10_000
        assert exc.value.details["total_pages"] >= 1

    def test_top_k_caps_total_pages(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        response = service.respond(
            SearchRequest(genes=truth.query_genes, top_k=7, page_size=5)
        )
        assert response.total_pages == 2  # ceil(7 / 5)
        with pytest.raises(ApiError):
            service.respond(
                SearchRequest(genes=truth.query_genes, top_k=7, page_size=5, page=2)
            )

    def test_legacy_search_page_still_returns_empty(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        with pytest.warns(DeprecationWarning, match="search_page is deprecated"):
            page = service.search_page(list(truth.query_genes), page=10_000)
        assert page.gene_rows == ()
        assert page.total_genes > 0

    def test_shim_matches_protocol_rows(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        with pytest.warns(DeprecationWarning, match="search_page is deprecated"):
            legacy = service.search_page(list(truth.query_genes), page=1, page_size=7)
        response = service.respond(
            SearchRequest(genes=truth.query_genes, page=1, page_size=7)
        )
        assert legacy.gene_rows == response.gene_rows
        assert legacy.dataset_rows == response.dataset_rows

    def test_legacy_search_many_warns(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        with pytest.warns(DeprecationWarning, match="search_many is deprecated"):
            batch = service.search_many([list(truth.query_genes)])
        assert len(batch.pages) == 1


# --------------------------------------------------- service-level additions
class TestServiceProtocolPath:
    def test_queries_per_second_clamps(self):
        empty = BatchSearchResult(
            pages=(), total_seconds=0.0, n_workers=1, cache_hits=0, cache_misses=0
        )
        assert empty.queries_per_second == 0.0
        zero_duration = BatchSearchResult(
            pages=(object(),), total_seconds=0.0, n_workers=1,
            cache_hits=0, cache_misses=0,
        )
        assert zero_duration.queries_per_second == 0.0
        assert not np.isinf(zero_duration.queries_per_second)

    def test_batch_response_qps_clamps(self):
        empty = BatchSearchResponse(
            results=(), total_seconds=0.0, n_workers=1, cache_hits=0, cache_misses=0
        )
        assert empty.queries_per_second == 0.0

    def test_dataset_filter_restricts_search(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        subset = list(truth.relevant_datasets)
        result = service.search(list(truth.query_genes), datasets=subset)
        assert set(d.name for d in result.datasets) == set(subset)
        full = service.search(list(truth.query_genes))
        assert len(full.datasets) == len(compendium)

    def test_dataset_filter_equals_subcompendium(self, spell_setup):
        """Filtering is bit-identical to searching a compendium of just
        those datasets (for both the index and the exact-engine path)."""
        from repro.data.compendium import Compendium

        compendium, truth = spell_setup
        subset = list(truth.relevant_datasets)
        sub = Compendium([compendium[name] for name in subset])
        for use_index in (True, False):
            filtered = SpellService(compendium, use_index=use_index, cache_size=0)
            direct = SpellService(sub, use_index=use_index, cache_size=0)
            a = filtered.search(list(truth.query_genes), datasets=subset)
            b = direct.search(list(truth.query_genes))
            assert a.dataset_ranking() == b.dataset_ranking()
            assert a.gene_ranking() == b.gene_ranking()
            assert [d.weight for d in a.datasets] == [d.weight for d in b.datasets]

    def test_dataset_filter_unknown_name(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        with pytest.raises(SearchError):
            service.search(list(truth.query_genes), datasets=["no_such_dataset"])

    def test_dataset_filter_cached_separately(self, spell_setup):
        compendium, truth = spell_setup
        service = SpellService(compendium)
        full = service.search(list(truth.query_genes))
        filtered = service.search(
            list(truth.query_genes), datasets=list(truth.relevant_datasets)
        )
        assert len(filtered.datasets) < len(full.datasets)
        # repeat both: each must come back from its own cache entry
        assert len(service.search(list(truth.query_genes)).datasets) == len(full.datasets)
        assert len(
            service.search(
                list(truth.query_genes), datasets=list(truth.relevant_datasets)
            ).datasets
        ) == len(filtered.datasets)
