"""The committed API reference must match the live registry.

``docs/api.md`` is generated from the route table, the protocol
dataclasses, and the error registry; this suite regenerates it in-memory
and compares — so an endpoint, field, or error code added without
running ``python -m repro.api.docs`` fails here, not in a reader's lap.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.docs import default_output, generate_markdown
from repro.api.errors import ERROR_STATUS
from repro.api.routes import ROUTES

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_committed_reference_is_fresh():
    committed = REPO_ROOT / "docs" / "api.md"
    assert committed.exists(), (
        "docs/api.md missing — run `PYTHONPATH=src python -m repro.api.docs`"
    )
    assert committed.read_text() == generate_markdown(), (
        "docs/api.md is stale — run `PYTHONPATH=src python -m repro.api.docs`"
    )


def test_default_output_points_into_this_repo():
    assert default_output() == REPO_ROOT / "docs" / "api.md"


def test_generation_is_deterministic():
    assert generate_markdown() == generate_markdown()


def test_reference_covers_every_route_and_error():
    text = generate_markdown()
    for route in ROUTES:
        assert f"`{route.method} {route.path}`" in text
        if route.request_cls is not None:
            assert f"`{route.request_cls.__name__}`" in text
    for code in ERROR_STATUS:
        assert f"`{code}`" in text
    # the v1 partiality contract is user-facing: it must be documented
    assert "`partial`" in text
    assert "`shards`" in text
