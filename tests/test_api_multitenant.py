"""Multi-tenant serving over the wire: compat, quotas, ingestion.

Four acceptance bars from the fleet refactor, checked end-to-end over
**both** facades (threaded and asyncio):

* **Wire compatibility** — a request omitting the append-only
  ``compendium`` field is answered byte-compatible with a pre-fleet
  single-tenant deployment (same JSON bodies modulo timing fields);
  naming ``"default"`` explicitly is the identical answer.
* **Tenant routing** — ``POST /v1/ingest`` grows a named tenant live,
  and tenant-scoped searches answer exactly like a dedicated service
  built over the same submissions.
* **Quotas** — per-authenticated-token buckets 429 one principal
  without touching another, per-tenant budgets 429 one compendium
  without touching the default, and both carry a working
  ``Retry-After`` header on both facades.
* **Operability** — ``GET /v1/datasets`` carries the durable
  ``fingerprint`` + storage ``tier`` per dataset, ``/v1/health`` rolls
  up per-tenant stats, and the aio CLI accepts every flag the threaded
  CLI does (no drift).
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api.app import ApiApp
from repro.api.aio.server import serve_background as aio_serve
from repro.api.http import serve_background as threaded_serve
from repro.api.limits import RequestGate
from repro.api.protocol import (
    DatasetInfo,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    SearchRequest,
)
from repro.data.compendium import Compendium
from repro.data.loader import parse_dataset
from repro.data.pcl import write_pcl
from repro.spell import SpellService
from repro.spell.catalog import CompendiumCatalog
from repro.synth import make_spell_compendium

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=80,
        n_conditions=8,
        module_size=10,
        query_size=3,
        seed=13,
    )


def pcl_text(tmp_path, dataset) -> str:
    path = tmp_path / f"{dataset.name}.pcl.src"
    write_pcl(dataset.matrix, path)
    return path.read_text(encoding="utf-8")


def scrub(obj):
    """Drop timing fields — the only divergence the oracle allows."""
    if isinstance(obj, dict):
        return {
            k: scrub(v)
            for k, v in obj.items()
            if k not in ("elapsed_seconds", "total_seconds")
        }
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


def request_raw(addr, method, path, payload=None, headers=None):
    """One request over a fresh connection; (status, body bytes, headers)."""
    conn = http.client.HTTPConnection(*addr, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body, headers=dict(headers or {}))
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def request_json(addr, method, path, payload=None, headers=None):
    status, body, resp_headers = request_raw(
        addr, method, path, payload, headers
    )
    return status, json.loads(body), resp_headers


class TestProtocol:
    def test_compendium_field_round_trips(self):
        req = SearchRequest(genes=("g1",), compendium="acme")
        assert req.to_wire()["compendium"] == "acme"
        assert SearchRequest.from_wire(req.to_wire()) == req

    def test_omitting_compendium_still_parses(self):
        """The pre-fleet client payload is untouched wire format."""
        req = SearchRequest.from_wire({"genes": ["g1"]})
        assert req.compendium is None

    def test_hostile_compendium_rejected_at_parse(self):
        from repro.api.errors import ApiError

        for bad in ("../evil", "a/b", "", "x" * 65):
            with pytest.raises(ApiError) as exc:
                SearchRequest.from_wire({"genes": ["g1"], "compendium": bad})
            assert exc.value.code == "INVALID_REQUEST"

    def test_ingest_round_trip(self):
        req = IngestRequest(
            name="ds1", format="pcl", content="x\ty\n", compendium="acme"
        )
        assert IngestRequest.from_wire(req.to_wire()) == req
        resp = IngestResponse(
            compendium="acme",
            dataset="ds1",
            n_genes=3,
            n_conditions=2,
            fingerprint="f" * 40,
            compendium_fingerprint="c" * 40,
            datasets=1,
            elapsed_seconds=0.1,
        )
        assert IngestResponse.from_wire(resp.to_wire()) == resp

    def test_dataset_info_and_health_append_only_fields(self):
        info = DatasetInfo(
            name="d", n_genes=1, n_conditions=1, metadata={},
            fingerprint="a" * 40, tier="cold",
        )
        assert DatasetInfo.from_wire(info.to_wire()) == info
        health = HealthResponse(
            status="ok", datasets=1, genes=1, uptime_seconds=0.0,
            index_bytes=0, query_count=0, cache={}, endpoints={},
            tenants={"default": {"resident": True}},
        )
        assert HealthResponse.from_wire(health.to_wire()) == health


@pytest.fixture(scope="module")
def fleet(setup, tmp_path_factory):
    """Both facades over one catalog-backed app, plus a plain
    single-tenant app as the wire-compat baseline."""
    compendium, truth = setup
    tmp = tmp_path_factory.mktemp("fleet")
    service = SpellService(compendium, n_workers=2)
    catalog = CompendiumCatalog(tmp / "catalog", default_service=service)
    app = ApiApp(service, gate=RequestGate(), catalog=catalog)

    plain_service = SpellService(compendium, n_workers=2)
    plain_app = ApiApp(plain_service)

    aio_server, aio_thread = aio_serve(app, transport_label="aio-fleet")
    thr_server, thr_thread = threaded_serve(app, transport_label="http-fleet")
    plain_server, plain_thread = threaded_serve(
        plain_app, transport_label="http-plain"
    )
    yield {
        "aio": aio_server.server_address[:2],
        "threaded": thr_server.server_address[:2],
        "plain": plain_server.server_address[:2],
        "service": service,
        "truth": truth,
        "tmp": tmp,
        "catalog": catalog,
    }
    for server, thread in (
        (aio_server, aio_thread),
        (thr_server, thr_thread),
        (plain_server, plain_thread),
    ):
        server.close(timeout=5)
        thread.join(timeout=10)
    catalog.close()
    service.close()
    plain_service.close()


class TestWireCompat:
    """Requests omitting ``compendium`` == the pre-fleet deployment."""

    @pytest.mark.parametrize("facade", ["aio", "threaded"])
    def test_default_tenant_bodies_match_plain_single_tenant(
        self, fleet, facade
    ):
        query = list(fleet["truth"].query_genes)
        for endpoint, payload in [
            ("/v1/search", {"genes": query, "page_size": 20}),
            (
                "/v1/search/batch",
                {"searches": [{"genes": query, "page_size": 5}] * 2},
            ),
        ]:
            status, got, _ = request_json(
                fleet[facade], "POST", endpoint, payload
            )
            ref_status, want, _ = request_json(
                fleet["plain"], "POST", endpoint, payload
            )
            assert (status, scrub(got)) == (ref_status, scrub(want)), endpoint
        # explicitly naming the default tenant changes nothing
        status, named, _ = request_json(
            fleet[facade], "POST", "/v1/search",
            {"genes": query, "page_size": 20, "compendium": "default"},
        )
        status2, anon, _ = request_json(
            fleet[facade], "POST", "/v1/search",
            {"genes": query, "page_size": 20},
        )
        assert status == status2 == 200
        assert scrub(named) == scrub(anon)

    def test_unknown_compendium_is_structured_404(self, fleet):
        for facade in ("aio", "threaded"):
            status, body, _ = request_json(
                fleet[facade], "POST", "/v1/search",
                {"genes": ["g1"], "compendium": "ghost"},
            )
            assert status == 404, facade
            assert body["error"]["code"] == "UNKNOWN_COMPENDIUM"
            assert "known" in body["error"]["details"]


class TestIngestEndToEnd:
    def test_ingest_then_search_matches_dedicated_service(self, fleet, setup):
        compendium, truth = setup
        query = list(truth.query_genes)
        subset = list(compendium)[:3]
        # each facade gets its own tenant so the test order can't matter
        for facade, tenant in (("threaded", "acme"), ("aio", "zenith")):
            submitted = []
            for ds in subset:
                text = pcl_text(fleet["tmp"], ds)
                submitted.append(parse_dataset(text, "pcl", name=ds.name))
                status, body, _ = request_json(
                    fleet[facade], "POST", "/v1/ingest",
                    {
                        "name": ds.name, "format": "pcl",
                        "content": text, "compendium": tenant,
                    },
                )
                assert status == 200, body
                assert body["compendium"] == tenant
                assert body["dataset"] == ds.name
                assert len(body["fingerprint"]) == 40
            assert body["datasets"] == len(subset)

            status, got, _ = request_json(
                fleet[facade], "POST", "/v1/search",
                {"genes": query, "page_size": 25, "compendium": tenant},
            )
            assert status == 200, got
            with SpellService(Compendium(submitted), n_workers=1) as oracle:
                want = ApiApp(oracle).handle_wire(
                    "search", {"genes": query, "page_size": 25}
                )[1]
            assert scrub(got) == scrub(want), facade

    def test_duplicate_409_and_malformed_400_over_the_wire(self, fleet, setup):
        compendium, _ = setup
        ds = list(compendium)[4]
        text = pcl_text(fleet["tmp"], ds)
        payload = {
            "name": ds.name, "format": "pcl",
            "content": text, "compendium": "dupes",
        }
        status, body, _ = request_json(
            fleet["threaded"], "POST", "/v1/ingest", payload
        )
        assert status == 200, body
        status, body, _ = request_json(
            fleet["aio"], "POST", "/v1/ingest", payload
        )
        assert status == 409
        assert body["error"]["code"] == "DATASET_EXISTS"
        status, body, _ = request_json(
            fleet["aio"], "POST", "/v1/ingest",
            {
                "name": "broken", "format": "pcl",
                "content": "definitely\tnot\ta\tpcl",
                "compendium": "dupes",
            },
        )
        assert status == 400
        assert body["error"]["code"] == "INVALID_REQUEST"


class TestOperability:
    def test_datasets_carry_fingerprint_and_tier(self, fleet, setup):
        compendium, _ = setup
        by_name = {ds.name: ds for ds in compendium}
        for facade in ("aio", "threaded"):
            status, body, _ = request_json(fleet[facade], "GET", "/v1/datasets")
            assert status == 200
            for entry in body["datasets"]:
                assert entry["fingerprint"] == by_name[entry["name"]].fingerprint
                assert entry["tier"] == "resident"  # no store → all resident

    def test_health_rolls_up_tenants(self, fleet):
        for facade in ("aio", "threaded"):
            status, body, _ = request_json(fleet[facade], "GET", "/v1/health")
            assert status == 200
            tenants = body["tenants"]
            assert tenants["default"]["resident"] is True
            assert "_catalog" in tenants
            assert tenants["_catalog"]["resident"] >= 1

    def test_plain_app_health_has_empty_tenants(self, fleet):
        status, body, _ = request_json(fleet["plain"], "GET", "/v1/health")
        assert status == 200
        assert body["tenants"] == {}


class TestQuotas:
    @pytest.fixture()
    def gated(self, setup):
        """Boot both facades over one gate recipe; returns addresses."""
        compendium, _ = setup
        cleanups = []

        def boot(**gate_kwargs):
            service = SpellService(compendium, n_workers=1)
            aio_server, aio_thread = aio_serve(
                ApiApp(service, gate=RequestGate(**gate_kwargs)),
                transport_label="aio-quota",
            )
            thr_server, thr_thread = threaded_serve(
                ApiApp(service, gate=RequestGate(**gate_kwargs)),
                transport_label="http-quota",
            )
            cleanups.append(
                (service, aio_server, aio_thread, thr_server, thr_thread)
            )
            return aio_server.server_address[:2], thr_server.server_address[:2]

        yield boot
        for service, aio_server, aio_thread, thr_server, thr_thread in cleanups:
            aio_server.close(timeout=5)
            thr_server.close(timeout=5)
            aio_thread.join(timeout=10)
            thr_thread.join(timeout=10)
            service.unregister_transport_stats("aio-quota")
            service.unregister_transport_stats("http-quota")
            service.close()

    def test_per_token_quota_isolates_principals(self, gated, setup):
        """alice exhausting her bucket never costs bob a request."""
        _, truth = setup
        payload = {"genes": list(truth.query_genes), "page_size": 5}
        addrs = gated(
            auth_tokens={"tok-alice": "alice", "tok-bob": "bob"},
            token_rate_limit=0.001,
            token_rate_burst=2,
        )
        for addr in addrs:
            alice = {"Authorization": "Bearer tok-alice"}
            statuses = [
                request_raw(addr, "POST", "/v1/search", payload, alice)[0]
                for _ in range(3)
            ]
            assert statuses == [200, 200, 429], addr
            status, body, headers = request_json(
                addr, "POST", "/v1/search", payload, alice
            )
            assert status == 429
            assert body["error"]["code"] == "RATE_LIMITED"
            assert body["error"]["details"]["scope"] == "token"
            assert body["error"]["details"]["principal"] == "alice"
            assert int(headers["Retry-After"]) >= 1
            # bob's bucket is untouched by alice's exhaustion
            bob = {"Authorization": "Bearer tok-bob"}
            status, _, _ = request_json(
                addr, "POST", "/v1/search", payload, bob
            )
            assert status == 200

    def test_per_tenant_budget_spares_other_tenants(self, gated, setup):
        """Exhausting one compendium's budget never 429s the default."""
        _, truth = setup
        query = list(truth.query_genes)
        addrs = gated(tenant_rate_limit=0.001, tenant_rate_burst=2)
        for addr in addrs:
            named = {"genes": query, "page_size": 5, "compendium": "default"}
            statuses = [
                request_raw(addr, "POST", "/v1/search", named)[0]
                for _ in range(3)
            ]
            assert statuses == [200, 200, 429], addr
            status, body, headers = request_json(
                addr, "POST", "/v1/search", named
            )
            assert status == 429
            assert body["error"]["code"] == "RATE_LIMITED"
            assert body["error"]["details"]["scope"] == "tenant"
            assert int(headers["Retry-After"]) >= 1


class TestCliParity:
    def _flags(self, module: str) -> set[str]:
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        import re

        return set(re.findall(r"--[a-z][a-z-]+", proc.stdout))

    def test_aio_cli_accepts_every_threaded_flag(self):
        """Satellite: the facades' operator surfaces must not drift —
        every threaded-CLI flag works verbatim on the aio CLI."""
        threaded = self._flags("repro.api.http")
        aio = self._flags("repro.api.aio")
        assert threaded <= aio, sorted(threaded - aio)
        # the fleet flags exist on both
        for flag in (
            "--catalog-root", "--max-resident", "--auth-tokens-file",
            "--token-rate-limit", "--tenant-rate-limit", "--store-verify",
        ):
            assert flag in threaded and flag in aio, flag
