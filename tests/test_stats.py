"""Tests for repro.stats: hypergeometric, corrections, correlation, ranks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import hypergeom as scipy_hypergeom
from scipy.stats import pearsonr

from repro.stats import (
    average_precision,
    benjamini_hochberg,
    bonferroni,
    enrichment_pvalue,
    enrichment_pvalues,
    fisher_z,
    hypergeom_pmf,
    hypergeom_sf,
    log_binomial,
    median_center_rows,
    nan_summary,
    pearson,
    pearson_matrix,
    pearson_to_vector,
    precision_at_k,
    rank_of,
    rankdata_average,
    spearman,
    zscore_rows,
)
from repro.util.errors import ValidationError


# ---------------------------------------------------------------------------
# hypergeometric
# ---------------------------------------------------------------------------
class TestHypergeom:
    def test_log_binomial_known_values(self):
        assert np.isclose(log_binomial(5, 2), np.log(10))
        assert np.isclose(log_binomial(10, 0), 0.0)
        assert log_binomial(3, 5) == -np.inf
        assert log_binomial(3, -1) == -np.inf

    def test_pmf_sums_to_one(self):
        N, K, n = 30, 12, 9
        ks = np.arange(0, n + 1)
        total = hypergeom_pmf(ks, N, K, n).sum()
        assert np.isclose(total, 1.0)

    def test_pmf_matches_scipy(self):
        for N, K, n in [(50, 10, 8), (100, 40, 25), (10, 10, 5)]:
            ks = np.arange(0, min(K, n) + 1)
            mine = hypergeom_pmf(ks, N, K, n)
            ref = scipy_hypergeom.pmf(ks, N, K, n)
            assert np.allclose(mine, ref, atol=1e-12)

    @given(
        N=st.integers(2, 200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sf_matches_scipy_property(self, N, data):
        K = data.draw(st.integers(0, N))
        n = data.draw(st.integers(0, N))
        k = data.draw(st.integers(-1, min(K, n)))
        mine = float(hypergeom_sf(k, N, K, n))
        ref = float(scipy_hypergeom.sf(k, N, K, n))
        assert mine == pytest.approx(ref, abs=1e-9)

    def test_enrichment_pvalue_k_zero_is_one(self):
        assert enrichment_pvalue(0, 100, 10, 5) == 1.0

    def test_enrichment_pvalue_full_overlap_is_small(self):
        p = enrichment_pvalue(5, 1000, 5, 5)
        ref = scipy_hypergeom.sf(4, 1000, 5, 5)
        assert p == pytest.approx(ref, rel=1e-9)
        assert p < 1e-12

    def test_enrichment_pvalues_vectorized_matches_scalar(self):
        N, n = 200, 20
        ks = np.array([0, 1, 5, 10])
        Ks = np.array([30, 15, 20, 10])
        vec = enrichment_pvalues(ks, N, Ks, n)
        scalars = [enrichment_pvalue(int(k), N, int(K), n) for k, K in zip(ks, Ks)]
        assert np.allclose(vec, scalars)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValidationError):
            hypergeom_sf(1, 10, 11, 5)  # K > N
        with pytest.raises(ValidationError):
            hypergeom_sf(1, 10, 5, 11)  # n > N
        with pytest.raises(ValidationError):
            enrichment_pvalues(np.array([1, 2]), 10, np.array([3]), 2)  # shape


# ---------------------------------------------------------------------------
# multiple testing
# ---------------------------------------------------------------------------
class TestCorrections:
    def test_bonferroni_scales_and_clips(self):
        res = bonferroni(np.array([0.01, 0.4, 0.6]), alpha=0.05)
        assert np.allclose(res.adjusted, [0.03, 1.0, 1.0])
        assert res.n_significant == 1

    def test_bh_known_example(self):
        # classic worked example
        p = np.array([0.01, 0.02, 0.03, 0.04])
        res = benjamini_hochberg(p, alpha=0.05)
        assert np.allclose(res.adjusted, [0.04, 0.04, 0.04, 0.04])
        assert res.n_significant == 4

    def test_bh_preserves_input_order(self):
        p = np.array([0.9, 0.001, 0.5])
        res = benjamini_hochberg(p)
        assert res.adjusted[1] < res.adjusted[2] < res.adjusted[0]

    def test_bh_empty(self):
        res = benjamini_hochberg(np.array([]))
        assert res.adjusted.size == 0 and res.n_significant == 0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_bh_properties(self, pvals):
        p = np.array(pvals)
        res = benjamini_hochberg(p, alpha=0.05)
        # adjusted >= raw, in [0, 1]
        assert (res.adjusted >= p - 1e-12).all()
        assert (res.adjusted <= 1.0 + 1e-12).all()
        # monotone in the sorted order
        order = np.argsort(p, kind="stable")
        sorted_adj = res.adjusted[order]
        assert (np.diff(sorted_adj) >= -1e-12).all()
        # bonferroni is never less significant than BH
        bon = bonferroni(p, alpha=0.05)
        assert (bon.adjusted >= res.adjusted - 1e-12).all()

    def test_invalid_pvalues_raise(self):
        with pytest.raises(ValidationError):
            benjamini_hochberg(np.array([1.5]))
        with pytest.raises(ValidationError):
            bonferroni(np.array([[0.1]]))
        with pytest.raises(ValidationError):
            benjamini_hochberg(np.array([0.5]), alpha=1.5)


# ---------------------------------------------------------------------------
# correlation
# ---------------------------------------------------------------------------
class TestPearson:
    def test_matches_scipy_complete_data(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=20), rng.normal(size=20)
        assert pearson(x, y) == pytest.approx(pearsonr(x, y).statistic, abs=1e-12)

    def test_pairwise_complete_ignores_nan(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, np.nan])
        y = np.array([2.0, 4.0, 6.0, 8.0, 100.0])
        assert pearson(x, y) == pytest.approx(1.0)

    def test_insufficient_overlap_gives_nan(self):
        x = np.array([1.0, np.nan, np.nan, 2.0])
        y = np.array([1.0, 1.0, 2.0, np.nan])
        assert np.isnan(pearson(x, y))

    def test_zero_variance_gives_nan(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.isnan(pearson(x, y))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            pearson(np.zeros(3), np.zeros(4))

    def test_matrix_matches_pairwise_scalar(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(8, 12))
        X[rng.random(X.shape) < 0.15] = np.nan
        C = pearson_matrix(X)
        for i in range(8):
            for j in range(8):
                ref = pearson(X[i], X[j])
                if np.isnan(ref):
                    assert np.isnan(C[i, j])
                else:
                    assert C[i, j] == pytest.approx(ref, abs=1e-9)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matrix_symmetric_unit_diag_property(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(6, 10))
        X[rng.random(X.shape) < 0.1] = np.nan
        C = pearson_matrix(X)
        assert np.allclose(C, C.T, equal_nan=True)
        with np.errstate(invalid="ignore"):
            finite = C[~np.isnan(C)]
        assert (finite >= -1.0 - 1e-12).all() and (finite <= 1.0 + 1e-12).all()
        for i in range(6):
            if not np.isnan(C[i, i]):
                assert C[i, i] == pytest.approx(1.0, abs=1e-9)

    def test_to_vector_matches_matrix_column(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(10, 15))
        X[rng.random(X.shape) < 0.1] = np.nan
        C = pearson_matrix(X)
        v = pearson_to_vector(X, X[3])
        assert np.allclose(v, C[:, 3], equal_nan=True)

    def test_spearman_monotonic_transform_invariant(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=30)
        y = np.exp(x)  # monotone transform
        assert spearman(x, y) == pytest.approx(1.0)

    def test_fisher_z_roundtrip_and_saturation(self):
        r = np.array([-0.9, 0.0, 0.5])
        assert np.allclose(np.tanh(fisher_z(r)), r, atol=1e-9)
        assert np.isfinite(fisher_z(1.0))
        assert isinstance(fisher_z(0.5), float)


# ---------------------------------------------------------------------------
# ranks & retrieval metrics
# ---------------------------------------------------------------------------
class TestRanks:
    def test_rankdata_no_ties(self):
        assert rankdata_average(np.array([30.0, 10.0, 20.0])).tolist() == [3.0, 1.0, 2.0]

    def test_rankdata_ties_average(self):
        ranks = rankdata_average(np.array([1.0, 2.0, 2.0, 3.0]))
        assert ranks.tolist() == [1.0, 2.5, 2.5, 4.0]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_rankdata_sum_invariant(self, values):
        ranks = rankdata_average(np.array(values, dtype=float))
        n = len(values)
        assert ranks.sum() == pytest.approx(n * (n + 1) / 2)

    def test_rank_of(self):
        assert rank_of(["b", "a", "c"], "a") == 2
        with pytest.raises(KeyError):
            rank_of(["a"], "z")

    def test_precision_at_k(self):
        ranking = ["a", "b", "c", "d"]
        assert precision_at_k(ranking, {"a", "c"}, 2) == 0.5
        assert precision_at_k(ranking, {"a", "c"}, 4) == 0.5
        assert precision_at_k(ranking, set(), 2) == 0.0
        with pytest.raises(ValidationError):
            precision_at_k(ranking, {"a"}, 0)

    def test_average_precision_perfect_and_worst(self):
        assert average_precision(["a", "b", "x", "y"], {"a", "b"}) == pytest.approx(1.0)
        ap = average_precision(["x", "y", "a", "b"], {"a", "b"})
        assert 0 < ap < 0.6
        assert average_precision(["x"], {"a"}) == 0.0
        assert average_precision(["x"], set()) == 0.0


# ---------------------------------------------------------------------------
# descriptive
# ---------------------------------------------------------------------------
class TestDescriptive:
    def test_zscore_rows_basic(self):
        X = np.array([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        Z = zscore_rows(X)
        assert Z[0].mean() == pytest.approx(0.0)
        assert Z[0].std() == pytest.approx(1.0)
        assert np.allclose(Z[1], 0.0)  # zero-variance row -> zeros

    def test_zscore_preserves_nan(self):
        X = np.array([[1.0, np.nan, 3.0]])
        Z = zscore_rows(X)
        assert np.isnan(Z[0, 1]) and not np.isnan(Z[0, 0])

    def test_zscore_does_not_mutate_input(self):
        X = np.array([[1.0, 2.0, 3.0]])
        X_copy = X.copy()
        zscore_rows(X)
        assert np.array_equal(X, X_copy)

    def test_median_center_rows(self):
        X = np.array([[1.0, 2.0, 9.0]])
        M = median_center_rows(X)
        assert M[0].tolist() == [-1.0, 0.0, 7.0]

    def test_median_center_all_nan_row(self):
        X = np.array([[np.nan, np.nan]])
        M = median_center_rows(X)
        assert np.isnan(M).all()

    def test_nan_summary(self):
        s = nan_summary(np.array([[1.0, np.nan], [np.nan, 4.0]]))
        assert s["n_missing"] == 2 and s["fraction_missing"] == 0.5
