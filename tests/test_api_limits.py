"""Serving hardening: auth, rate limits, and body caps (repro.api.limits).

Unit-tests the token bucket with an injected clock, then drives the
real HTTP facade: 401/429/413 must come back as structured codes, the
429's ``retry_after_ms`` must actually work (waiting it out admits the
client), and an oversized ``Content-Length`` must be rejected **before
the body is read** — asserted over a raw socket that never sends one.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.app import ApiApp
from repro.api.errors import ApiError
from repro.api.http import serve
from repro.api.limits import (
    RateLimiter,
    RequestContext,
    RequestGate,
    TokenBucket,
)
from repro.spell import SpellService


# ------------------------------------------------------------------- units
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire(0.0)
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        # half the wait later: still limited, but closer
        assert 0.0 < bucket.try_acquire(0.25) < wait
        # after a full second the bucket has refilled past one token
        assert bucket.try_acquire(2.0) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2, now=0.0)
        bucket.try_acquire(0.0)
        # an hour idle must not bank 36000 tokens
        assert bucket.try_acquire(3600.0) == 0.0
        assert bucket.try_acquire(3600.0) == 0.0
        assert bucket.try_acquire(3600.0) > 0.0


class TestRateLimiter:
    def test_per_client_isolation(self):
        limiter = RateLimiter(rate=1.0, burst=1)
        assert limiter.check("a", now=0.0) == 0.0
        assert limiter.check("a", now=0.0) > 0.0  # a is out of budget
        assert limiter.check("b", now=0.0) == 0.0  # b is untouched

    def test_client_map_bounded(self):
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=4)
        for i in range(100):
            limiter.check(f"client-{i}", now=float(i))
        assert len(limiter._buckets) <= 4  # hostile key churn can't grow it

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0)


class TestRequestGate:
    def test_no_context_bypasses(self):
        gate = RequestGate(auth_token="sekrit", rate_limit=0.001)
        gate.admit("search", None)  # in-process caller: always admitted

    def test_auth_required(self):
        gate = RequestGate(auth_token="sekrit")
        with pytest.raises(ApiError) as exc:
            gate.admit("search", RequestContext(client="c"))
        assert exc.value.code == "UNAUTHORIZED" and exc.value.http_status == 401
        with pytest.raises(ApiError):
            gate.admit("search", RequestContext(client="c", auth_token="wrong"))
        gate.admit("search", RequestContext(client="c", auth_token="sekrit"))
        assert gate.stats()["unauthorized"] == 2

    def test_health_exempt_from_auth_and_rate(self):
        gate = RequestGate(auth_token="sekrit", rate_limit=0.000001, rate_burst=1)
        for _ in range(5):
            gate.admit("health", RequestContext(client="probe"))

    def test_body_cap_applies_everywhere(self):
        gate = RequestGate(max_body_bytes=10)
        with pytest.raises(ApiError) as exc:
            gate.admit("health", RequestContext(client="c", body_bytes=11))
        assert exc.value.code == "BODY_TOO_LARGE" and exc.value.http_status == 413
        gate.admit("health", RequestContext(client="c", body_bytes=10))
        assert gate.stats()["body_rejected"] == 1

    def test_rate_limited_details(self):
        gate = RequestGate(rate_limit=2.0, rate_burst=1)
        gate.admit("search", RequestContext(client="c"))
        with pytest.raises(ApiError) as exc:
            gate.admit("search", RequestContext(client="c"))
        assert exc.value.code == "RATE_LIMITED" and exc.value.http_status == 429
        assert exc.value.details["retry_after_ms"] >= 1
        assert gate.stats()["rate_limited"] == 1

    def test_declared_client_ignored_when_anonymous(self):
        """Spoof resistance: without auth, a caller-declared client id
        must NOT key the bucket — rotating it per request would mint a
        fresh burst every time and void the limit entirely."""
        gate = RequestGate(rate_limit=0.001, rate_burst=1)
        gate.admit(
            "search", RequestContext(client="1.2.3.4", declared_client="spoof-0")
        )
        with pytest.raises(ApiError) as exc:
            gate.admit(
                "search",
                RequestContext(client="1.2.3.4", declared_client="spoof-1"),
            )
        assert exc.value.code == "RATE_LIMITED"

    def test_declared_client_honored_when_authenticated(self):
        """With auth on, the validated caller is trusted to forward
        tenant ids: distinct declared clients get distinct buckets."""
        gate = RequestGate(auth_token="tok", rate_limit=0.001, rate_burst=1)
        gate.admit(
            "search",
            RequestContext(client="lb", auth_token="tok", declared_client="tenant-a"),
        )
        gate.admit(  # different tenant: own bucket, admitted
            "search",
            RequestContext(client="lb", auth_token="tok", declared_client="tenant-b"),
        )
        with pytest.raises(ApiError):  # same tenant again: out of budget
            gate.admit(
                "search",
                RequestContext(client="lb", auth_token="tok", declared_client="tenant-a"),
            )

    def test_admitted_context_passes_through(self):
        """A context the transport already admitted spends no second
        token (the HTTP facade gates pre-body-read, then hands the
        admitted context to handle_wire)."""
        gate = RequestGate(rate_limit=0.001, rate_burst=1)
        context = RequestContext(client="c")
        gate.admit("search", context)
        import dataclasses

        admitted = dataclasses.replace(context, admitted=True)
        gate.admit("search", admitted)  # no raise, no token spent
        with pytest.raises(ApiError):
            gate.admit("search", context)  # a fresh request still limited


# ------------------------------------------------------------ live facade
@pytest.fixture(scope="module")
def limits_setup():
    from repro.synth import make_spell_compendium

    return make_spell_compendium(
        n_datasets=4,
        n_relevant=2,
        n_genes=80,
        n_conditions=8,
        module_size=10,
        query_size=3,
        seed=31,
    )


@pytest.fixture()
def hardened_api(limits_setup):
    """A fresh hardened facade per test (buckets/counters start clean)."""
    compendium, truth = limits_setup
    service = SpellService(compendium)
    gate = RequestGate(
        auth_token="sekrit",
        rate_limit=5.0,
        rate_burst=2,
        max_body_bytes=4096,
    )
    app = ApiApp(service, gate=gate)
    server = serve(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", (host, port), truth
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


AUTH = {"Authorization": "Bearer sekrit"}


def post(base, payload, headers=None, path="/v1/search"):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST",
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def raw_request(address, head: str) -> tuple[str, dict]:
    """Send raw header bytes (no body) and parse the response."""
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(head.encode("ascii"))
        reader = sock.makefile("rb")
        status_line = reader.readline().decode()
        headers = {}
        while True:
            line = reader.readline().decode().strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.lower()] = value.strip()
        body = reader.read(int(headers.get("content-length", 0)))
    return status_line, json.loads(body) if body else {}


class TestAuthOverHTTP:
    def test_missing_and_wrong_token_401(self, hardened_api):
        base, _, truth = hardened_api
        status, body, _ = post(base, {"genes": list(truth.query_genes)})
        assert status == 401 and body["error"]["code"] == "UNAUTHORIZED"
        status, body, _ = post(
            base, {"genes": list(truth.query_genes)},
            {"Authorization": "Bearer wrong"},
        )
        assert status == 401

    def test_valid_token_served(self, hardened_api):
        base, _, truth = hardened_api
        status, body, _ = post(base, {"genes": list(truth.query_genes)}, AUTH)
        assert status == 200 and body["gene_rows"]

    def test_health_needs_no_token(self, hardened_api):
        base, _, _ = hardened_api
        with urllib.request.urlopen(base + "/v1/health", timeout=30) as resp:
            assert resp.status == 200

    def test_export_is_gated_too(self, hardened_api):
        """The streaming endpoint inherits the same gate."""
        base, _, truth = hardened_api
        status, body, _ = post(
            base, {"genes": list(truth.query_genes)}, path="/v1/search/export"
        )
        assert status == 401 and body["error"]["code"] == "UNAUTHORIZED"


class TestRateLimitOverHTTP:
    def test_429_with_working_retry_after(self, hardened_api):
        """Burst of 2 admits two; the third gets 429 whose retry_after_ms,
        waited out, actually admits the next request."""
        base, _, truth = hardened_api
        headers = dict(AUTH, **{"X-Client-Id": "tenant-1"})
        payload = {"genes": list(truth.query_genes)}
        assert post(base, payload, headers)[0] == 200
        assert post(base, payload, headers)[0] == 200
        status, body, http_headers = post(base, payload, headers)
        assert status == 429
        assert body["error"]["code"] == "RATE_LIMITED"
        retry_ms = body["error"]["details"]["retry_after_ms"]
        assert retry_ms >= 1
        assert int(http_headers["Retry-After"]) >= 1
        time.sleep(retry_ms / 1000.0 + 0.05)
        assert post(base, payload, headers)[0] == 200

    def test_client_keys_are_independent(self, hardened_api):
        base, _, truth = hardened_api
        payload = {"genes": list(truth.query_genes)}
        one = dict(AUTH, **{"X-Client-Id": "tenant-a"})
        two = dict(AUTH, **{"X-Client-Id": "tenant-b"})
        assert post(base, payload, one)[0] == 200
        assert post(base, payload, one)[0] == 200
        assert post(base, payload, one)[0] == 429
        assert post(base, payload, two)[0] == 200  # b has its own bucket

    def test_anonymous_spoofed_client_ids_share_one_bucket(self, limits_setup):
        """End to end over HTTP, no auth: rotating X-Client-Id per request
        must not bypass the limit — all spoofed ids key on the peer."""
        compendium, truth = limits_setup
        service = SpellService(compendium)
        gate = RequestGate(rate_limit=0.001, rate_burst=2)
        app = ApiApp(service, gate=gate)
        server = serve(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            payload = {"genes": list(truth.query_genes)}
            statuses = [
                post(base, payload, {"X-Client-Id": f"spoof-{i}"})[0]
                for i in range(4)
            ]
            assert statuses == [200, 200, 429, 429]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unauthorized_rejected_before_body_read(self, hardened_api):
        """A 401 must not cost the server a body read: the raw socket
        declares a large (in-cap) body, sends none, and still gets the
        immediate structured 401."""
        _, address, _ = hardened_api
        status_line, body = raw_request(
            address,
            "POST /v1/search HTTP/1.1\r\nHost: t\r\n"
            "Content-Length: 4000\r\n\r\n",  # within the cap, never sent
        )
        assert " 401 " in status_line
        assert body["error"]["code"] == "UNAUTHORIZED"

    def test_limit_counters_in_health(self, hardened_api):
        base, _, truth = hardened_api
        headers = dict(AUTH, **{"X-Client-Id": "tenant-z"})
        payload = {"genes": list(truth.query_genes)}
        for _ in range(4):
            post(base, payload, headers)
        post(base, payload)  # and one unauthorized
        with urllib.request.urlopen(base + "/v1/health", timeout=30) as resp:
            health = json.loads(resp.read())
        limits = health["limits"]
        assert limits["auth_required"] is True
        assert limits["rate_limit_per_second"] == 5.0
        assert limits["rate_limited"] >= 1
        assert limits["unauthorized"] >= 1
        # gate rejections count as endpoint errors too
        assert health["endpoints"]["search"]["errors"] >= 2


class TestBodyCapOverRawSocket:
    def test_oversized_declared_body_rejected_pre_read(self, hardened_api):
        """A 100 GB Content-Length gets a structured 413 immediately —
        the server must answer without waiting for (or allocating) the
        declared body, which this raw socket never sends."""
        _, address, _ = hardened_api
        status_line, body = raw_request(
            address,
            "POST /v1/search HTTP/1.1\r\nHost: t\r\n"
            "Authorization: Bearer sekrit\r\n"
            "Content-Length: 107374182400\r\n\r\n",
        )
        assert " 413 " in status_line
        assert body["error"]["code"] == "BODY_TOO_LARGE"
        assert body["error"]["details"]["max_body_bytes"] == 4096

    def test_negative_content_length_rejected(self, hardened_api):
        _, address, _ = hardened_api
        status_line, body = raw_request(
            address,
            "POST /v1/search HTTP/1.1\r\nHost: t\r\n"
            "Authorization: Bearer sekrit\r\n"
            "Content-Length: -7\r\n\r\n",
        )
        assert " 400 " in status_line
        assert body["error"]["code"] == "MALFORMED_BODY"

    @pytest.mark.parametrize("value", ["banana", "+5", "1_0"])
    def test_non_digit_content_length_rejected(self, hardened_api, value):
        """Anything but 1*DIGIT is a 400 — int()-leniencies like '+5'
        and '1_0' would let this parser disagree with a stricter front
        proxy on framing, the request-smuggling precondition."""
        _, address, _ = hardened_api
        status_line, body = raw_request(
            address,
            "POST /v1/search HTTP/1.1\r\nHost: t\r\n"
            "Authorization: Bearer sekrit\r\n"
            f"Content-Length: {value}\r\n\r\n",
        )
        assert " 400 " in status_line
        assert body["error"]["code"] == "MALFORMED_BODY"

    def test_at_cap_body_still_served(self, hardened_api):
        base, _, truth = hardened_api
        payload = {"genes": list(truth.query_genes)}
        assert len(json.dumps(payload)) <= 4096
        status, body, _ = post(base, payload, AUTH)
        assert status == 200 and body["gene_rows"]


class TestWireLayerInheritsGate:
    """handle_wire enforces the gate for *any* transport, not just HTTP."""

    def test_handle_wire_with_context(self, limits_setup):
        compendium, truth = limits_setup
        gate = RequestGate(auth_token="tok", rate_limit=1000.0)
        app = ApiApp(SpellService(compendium), gate=gate)
        status, body = app.handle_wire(
            "search", {"genes": list(truth.query_genes)},
            context=RequestContext(client="x"),
        )
        assert status == 401 and body["error"]["code"] == "UNAUTHORIZED"
        status, body = app.handle_wire(
            "search", {"genes": list(truth.query_genes)},
            context=RequestContext(client="x", auth_token="tok"),
        )
        assert status == 200

    def test_handle_wire_without_context_trusted(self, limits_setup):
        compendium, truth = limits_setup
        gate = RequestGate(auth_token="tok")
        app = ApiApp(SpellService(compendium), gate=gate)
        status, _ = app.handle_wire("search", {"genes": list(truth.query_genes)})
        assert status == 200

    def test_cli_auth_token_file(self, tmp_path):
        """--auth-token-file wires the gate without a hand-built RequestGate."""
        import argparse

        from repro.api.http import main

        token_file = tmp_path / "token"
        token_file.write_text("")
        with pytest.raises((SystemExit, argparse.ArgumentError)):
            main(["--port", "0", "--auth-token-file", str(token_file)])
