"""Tests for repro.util: rng, timing, validation, formatting, errors."""

import time

import numpy as np
import pytest

from repro.util import (
    CommunicationError,
    DataFormatError,
    ReproError,
    Stopwatch,
    TimingRegistry,
    ValidationError,
    default_rng,
    format_table,
    human_bytes,
    human_count,
    require,
    require_in_range,
    require_positive,
    require_same_length,
    require_shape,
    spawn_rngs,
)


class TestRng:
    def test_default_seed_is_deterministic(self):
        a = default_rng().random(5)
        b = default_rng().random(5)
        assert np.array_equal(a, b)

    def test_integer_seed(self):
        assert np.array_equal(default_rng(7).random(3), default_rng(7).random(3))
        assert not np.array_equal(default_rng(7).random(3), default_rng(8).random(3))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert default_rng(gen) is gen

    def test_spawn_rngs_independent_streams(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [c.random(4).tolist() for c in children]
        # all four streams differ
        for i in range(4):
            for j in range(i + 1, 4):
                assert draws[i] != draws[j]

    def test_spawn_rngs_deterministic(self):
        a = [c.random(2).tolist() for c in spawn_rngs(5, 3)]
        b = [c.random(2).tolist() for c in spawn_rngs(5, 3)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestTiming:
    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_stopwatch_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_registry_record_and_summary(self):
        reg = TimingRegistry()
        reg.record("x", 1.0)
        reg.record("x", 3.0)
        assert reg.total("x") == 4.0
        assert reg.count("x") == 2
        assert reg.mean("x") == 2.0
        summary = reg.summary()["x"]
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_registry_time_context(self):
        reg = TimingRegistry()
        with reg.time("op"):
            time.sleep(0.005)
        assert reg.count("op") == 1
        assert reg.total("op") >= 0.004

    def test_registry_mean_missing_raises(self):
        with pytest.raises(KeyError):
            TimingRegistry().mean("nope")

    def test_registry_merge(self):
        a, b = TimingRegistry(), TimingRegistry()
        a.record("x", 1.0)
        b.record("x", 2.0)
        b.record("y", 5.0)
        a.merge(b)
        assert a.count("x") == 2 and a.count("y") == 1


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1e-9, "x")
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_require_in_range_inclusive(self):
        require_in_range(0.0, 0.0, 1.0, "x")
        require_in_range(1.0, 0.0, 1.0, "x")
        with pytest.raises(ValidationError):
            require_in_range(1.01, 0.0, 1.0, "x")

    def test_require_shape(self):
        require_shape(np.zeros((3, 4)), (3, None), "m")
        with pytest.raises(ValidationError):
            require_shape(np.zeros((3, 4)), (4, None), "m")
        with pytest.raises(ValidationError):
            require_shape([1, 2, 3], (3,), "m")  # no .shape

    def test_require_same_length(self):
        require_same_length([1, 2], ["a", "b"], "a", "b")
        with pytest.raises(ValidationError):
            require_same_length([1], [1, 2], "a", "b")


class TestFormatting:
    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert human_bytes(3 * 1024**2) == "3.0 MiB"

    def test_human_count(self):
        assert human_count(999) == "999"
        assert human_count(250_000_000) == "250.0M"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["alpha", 1.5], ["b", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "alpha" in lines[2]
        # numeric column right-aligned: '22' ends at same column as '1.5'
        assert lines[2].rstrip().endswith("1.5")

    def test_format_table_handles_ragged_rows(self):
        table = format_table(["a", "b"], [["x"]])
        assert "x" in table


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(DataFormatError, ReproError)
        assert issubclass(ValidationError, ReproError)
        assert issubclass(CommunicationError, ReproError)

    def test_data_format_error_location(self):
        err = DataFormatError("bad cell", path="f.pcl", line=7)
        assert "f.pcl:7" in str(err)
        assert err.path == "f.pcl" and err.line == 7

    def test_data_format_error_no_location(self):
        assert "bad" in str(DataFormatError("bad"))
