"""End-to-end tests of the HTTP facade: a live threaded server.

Boots :class:`ApiHTTPServer` on an ephemeral port, issues real HTTP
requests with ``urllib``, and checks (a) parity with direct
``SpellService`` answers — the acceptance bar: rankings served over the
wire are bit-identical to in-process results — and (b) that every
failure mode comes back as a structured error code, never a raw 500.
"""

from __future__ import annotations

import base64
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.app import ApiApp
from repro.api.http import serve
from repro.api.protocol import RenderRequest, SearchRequest
from repro.cluster import hierarchical_cluster
from repro.spell import SpellService
from repro.viz.ppm import decode_ppm


@pytest.fixture(scope="module")
def live_api(request):
    """(base_url, service, app) against a live threaded server."""
    compendium, truth = request.getfixturevalue("spell_setup_api")
    service = SpellService(compendium, n_workers=2)
    app = ApiApp(service)
    server = serve(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, truth
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def spell_setup_api():
    """Small (compendium, truth) pair private to this module — read-only."""
    from repro.synth import make_spell_compendium

    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=120,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=11,
    )


def http(base: str, path: str, payload: dict | None = None) -> tuple[int, dict]:
    """GET (payload None) or POST json; returns (status, parsed body)."""
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(), method="POST"
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndToEnd:
    def test_health(self, live_api):
        base, service, _ = live_api
        status, body = http(base, "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["api_version"] == "v1"
        assert body["datasets"] == len(service.compendium)
        assert body["genes"] == len(service.compendium.gene_universe())

    def test_search_parity_with_direct_service(self, live_api):
        """The acceptance bar: wire rankings == direct SpellService.search()."""
        base, service, truth = live_api
        query = list(truth.query_genes)
        status, body = http(base, "/v1/search", {"genes": query, "page_size": 30})
        assert status == 200
        direct = service.search(query)
        api_genes = [(row[1], row[2]) for row in body["gene_rows"]]
        direct_genes = [(g.gene_id, g.score) for g in direct.genes[:30]]
        assert api_genes == direct_genes  # scores bit-identical through JSON
        api_datasets = [(row[1], row[2]) for row in body["dataset_rows"]]
        direct_datasets = [(d.name, d.weight) for d in direct.datasets[:10]]
        assert api_datasets == direct_datasets
        assert body["total_genes"] == direct.total_genes

    def test_search_pagination_consistent(self, live_api):
        base, _, truth = live_api
        query = list(truth.query_genes)
        _, p0 = http(base, "/v1/search", {"genes": query, "page": 0, "page_size": 5})
        _, p1 = http(base, "/v1/search", {"genes": query, "page": 1, "page_size": 5})
        ranks = [row[0] for row in p0["gene_rows"] + p1["gene_rows"]]
        assert ranks == list(range(1, 11))
        genes = [row[1] for row in p0["gene_rows"] + p1["gene_rows"]]
        assert len(set(genes)) == 10  # no overlap between pages

    def test_batch_matches_single(self, live_api):
        base, _, truth = live_api
        query = list(truth.query_genes)
        status, body = http(
            base,
            "/v1/search/batch",
            {"searches": [{"genes": query, "page_size": 10}] * 3},
        )
        assert status == 200
        assert len(body["results"]) == 3
        _, single = http(base, "/v1/search", {"genes": query, "page_size": 10})
        for result in body["results"]:
            assert result["gene_rows"] == single["gene_rows"]

    def test_datasets_endpoint(self, live_api):
        base, service, _ = live_api
        status, body = http(base, "/v1/datasets")
        assert status == 200
        names = [d["name"] for d in body["datasets"]]
        assert names == service.compendium.names
        for info, ds in zip(body["datasets"], service.compendium):
            assert info["n_genes"] == ds.n_genes
            assert info["n_conditions"] == ds.n_conditions

    def test_cluster_parity(self, live_api):
        base, service, truth = live_api
        query = list(truth.query_genes)
        status, body = http(
            base, "/v1/cluster", {"search": {"genes": query}, "top_genes": 10}
        )
        assert status == 200
        result = service.search(query)
        top = result.top_genes(10)
        dataset = result.datasets[0].name
        matrix = service.compendium[dataset].matrix.subset_genes(top, missing="skip")
        tree = hierarchical_cluster(matrix.values, leaf_ids=matrix.gene_ids)
        assert body["dataset"] == dataset
        assert body["genes"] == [matrix.gene_ids[i] for i in tree.leaf_order()]
        assert len(body["merges"]) == matrix.n_genes - 1

    def test_render_heatmap_roundtrip(self, live_api):
        base, _, truth = live_api
        status, body = http(
            base,
            "/v1/render/heatmap",
            {"search": {"genes": list(truth.query_genes)}, "top_genes": 6,
             "cell_width": 4, "cell_height": 3},
        )
        assert status == 200
        pixels = decode_ppm(base64.b64decode(body["ppm_base64"]))
        assert pixels.shape == (body["height"], body["width"], 3)
        assert body["height"] == len(body["genes"]) * 3

    def test_render_raw_ppm_format(self, live_api):
        base, _, truth = live_api
        payload = json.dumps(
            {"search": {"genes": list(truth.query_genes)}, "top_genes": 4}
        ).encode()
        request = urllib.request.Request(
            base + "/v1/render/heatmap?format=ppm", data=payload, method="POST"
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.headers["Content-Type"] == "image/x-portable-pixmap"
            pixels = decode_ppm(resp.read())
        assert pixels.ndim == 3

    def test_concurrent_clients_consistent(self, live_api):
        """Many threads hammering the shared index get identical answers."""
        base, _, truth = live_api
        query = list(truth.query_genes)
        answers: list[list] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def worker() -> None:
            try:
                _, body = http(base, "/v1/search", {"genes": query, "page_size": 15})
                with lock:
                    answers.append(body["gene_rows"])
            except Exception as exc:  # pragma: no cover - diagnostic only
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(answers) == 8
        assert all(a == answers[0] for a in answers)


class TestErrorPaths:
    def test_unknown_endpoint(self, live_api):
        base, _, _ = live_api
        status, body = http(base, "/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_ENDPOINT"
        assert "/v1/search" in body["error"]["details"]["endpoints"]

    def test_path_outside_prefix(self, live_api):
        base, _, _ = live_api
        status, body = http(base, "/search")
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_ENDPOINT"

    def test_wrong_method(self, live_api):
        base, _, _ = live_api
        status, body = http(base, "/v1/search")  # GET on a POST route
        assert status == 405
        assert body["error"]["code"] == "METHOD_NOT_ALLOWED"
        status, body = http(base, "/v1/datasets", {})  # POST on a GET route
        assert status == 405

    def test_malformed_body(self, live_api):
        base, _, _ = live_api
        request = urllib.request.Request(
            base + "/v1/search", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 400
        assert json.loads(exc.value.read())["error"]["code"] == "MALFORMED_BODY"

    def test_non_object_body(self, live_api):
        base, _, _ = live_api
        request = urllib.request.Request(
            base + "/v1/search", data=b"[1, 2]", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert json.loads(exc.value.read())["error"]["code"] == "MALFORMED_BODY"

    def test_unknown_gene(self, live_api):
        base, _, _ = live_api
        status, body = http(base, "/v1/search", {"genes": ["NOT_A_GENE"]})
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_GENE"
        assert body["error"]["details"]["unknown_genes"] == ["NOT_A_GENE"]

    def test_partially_unknown_query_succeeds(self, live_api):
        base, _, truth = live_api
        genes = [truth.query_genes[0], "NOT_A_GENE"]
        status, body = http(base, "/v1/search", {"genes": genes})
        assert status == 200
        assert body["query_missing"] == ["NOT_A_GENE"]

    def test_unknown_dataset_filter(self, live_api):
        base, _, truth = live_api
        status, body = http(
            base,
            "/v1/search",
            {"genes": list(truth.query_genes), "datasets": ["ghost_dataset"]},
        )
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_DATASET"

    def test_page_out_of_range(self, live_api):
        base, _, truth = live_api
        status, body = http(
            base, "/v1/search", {"genes": list(truth.query_genes), "page": 99_999}
        )
        assert status == 400
        assert body["error"]["code"] == "PAGE_OUT_OF_RANGE"
        assert body["error"]["details"]["total_pages"] >= 1

    def test_unsupported_version(self, live_api):
        base, _, truth = live_api
        status, body = http(
            base, "/v1/search", {"api_version": "v9", "genes": list(truth.query_genes)}
        )
        assert status == 400
        assert body["error"]["code"] == "UNSUPPORTED_VERSION"

    def test_stats_track_errors(self, live_api):
        base, _, _ = live_api
        http(base, "/v1/search", {"genes": ["NOT_A_GENE"]})
        _, body = http(base, "/v1/health")
        search_stats = body["endpoints"]["search"]
        assert search_stats["errors"] >= 1
        assert search_stats["count"] >= search_stats["errors"]

    def test_stats_track_parse_failures(self, live_api):
        """A request the handler never saw (bad wire payload) still counts."""
        base, _, _ = live_api
        _, before = http(base, "/v1/health")
        errors_before = before["endpoints"].get("search", {}).get("errors", 0)
        status, body = http(base, "/v1/search", {"genes": 5})
        assert status == 400 and body["error"]["code"] == "INVALID_REQUEST"
        _, after = http(base, "/v1/health")
        assert after["endpoints"]["search"]["errors"] == errors_before + 1

    def test_unsupported_verb_structured_405(self, live_api):
        """DELETE/PUT/... must return the JSON error contract, not HTML 501."""
        base, _, _ = live_api
        request = urllib.request.Request(
            base + "/v1/search", data=b"{}", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 405
        assert exc.value.headers["Content-Type"].startswith("application/json")
        assert json.loads(exc.value.read())["error"]["code"] == "METHOD_NOT_ALLOWED"

    def test_raw_ppm_app_failure_is_structured_json(self, live_api):
        """?format=ppm when the *app* raises (past parsing): the client
        must get a structured JSON error — never a half-written PPM or
        an image content-type wrapping an error."""
        base, _, truth = live_api
        payload = json.dumps(
            {"search": {"genes": list(truth.query_genes)},
             "dataset": "no_such_dataset"}
        ).encode()
        request = urllib.request.Request(
            base + "/v1/render/heatmap?format=ppm", data=payload, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 404
        assert exc.value.headers["Content-Type"].startswith("application/json")
        body = exc.value.read()
        assert not body.startswith(b"P6")  # not a PPM fragment
        parsed = json.loads(body)
        assert parsed["error"]["code"] == "UNKNOWN_DATASET"
        assert parsed["api_version"] == "v1"

    def test_raw_ppm_unknown_gene_is_structured_json(self, live_api):
        base, _, _ = live_api
        request = urllib.request.Request(
            base + "/v1/render/heatmap?format=ppm",
            data=json.dumps({"search": {"genes": ["NOT_A_GENE"]}}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert exc.value.code == 404
        assert exc.value.headers["Content-Type"].startswith("application/json")
        assert json.loads(exc.value.read())["error"]["code"] == "UNKNOWN_GENE"

    def test_raw_ppm_app_failures_counted_in_health(self, live_api):
        """Mid-render failures on the raw-bytes branch must move the
        endpoint's error counters exactly like the JSON branch."""
        base, _, truth = live_api
        _, before = http(base, "/v1/health")
        errors_before = before["endpoints"].get("render/heatmap", {}).get("errors", 0)
        request = urllib.request.Request(
            base + "/v1/render/heatmap?format=ppm",
            data=json.dumps(
                {"search": {"genes": list(truth.query_genes)},
                 "dataset": "no_such_dataset"}
            ).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=30)
        _, after = http(base, "/v1/health")
        assert after["endpoints"]["render/heatmap"]["errors"] == errors_before + 1

    def test_rejected_request_does_not_desync_keepalive(self, live_api):
        """An error sent before the body is drained must close the
        connection — otherwise the unread body is parsed as the next
        request line on a reused keep-alive socket."""
        from http.client import HTTPConnection

        base, _, truth = live_api
        host, port = base.removeprefix("http://").split(":")
        conn = HTTPConnection(host, int(port), timeout=30)
        try:
            body = json.dumps({"genes": list(truth.query_genes)})
            conn.request("POST", "/v1/nope", body=body)
            resp = conn.getresponse()
            assert resp.status == 404
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            conn.close()
        # a fresh connection must serve normally afterwards
        status, body = http(base, "/v1/health")
        assert status == 200 and body["status"] == "ok"


class TestWireHandlerDirect:
    """The transport-agnostic dispatch, without a socket in the way."""

    def test_handle_wire_success_and_error(self, spell_setup_api):
        compendium, truth = spell_setup_api
        app = ApiApp(SpellService(compendium))
        status, body = app.handle_wire("search", {"genes": list(truth.query_genes)})
        assert status == 200 and body["gene_rows"]
        status, body = app.handle_wire("search", {"genes": []})
        assert status == 400 and body["error"]["code"] == "INVALID_QUERY"
        status, body = app.handle_wire("bogus", {})
        assert status == 404 and body["error"]["code"] == "UNKNOWN_ENDPOINT"

    def test_typed_entry_points_match_wire(self, spell_setup_api):
        compendium, truth = spell_setup_api
        app = ApiApp(SpellService(compendium))
        request = SearchRequest(genes=truth.query_genes, page_size=12)
        typed = app.search(request)
        _, wire = app.handle_wire("search", request.to_wire())
        assert wire["gene_rows"] == [list(r) for r in typed.gene_rows]

    def test_unknown_gene_respects_dataset_filter(self):
        """Genes that exist only outside the filter are UNKNOWN_GENE (404),
        the same stable code an unfiltered all-unknown query gets."""
        import numpy as np

        from repro.data.compendium import Compendium
        from repro.data.dataset import Dataset
        from repro.data.matrix import ExpressionMatrix

        rng = np.random.default_rng(7)
        conditions = [f"c{i}" for i in range(6)]

        def dataset(name: str, genes: list[str]) -> Dataset:
            values = rng.normal(size=(len(genes), len(conditions)))
            return Dataset(name=name, matrix=ExpressionMatrix(values, genes, conditions))

        compendium = Compendium([
            dataset("A", ["G1", "G2", "G3"]),
            dataset("B", ["H1", "H2", "H3"]),
        ])
        app = ApiApp(SpellService(compendium))
        status, body = app.handle_wire(
            "search", {"genes": ["G1", "G2"], "datasets": ["B"]}
        )
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_GENE"
        assert body["error"]["details"]["unknown_genes"] == ["G1", "G2"]
        # same genes against the dataset that holds them still work
        status, body = app.handle_wire(
            "search", {"genes": ["G1", "G2"], "datasets": ["A"]}
        )
        assert status == 200 and body["dataset_rows"][0][1] == "A"

    def test_raw_render_parse_failures_counted(self, live_api):
        """?format=ppm parse failures must show up in /v1/health stats."""
        base, _, _ = live_api
        _, before = http(base, "/v1/health")
        errors_before = before["endpoints"].get("render/heatmap", {}).get("errors", 0)
        request = urllib.request.Request(
            base + "/v1/render/heatmap?format=ppm",
            data=json.dumps({"search": {"genes": []}}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        assert json.loads(exc.value.read())["error"]["code"] == "INVALID_QUERY"
        _, after = http(base, "/v1/health")
        assert after["endpoints"]["render/heatmap"]["errors"] == errors_before + 1

    def test_cluster_and_render_honor_search_top_k(self, spell_setup_api):
        """A top_k-capped search must bound what cluster/render touch."""
        from repro.api.protocol import ClusterRequest

        compendium, truth = spell_setup_api
        app = ApiApp(SpellService(compendium))
        capped = SearchRequest(genes=truth.query_genes, top_k=3)
        cluster = app.cluster(ClusterRequest(search=capped, top_genes=10))
        assert len(cluster.genes) <= 3
        full = app.search(SearchRequest(genes=truth.query_genes, page_size=3))
        assert sorted(cluster.genes) == sorted(row[1] for row in full.gene_rows)
        render = app.render_heatmap(
            RenderRequest(search=capped, top_genes=10)
        )
        assert len(render.genes) <= 3

    def test_unknown_endpoint_stats_bounded(self, spell_setup_api):
        """Bogus endpoint names must not grow the stats map per name."""
        compendium, _ = spell_setup_api
        app = ApiApp(SpellService(compendium))
        for name in ("bogus1", "bogus2", "bogus3"):
            status, _ = app.handle_wire(name, {})
            assert status == 404
        stats = app.endpoint_stats()
        assert "bogus1" not in stats
        assert stats["(unknown)"]["errors"] == 3

    def test_render_typed(self, spell_setup_api):
        compendium, truth = spell_setup_api
        app = ApiApp(SpellService(compendium))
        response = app.render_heatmap(
            RenderRequest(
                search=SearchRequest(genes=truth.query_genes),
                top_genes=5, cluster=True,
            )
        )
        pixels = decode_ppm(response.ppm)
        assert pixels.shape == (response.height, response.width, 3)


class TestGracefulDrain:
    """The threaded facade honors the shared drain contract
    (:mod:`repro.api.transport`): ``close()`` finishes in-flight
    requests before tearing down, bounded by a timeout."""

    class _SlowSearch:
        def __init__(self, inner, delay):
            self._inner = inner
            self._delay = delay

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def respond(self, *args, **kwargs):
            import time

            time.sleep(self._delay)
            return self._inner.respond(*args, **kwargs)

    def test_close_drains_in_flight_requests(self, spell_setup_api):
        import time

        from repro.api.http import serve_background

        compendium, truth = spell_setup_api
        with SpellService(compendium, n_workers=2) as inner:
            app = ApiApp(self._SlowSearch(inner, delay=0.6))
            server, thread = serve_background(app)
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            payload = {"genes": list(truth.query_genes), "page_size": 10}
            results = []

            def issue():
                results.append(http(base, "/v1/search", payload))

            clients = [threading.Thread(target=issue) for _ in range(3)]
            for t in clients:
                t.start()
            time.sleep(0.25)  # requests now inside the slow respond()
            assert server.stats.snapshot()["in_flight"] >= 1
            drained = server.close(timeout=10)
            for t in clients:
                t.join(timeout=15)
            thread.join(timeout=10)

            assert drained is True
            assert len(results) == 3  # zero dropped in-flight responses
            for status, body in results:
                assert status == 200
                assert body["total_genes"] > 0
            snap = server.stats.snapshot()
            assert snap["drained_requests"] >= 1
            assert snap["in_flight"] == 0

    def test_transport_counters_in_health(self, live_api):
        base, _service, _truth = live_api
        status, body = http(base, "/v1/health")
        assert status == 200
        transport = body["serving"]["transport"]["http"]
        assert transport["requests_total"] >= 1
        assert transport["draining"] is False
