"""Unit tests of the hand-rolled HTTP/1.1 parser and encoders.

Pure byte-level tests — no sockets, no event loop.  The parser is the
trust boundary of the asyncio tier: every framing decision it makes
(keep-alive defaults, Content-Length validation, pipelined splitting,
size limits on unbounded buffers) is pinned here, byte by byte.
"""

from __future__ import annotations

import pytest

from repro.api.aio.http11 import (
    CHUNKED_EOF,
    MAX_HEADER_BYTES,
    MAX_REQUEST_LINE_BYTES,
    ProtocolError,
    RequestParser,
    encode_chunk,
    encode_response,
    encode_stream_head,
    reason_phrase,
)


def feed_all(raw: bytes) -> RequestParser:
    parser = RequestParser()
    parser.feed(raw)
    return parser


class TestHeadParsing:
    def test_simple_get(self):
        parser = feed_all(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        head = parser.poll_head()
        assert head.method == "GET"
        assert head.target == "/v1/health"
        assert head.version == "HTTP/1.1"
        assert head.headers["host"] == "x"
        assert head.content_length == 0
        assert head.keep_alive

    def test_incremental_byte_at_a_time(self):
        raw = b"POST /v1/search HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
        parser = RequestParser()
        head = None
        for i in range(len(raw)):
            parser.feed(raw[i : i + 1])
            if head is None:
                head = parser.poll_head()
        assert head is not None
        assert head.content_length == 2
        assert parser.poll_body(head) == b"{}"

    def test_header_names_lowercased_values_stripped(self):
        parser = feed_all(
            b"GET / HTTP/1.1\r\nX-Client-ID:   alice  \r\nAUTHORIZATION: Bearer t\r\n\r\n"
        )
        head = parser.poll_head()
        assert head.headers["x-client-id"] == "alice"
        assert head.headers["authorization"] == "Bearer t"

    def test_none_until_headers_complete(self):
        parser = feed_all(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n")
        assert parser.poll_head() is None
        parser.feed(b"\r\n")
        assert parser.poll_head() is not None

    @pytest.mark.parametrize(
        "line",
        [
            b"BOGUS\r\n\r\n",  # no target/version
            b"GET /v1/health\r\n\r\n",  # missing version
            b"get /v1/health HTTP/1.1\r\n\r\n",  # lowercase method
            b"G3T /v1/health HTTP/1.1\r\n\r\n",  # non-alpha method
            b"GET /v1/health HTTP/2.0\r\n\r\n",  # unsupported version
            b"GET v1/health HTTP/1.1\r\n\r\n",  # relative target
            b"GET /a b HTTP/1.1\r\n\r\n",  # embedded space (4 parts)
        ],
    )
    def test_malformed_request_lines(self, line):
        with pytest.raises(ProtocolError):
            feed_all(line).poll_head()

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError):
            feed_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").poll_head()

    def test_request_line_limit_applies_to_incomplete_buffer(self):
        # an attacker streaming an endless request line must be cut off
        # even though no newline ever arrives
        parser = feed_all(b"GET /" + b"a" * MAX_REQUEST_LINE_BYTES)
        with pytest.raises(ProtocolError):
            parser.poll_head()

    def test_header_block_limit(self):
        raw = b"GET / HTTP/1.1\r\n" + b"X-Pad: " + b"b" * MAX_HEADER_BYTES + b"\r\n\r\n"
        with pytest.raises(ProtocolError):
            feed_all(raw).poll_head()


class TestBodyFraming:
    def test_body_polls_none_until_buffered(self):
        parser = feed_all(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab")
        head = parser.poll_head()
        assert parser.poll_body(head) is None
        parser.feed(b"cd")
        assert parser.poll_body(head) == b"abcd"

    # '+5' and '1_0' parse fine through int() — RFC 9110 says 1*DIGIT,
    # and leniency the front proxy doesn't share is a smuggling opening
    @pytest.mark.parametrize("value", [b"nope", b"-5", b"1e3", b"+5", b"1_0", b""])
    def test_bad_content_length_rejected_at_head(self, value):
        raw = b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
        with pytest.raises(ProtocolError):
            feed_all(raw).poll_head()

    def test_transfer_encoding_requests_rejected(self):
        # a chunked request body would make the declared-length body cap
        # meaningless; the tier only accepts Content-Length requests
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError):
            feed_all(raw).poll_head()


class TestPipelining:
    def test_two_pipelined_requests_split_in_order(self):
        raw = (
            b"POST /v1/search HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
            b"GET /v1/health HTTP/1.1\r\n\r\n"
        )
        parser = feed_all(raw)
        first = parser.poll_head()
        assert first.target == "/v1/search"
        assert parser.poll_body(first) == b"{}"
        assert parser.pending_bytes() > 0  # the client pipelined
        second = parser.poll_head()
        assert second.target == "/v1/health"
        assert parser.poll_body(second) == b""
        assert parser.pending_bytes() == 0


class TestKeepAliveDefaults:
    def test_http11_defaults_keep_alive(self):
        head = feed_all(b"GET / HTTP/1.1\r\n\r\n").poll_head()
        assert head.keep_alive

    def test_http11_connection_close(self):
        head = feed_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").poll_head()
        assert not head.keep_alive

    def test_http10_defaults_close(self):
        head = feed_all(b"GET / HTTP/1.0\r\n\r\n").poll_head()
        assert not head.keep_alive

    def test_http10_explicit_keep_alive(self):
        head = feed_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").poll_head()
        assert head.keep_alive


class TestEncoders:
    def test_fixed_response_roundtrip(self):
        data = encode_response(200, b'{"ok":1}')
        text, _, body = data.partition(b"\r\n\r\n")
        assert text.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 8" in text
        assert body == b'{"ok":1}'
        assert b"Connection: close" not in text

    def test_close_header_advertised(self):
        data = encode_response(400, b"{}", close=True)
        assert b"Connection: close" in data.split(b"\r\n\r\n")[0]

    def test_extra_headers_emitted(self):
        data = encode_response(429, b"{}", extra_headers={"Retry-After": "2"})
        assert b"Retry-After: 2" in data.split(b"\r\n\r\n")[0]

    def test_stream_head_is_chunked_no_length(self):
        head = encode_stream_head()
        assert b"Transfer-Encoding: chunked" in head
        assert b"Content-Length" not in head
        assert head.endswith(b"\r\n\r\n")

    def test_chunk_encoding_exact_bytes(self):
        assert encode_chunk(b"hello") == b"5\r\nhello\r\n"
        assert encode_chunk(b"x" * 16) == b"10\r\n" + b"x" * 16 + b"\r\n"
        assert CHUNKED_EOF == b"0\r\n\r\n"

    def test_reason_phrases(self):
        assert reason_phrase(200) == "OK"
        assert reason_phrase(429) == "Too Many Requests"
        assert reason_phrase(599) == "Unknown"
