"""Tests for rendering GOLEM local maps to display lists (Figure 5 pixels)."""

import numpy as np
import pytest

from repro.ontology import Golem, GolemMapStyle, golem_map_commands
from repro.util.errors import RenderError
from repro.viz import Box, DisplayList


@pytest.fixture
def golem_with_report(ontology_setup):
    onto, store, truth, genes = ontology_setup
    golem = Golem(onto, store)
    golem.enrich_selection(genes[:12])
    return golem, truth


class TestGolemMapRendering:
    def test_map_renders_nonempty(self, golem_with_report):
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=2, down=1)
        dl = DisplayList(500, 400)
        dl.extend(golem_map_commands(lm, Box(10, 10, 480, 380)))
        px = dl.render_full()
        assert (px != 0).any()

    def test_significant_nodes_colored_differently(self, golem_with_report):
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=1, down=0)
        assert any(n.significant for n in lm.nodes)
        commands = golem_map_commands(lm, Box(0, 0, 400, 300))
        from repro.viz.scene import RectCmd

        fills = [
            c.color for c in commands
            if isinstance(c, RectCmd) and c.h == GolemMapStyle.node_height
        ]
        assert GolemMapStyle.node_fill_significant in fills

    def test_edges_drawn_between_node_centers(self, golem_with_report):
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=2, down=1)
        commands = golem_map_commands(lm, Box(0, 0, 500, 400))
        from repro.viz.scene import LineCmd

        lines = [c for c in commands if isinstance(c, LineCmd)]
        assert len(lines) == len(lm.edges)

    def test_tiles_identically(self, golem_with_report):
        """The map panel obeys the display-list tiling invariant."""
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=2, down=1)
        dl = DisplayList(400, 320)
        dl.extend(golem_map_commands(lm, Box(5, 5, 390, 310)))
        full = dl.render_full()
        region = dl.render_region(100, 80, 120, 90)
        assert np.array_equal(region, full[80:170, 100:220])

    def test_too_small_box_rejected(self, golem_with_report):
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=1, down=0)
        with pytest.raises(RenderError):
            golem_map_commands(lm, Box(0, 0, 40, 20))

    def test_counts_can_be_hidden(self, golem_with_report):
        golem, truth = golem_with_report
        lm = golem.most_enriched_map(up=1, down=0)
        with_counts = golem_map_commands(lm, Box(0, 0, 400, 300), show_counts=True)
        without = golem_map_commands(lm, Box(0, 0, 400, 300), show_counts=False)
        assert len(with_counts) > len(without)
