"""Resumable exports + client-disconnect hardening (PR 9).

Two contracts over ``/v1/search/export``:

* **Resume** — a request carrying ``resume_offset`` (a chunk boundary)
  restarts the stream at that offset, and the resumed stream's chunk
  lines are **bit-identical** to the same-offset lines of an
  uninterrupted export; its trailer checksum covers exactly the resumed
  lines.  Asserted at the app layer and over live sockets on *both*
  facades (threaded and asyncio), plus splice reassembly equality.
* **Disconnect** — a client that vanishes mid-stream must not leak:
  the export generator is closed (the failed export is counted), the
  connection slot is released, and the index's ``ScratchPool`` returns
  to its steady state.  Regression-tested on both facades with a
  hard RST close (``SO_LINGER`` 0).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import time

import pytest

from repro.api.app import ApiApp
from repro.api.errors import ApiError
from repro.api.http import serve_background as threaded_serve
from repro.api.aio.server import serve_background as aio_serve
from repro.api.protocol import ExportRequest
from repro.spell import SpellService
from repro.synth import make_spell_compendium


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=150,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=23,
    )


@pytest.fixture(scope="module")
def service(setup):
    compendium, _ = setup
    with SpellService(compendium, n_workers=2) as svc:
        yield svc


@pytest.fixture(scope="module")
def app(service):
    return ApiApp(service)


@pytest.fixture(scope="module")
def threaded_addr(app):
    server, thread = threaded_serve(app)
    yield server.server_address[:2]
    server.close(timeout=5)
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def aio_addr(app):
    server, thread = aio_serve(app)
    yield server.server_address[:2]
    server.close(timeout=5)
    thread.join(timeout=10)


def read_stream(addr, payload: dict):
    """POST an export over a live socket; returns (status, raw lines)."""
    conn = http.client.HTTPConnection(*addr, timeout=30)
    try:
        conn.request(
            "POST",
            "/v1/search/export",
            body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, [line for line in raw.split(b"\n") if line]
    finally:
        conn.close()


def split_stream(lines: list[bytes]):
    """(chunk lines, parsed chunks, parsed trailer) from raw NDJSON lines."""
    parsed = [json.loads(line) for line in lines]
    assert parsed and parsed[-1]["kind"] == "trailer"
    return lines[:-1], parsed[:-1], parsed[-1]


def stream_checksum(chunk_lines: list[bytes]) -> str:
    digest = hashlib.sha256()
    for line in chunk_lines:
        digest.update(line + b"\n")
    return f"sha256:{digest.hexdigest()}"


class TestResumeValidation:
    def test_resume_offset_must_sit_on_a_chunk_boundary(self):
        with pytest.raises(ApiError) as exc:
            ExportRequest(genes=("A",), chunk_size=5, resume_offset=7)
        assert exc.value.code == "INVALID_REQUEST"

    def test_resume_offset_must_be_non_negative(self):
        with pytest.raises(ApiError) as exc:
            ExportRequest(genes=("A",), chunk_size=5, resume_offset=-5)
        assert exc.value.code == "INVALID_REQUEST"

    def test_boundary_violation_is_a_pre_stream_400(self, setup, threaded_addr):
        _, truth = setup
        status, lines = read_stream(
            threaded_addr,
            {"genes": list(truth.query_genes), "chunk_size": 5, "resume_offset": 3},
        )
        assert status == 400
        body = json.loads(b"".join(lines))
        assert body["error"]["code"] == "INVALID_REQUEST"


class TestResumeBitIdentity:
    CHUNK = 7  # deliberately not a divisor of the ranking length

    def _full_and_resumed(self, addr, genes, skip_chunks: int):
        status, full = read_stream(
            addr, {"genes": genes, "chunk_size": self.CHUNK}
        )
        assert status == 200
        offset = skip_chunks * self.CHUNK
        status, resumed = read_stream(
            addr,
            {"genes": genes, "chunk_size": self.CHUNK, "resume_offset": offset},
        )
        assert status == 200
        return full, resumed, offset

    @pytest.mark.parametrize("facade", ["threaded", "aio"])
    def test_resumed_stream_bit_identical_on_both_facades(
        self, setup, threaded_addr, aio_addr, facade
    ):
        _, truth = setup
        addr = threaded_addr if facade == "threaded" else aio_addr
        genes = list(truth.query_genes)
        full, resumed, offset = self._full_and_resumed(addr, genes, skip_chunks=3)

        full_chunks, full_parsed, full_trailer = split_stream(full)
        res_chunks, res_parsed, res_trailer = split_stream(resumed)

        # chunk lines are byte-identical to the uninterrupted tail
        assert res_chunks == full_chunks[3:]
        # the trailer accounts for exactly this stream
        assert res_trailer["status"] == "ok"
        assert res_trailer["resume_offset"] == offset
        assert res_trailer["n_chunks"] == len(res_chunks)
        assert res_trailer["total_rows"] == full_trailer["total_rows"] - offset
        assert res_trailer["checksum"] == stream_checksum(res_chunks)
        # splice reassembly: interrupted prefix + resumed tail == whole
        spliced = full_chunks[:3] + res_chunks
        assert spliced == full_chunks
        rows = [r for c in full_parsed for r in c["gene_rows"]]
        spliced_rows = [
            r
            for c in (full_parsed[:3] + res_parsed)
            for r in c["gene_rows"]
        ]
        assert spliced_rows == rows
        # dataset ranking rides both trailers identically
        assert res_trailer["dataset_rows"] == full_trailer["dataset_rows"]

    def test_facades_agree_on_resumed_bytes(self, setup, threaded_addr, aio_addr):
        _, truth = setup
        genes = list(truth.query_genes)
        payload = {"genes": genes, "chunk_size": self.CHUNK, "resume_offset": 14}
        _, via_threaded = read_stream(threaded_addr, payload)
        _, via_aio = read_stream(aio_addr, payload)
        t_chunks, _, t_trailer = split_stream(via_threaded)
        a_chunks, _, a_trailer = split_stream(via_aio)
        assert t_chunks == a_chunks
        assert t_trailer["checksum"] == a_trailer["checksum"]

    def test_resume_past_end_yields_empty_ok_stream(self, setup, threaded_addr):
        _, truth = setup
        genes = list(truth.query_genes)
        _, full = read_stream(threaded_addr, {"genes": genes, "chunk_size": 5})
        _, _, trailer = split_stream(full)
        beyond = ((trailer["total_rows"] // 5) + 2) * 5
        _, resumed = read_stream(
            threaded_addr,
            {"genes": genes, "chunk_size": 5, "resume_offset": beyond},
        )
        chunks, _, res_trailer = split_stream(resumed)
        assert chunks == []
        assert res_trailer["status"] == "ok"
        assert res_trailer["total_rows"] == 0
        assert res_trailer["n_chunks"] == 0

    def test_interrupt_then_resume_at_app_layer(self, setup, app):
        """Abandon a stream after k chunks, resume at the boundary, and
        the reassembled stream equals the uninterrupted one."""
        _, truth = setup
        genes = list(truth.query_genes)
        full = list(app.export({"genes": genes, "chunk_size": 10}))

        interrupted = app.export({"genes": genes, "chunk_size": 10})
        got: list[bytes] = []
        for line in interrupted:
            got.append(line)
            if len(got) == 4:
                break
        interrupted.close()  # the client vanished

        resumed = list(
            app.export({"genes": genes, "chunk_size": 10, "resume_offset": 40})
        )
        assert got + resumed[:-1] == full[:-1]  # chunk lines reassemble
        trailer = json.loads(resumed[-1])
        # app-layer lines carry their newline already — hash them as-is
        digest = hashlib.sha256()
        for line in resumed[:-1]:
            digest.update(line)
        assert trailer["checksum"] == f"sha256:{digest.hexdigest()}"


def _slow_app(setup, delay: float = 0.05):
    """A fresh app whose export cursor sleeps between chunks, so a
    mid-stream disconnect is guaranteed to hit an in-progress write."""
    compendium, truth = setup
    service = SpellService(compendium)
    real_iter = service.iter_result

    def slow(request, **kwargs):
        cursor = real_iter(request, **kwargs)

        def walk():
            for item in cursor:
                time.sleep(delay)
                yield item

        return walk()

    service.iter_result = slow
    return ApiApp(service), service, truth


def _rst_close_mid_stream(addr, genes):
    """Start an export, read the response head, then RST the socket."""
    sock = socket.create_connection(addr, timeout=30)
    try:
        body = json.dumps({"genes": genes, "chunk_size": 1}).encode()
        request = (
            b"POST /v1/search/export HTTP/1.1\r\n"
            b"Host: test\r\nContent-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        sock.sendall(request)
        sock.recv(256)  # the committed 200 + first bytes
        # RST on close: the server's next write fails immediately
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),
        )
    finally:
        sock.close()


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


class TestDisconnectLeaks:
    @pytest.mark.parametrize("facade", ["threaded", "aio"])
    def test_mid_stream_disconnect_leaks_nothing(self, setup, facade):
        app, service, truth = _slow_app(setup)
        serve = threaded_serve if facade == "threaded" else aio_serve
        server, thread = serve(app)
        addr = server.server_address[:2]
        try:
            # establish the scratch pool's steady state with a clean query
            service.search(truth.query_genes, use_cache=False)
            idle_baseline = service._index._scratch.idle_count()

            _rst_close_mid_stream(addr, list(truth.query_genes))

            # the abandoned export is counted as a failed request ...
            assert _wait_until(
                lambda: app.endpoint_stats()
                .get("search/export", {})
                .get("errors", 0)
                >= 1
            ), app.endpoint_stats()
            # ... the connection slot is released ...
            assert _wait_until(
                lambda: server.stats.snapshot()["open_connections"] == 0
            ), server.stats.snapshot()
            assert _wait_until(
                lambda: server.stats.snapshot()["in_flight"] == 0
            ), server.stats.snapshot()
            # ... and no scratch buffer leaked out of the pool
            assert service._index._scratch.idle_count() == idle_baseline
            # the server still answers: the slot really was recycled
            status, lines = read_stream(
                addr, {"genes": list(truth.query_genes), "chunk_size": 50}
            )
            assert status == 200
            _, _, trailer = split_stream(lines)
            assert trailer["status"] == "ok"
        finally:
            server.close(timeout=5)
            thread.join(timeout=10)
            service.close()
