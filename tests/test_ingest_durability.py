"""Live ingestion never corrupts a tenant: validation, crashes, races.

The ingest path's safety contract, end to end through the loaders:

* **Validation before mutation** — a malformed SOFT or PCL submission
  is a structured 4xx and the tenant's directory tree (sources and
  store manifest alike) is byte-identical to before the request; a
  duplicate name is the structured 409 with the same guarantee.  Both
  loader formats also round-trip *valid* submissions end to end.
* **Crash safety** — a real ingesting process killed by ``os._exit``
  either before the source publish (nothing changed) or between the
  source publish and the index manifest publish (prior manifest
  intact; the next load resyncs the store to the sources) leaves a
  tenant every subsequent load serves cleanly.  Same harness as
  ``test_store_durability.py``.
* **Publication atomicity under racing queries** — a seeded reader
  pounding a tenant while a writer ingests always observes either the
  prior or the fully-published compendium: served dataset lists are
  exact prefixes of the ingest order, and every health fingerprint is
  one the writer actually published.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

import repro
from repro.api.app import ApiApp
from repro.data.pcl import write_pcl
from repro.data.soft import write_series_matrix
from repro.spell.catalog import CompendiumCatalog
from repro.spell.service import SpellService
from repro.spell.store import IndexStore
from repro.synth import make_spell_compendium

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

COMPENDIUM_KWARGS = dict(
    n_datasets=6,
    n_relevant=2,
    n_genes=60,
    n_conditions=6,
    module_size=8,
    query_size=3,
    seed=19,
)


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(**COMPENDIUM_KWARGS)


def pcl_text(tmp_path, dataset) -> str:
    path = tmp_path / f"{dataset.name}.pcl.src"
    write_pcl(dataset.matrix, path)
    return path.read_text(encoding="utf-8")


def soft_text(tmp_path, dataset) -> str:
    path = tmp_path / f"{dataset.name}.soft.src"
    write_series_matrix(dataset, path)
    return path.read_text(encoding="utf-8")


def tree_snapshot(root: Path) -> dict[str, bytes]:
    """Every file under ``root`` with its exact bytes."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestValidationBeforeMutation:
    @pytest.mark.parametrize("fmt", ["pcl", "soft"])
    def test_valid_submission_round_trips_both_loaders(
        self, setup, tmp_path, fmt
    ):
        compendium, truth = setup
        ds = list(compendium)[0]
        text = {"pcl": pcl_text, "soft": soft_text}[fmt](tmp_path, ds)
        catalog = CompendiumCatalog(tmp_path / "cat")
        try:
            tenant, service, ingested = catalog.ingest("t", ds.name, fmt, text)
            assert ingested.name == ds.name
            assert ingested.fingerprint  # durable content hash
            assert service.search(list(truth.query_genes)).genes
        finally:
            catalog.close()

    @pytest.mark.parametrize(
        "fmt,garbage",
        [
            ("pcl", "not\ta\tpcl\nrow"),
            ("pcl", ""),
            ("soft", "!Series_title = truncated\nno matrix here"),
            ("soft", "\x00\x01binary junk"),
        ],
    )
    def test_malformed_submission_is_4xx_and_store_untouched(
        self, setup, tmp_path, fmt, garbage
    ):
        compendium, _ = setup
        root = tmp_path / "cat"
        catalog = CompendiumCatalog(root)
        app = ApiApp(
            SpellService(compendium, n_workers=1), catalog=catalog
        )
        try:
            # seed the tenant so there is real state to protect
            ds = list(compendium)[0]
            catalog.ingest("t", ds.name, "pcl", pcl_text(tmp_path, ds))
            before = tree_snapshot(root)
            status, body = app.handle_wire(
                "ingest",
                {
                    "name": "victim", "format": fmt,
                    "content": garbage, "compendium": "t",
                },
            )
            assert 400 <= status < 500, body
            assert body["error"]["code"] == "INVALID_REQUEST"
            assert tree_snapshot(root) == before  # byte-identical tree
        finally:
            app.service.close()
            catalog.close()

    def test_duplicate_is_409_and_store_untouched(self, setup, tmp_path):
        compendium, _ = setup
        root = tmp_path / "cat"
        catalog = CompendiumCatalog(root)
        app = ApiApp(SpellService(compendium, n_workers=1), catalog=catalog)
        try:
            ds = list(compendium)[0]
            text = pcl_text(tmp_path, ds)
            catalog.ingest("t", ds.name, "pcl", text)
            before = tree_snapshot(root)
            status, body = app.handle_wire(
                "ingest",
                {
                    "name": ds.name, "format": "pcl",
                    "content": text, "compendium": "t",
                },
            )
            assert status == 409
            assert body["error"]["code"] == "DATASET_EXISTS"
            assert tree_snapshot(root) == before
        finally:
            app.service.close()
            catalog.close()


def _crash_ingest(root: Path, sources: Path, *, patch: str) -> None:
    """A real process ingests ``dataset_01`` into tenant ``t`` under
    ``root`` and dies (``os._exit(9)``) inside ``patch``."""
    script = textwrap.dedent(
        f"""
        import os
        from pathlib import Path
        import repro.spell.catalog as catalog_mod
        from repro.spell.catalog import CompendiumCatalog
        from repro.spell.store import IndexStore

        catalog = CompendiumCatalog({str(root)!r})
        catalog.resolve("t")  # tenant resident before the patch lands
        {patch} = lambda *a, **k: os._exit(9)
        text = (Path({str(sources)!r}) / "dataset_01.pcl.src").read_text()
        catalog.ingest("t", "dataset_01", "pcl", text)
        os._exit(7)  # unreachable: the patched step must run
        """
    )
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        timeout=180,
    )
    assert proc.returncode == 9, proc.stderr.decode()


class TestCrashInjection:
    """Kill a real ingesting process; every survivor state is consistent."""

    def _seeded_tenant(self, setup, tmp_path) -> tuple[Path, Path]:
        """A tenant with one committed dataset + the source texts on disk."""
        compendium, _ = setup
        root = tmp_path / "cat"
        sources = tmp_path / "src"
        sources.mkdir()
        for ds in list(compendium)[:2]:
            write_pcl(ds.matrix, sources / f"{ds.name}.pcl.src")
        catalog = CompendiumCatalog(root)
        catalog.ingest(
            "t", "dataset_00",
            "pcl", (sources / "dataset_00.pcl.src").read_text(),
        )
        catalog.close()
        return root, sources

    def test_killed_before_source_publish_changes_nothing(
        self, setup, tmp_path
    ):
        root, sources = self._seeded_tenant(setup, tmp_path)
        before = tree_snapshot(root)
        _crash_ingest(
            root, sources, patch="catalog_mod._atomic_write_text"
        )
        assert tree_snapshot(root) == before  # not one byte moved
        catalog = CompendiumCatalog(root)
        _, service = catalog.resolve("t")
        assert [ds.name for ds in service.compendium] == ["dataset_00"]
        catalog.close()

    def test_killed_between_source_and_manifest_publish_resyncs(
        self, setup, tmp_path
    ):
        root, sources = self._seeded_tenant(setup, tmp_path)
        manifest = root / "t" / "store" / "manifest.json"
        committed = manifest.read_bytes()
        _crash_ingest(
            root, sources,
            patch="IndexStore._publish_manifest",
        )
        # the prior manifest survived the crash bit-for-bit...
        assert manifest.read_bytes() == committed
        # ...the source did land durably (no .tmp debris)...
        tenant_sources = root / "t" / "datasets"
        assert sorted(p.name for p in tenant_sources.iterdir()) == [
            "dataset_00.pcl", "dataset_01.pcl",
        ]
        # ...and the next load resyncs the store to the sources
        catalog = CompendiumCatalog(root)
        _, service = catalog.resolve("t")
        assert sorted(ds.name for ds in service.compendium) == [
            "dataset_00", "dataset_01",
        ]
        catalog.close()
        assert IndexStore.verify(root / "t" / "store").clean


class TestPublicationRace:
    def test_racing_queries_see_prior_or_fully_published_only(
        self, setup, tmp_path
    ):
        """Seeded writer-vs-readers race over the live ingest path.

        Readers must never observe a half-published compendium: every
        served dataset list is an exact prefix of the ingest order, and
        every health fingerprint is one the writer published.
        """
        compendium, truth = setup
        order = [ds.name for ds in compendium]
        texts = {ds.name: pcl_text(tmp_path, ds) for ds in compendium}
        catalog = CompendiumCatalog(tmp_path / "cat")
        app = ApiApp(SpellService(compendium, n_workers=1), catalog=catalog)
        query = list(truth.query_genes)

        _, first, _ = catalog.ingest("race", order[0], "pcl", texts[order[0]])
        published = {first.compendium.fingerprint}
        prefixes = [order[: k + 1] for k in range(len(order))]
        failures: list[str] = []
        done = threading.Event()

        def writer():
            try:
                for name in order[1:]:
                    status, body = app.handle_wire(
                        "ingest",
                        {
                            "name": name, "format": "pcl",
                            "content": texts[name], "compendium": "race",
                        },
                    )
                    assert status == 200, body
                    published.add(body["compendium_fingerprint"])
            finally:
                done.set()

        def reader():
            while not done.is_set() or not reads:
                status, body = app.handle_wire(
                    "search",
                    {"genes": query, "page_size": 10, "compendium": "race"},
                )
                if status != 200:
                    failures.append(f"search {status}: {body}")
                    break
                status, body = app.handle_wire(
                    "datasets", {"compendium": "race"}
                )
                if status != 200:
                    failures.append(f"datasets {status}: {body}")
                    break
                names = [d["name"] for d in body["datasets"]]
                if names not in prefixes:
                    failures.append(f"torn dataset list: {names}")
                    break
                status, body = app.handle_wire("health", None)
                fingerprint = body["tenants"]["race"].get("fingerprint")
                if fingerprint is not None:
                    reads.append(fingerprint)

        reads: list[str] = []
        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        try:
            assert not failures, failures[:3]
            assert reads, "readers never observed the tenant"
            # every observed fingerprint is prior-or-fully-published
            assert set(reads) <= published
            # and the final state is the full publication
            _, final = catalog.resolve("race")
            assert final.compendium.fingerprint in published
            assert [ds.name for ds in final.compendium] == order
        finally:
            app.service.close()
            catalog.close()
