"""Chaos suite: seeded fault schedules against the full sharded stack.

Every test drives the real stack — ``ApiApp`` over a ``RouterService``
over real-socket shard RPC — while a seeded :class:`FaultPlan` breaks
the transport on schedule.  The acceptance contract:

* every response is a success, a *flagged* partial, or a structured
  ``DEADLINE_EXCEEDED`` / ``SHARD_UNAVAILABLE`` — never a hang past the
  budget and never a silently truncated ranking;
* a killed-then-restarted shard returns to full (non-partial) service
  after a heartbeat, with **no router restart**;
* anything served non-partial — through retries, failover, or hedging —
  is bit-identical to the single-node oracle.
"""

from __future__ import annotations

import time

import pytest

from repro.api.app import ApiApp
from repro.api.protocol import SearchRequest
from repro.cluster_serving import build_local_topology
from repro.cluster_serving.hedging import HedgePolicy
from repro.rpc.faults import FaultPlan
from repro.rpc.policy import BREAKER_CLOSED, RetryPolicy
from repro.spell import SpellService
from repro.synth import make_spell_compendium

N_SHARDS = 3
SHARD_IDS = [f"shard-{i}" for i in range(N_SHARDS)]

#: Three distinct seeded storm schedules (the >= 3 fault plans the
#: acceptance bar asks for).  Each maps node id -> FaultPlan kwargs;
#: ``max_faults`` bounds every storm so the cluster provably heals.
STORMS = {
    "resets": {
        "shard-0": dict(seed=11, reset_mid_frame=0.6, max_faults=6),
        "shard-1": dict(seed=12, reset_mid_frame=0.4, max_faults=4),
    },
    "garbage-and-refused": {
        "shard-0": dict(seed=21, garbage=0.5, max_faults=5),
        "shard-2": dict(seed=22, connect_refused=0.5, max_faults=5),
    },
    "mixed": {
        "shard-0": dict(seed=31, reset_mid_frame=0.3, garbage=0.3, max_faults=4),
        "shard-1": dict(seed=32, connect_refused=0.4, max_faults=4),
        "shard-2": dict(seed=33, garbage=0.3, max_faults=3),
    },
}


@pytest.fixture(scope="module")
def setup():
    return make_spell_compendium(
        n_datasets=9,
        n_relevant=3,
        n_genes=150,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=7,
    )


@pytest.fixture(scope="module")
def oracle(setup):
    comp, _ = setup
    with SpellService(comp, cache_size=0) as service:
        yield service


def make_topology(comp, *, fault_specs=None, **kwargs):
    """Chaos topology: replication=2, fast breaker/retry, cache off.

    The fault plans target only the ``partials`` method by default so
    heartbeats stay honest probes (``connect_refused`` has no method
    filter — it breaks any dial, including pings, which is the point).
    """
    plans = None
    if fault_specs:
        plans = {
            nid: FaultPlan(methods=("partials",), **spec)
            for nid, spec in fault_specs.items()
        }
    kwargs.setdefault("n_shards", N_SHARDS)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("cache_size", 0)
    kwargs.setdefault("rpc_timeout", 10.0)
    kwargs.setdefault("retry", RetryPolicy(max_tries=2, base_delay=0.01, max_delay=0.05))
    kwargs.setdefault("breaker_reset_timeout", 0.5)
    return build_local_topology(comp, fault_plans=plans, **kwargs)


def assert_rows_identical(body: dict, oracle_body: dict) -> None:
    """A served (non-partial) wire response matches the oracle's exactly."""
    assert body["gene_rows"] == oracle_body["gene_rows"]
    assert body["dataset_rows"] == oracle_body["dataset_rows"]
    assert body["total_genes"] == oracle_body["total_genes"]


class TestSeededStorms:
    @pytest.mark.parametrize("storm", sorted(STORMS), ids=sorted(STORMS))
    def test_every_response_structured_and_cluster_heals(
        self, setup, oracle, storm
    ):
        comp, truth = setup
        payload = {
            "genes": list(truth.query_genes),
            "page_size": 25,
            "deadline_ms": 10_000,
        }
        _, oracle_body = ApiApp(oracle).handle_wire("search", dict(payload))

        with make_topology(comp, fault_specs=STORMS[storm]) as topo:
            app = ApiApp(topo.router)
            outcomes = {"ok": 0, "partial": 0, "unavailable": 0, "deadline": 0}
            for _ in range(12):
                t0 = time.monotonic()
                status, body = app.handle_wire("search", dict(payload))
                elapsed = time.monotonic() - t0
                # bounded latency: never a hang past the request budget
                assert elapsed < 10.0, f"query hung {elapsed:.1f}s under {storm}"
                if status == 200:
                    if body["partial"]:
                        outcomes["partial"] += 1
                        # flagged, never silent: the gap is itemized
                        assert body["shards"]["missing_datasets"]
                        assert body["shards"]["failures"]
                    else:
                        outcomes["ok"] += 1
                        assert_rows_identical(body, oracle_body)
                elif status == 503:
                    outcomes["unavailable"] += 1
                    assert body["error"]["code"] == "SHARD_UNAVAILABLE"
                elif status == 504:
                    outcomes["deadline"] += 1
                    assert body["error"]["code"] == "DEADLINE_EXCEEDED"
                else:  # any other status is a contract violation
                    raise AssertionError(f"unstructured failure: {status} {body}")

            # the storm budget (max_faults) is finite: heartbeats + queries
            # must converge back to full, bit-identical service
            recovered = False
            for _ in range(20):
                topo.router.heartbeat()
                status, body = app.handle_wire("search", dict(payload))
                if status == 200 and not body["partial"]:
                    recovered = True
                    break
            assert recovered, f"cluster never healed after storm {storm}: {outcomes}"
            assert_rows_identical(body, oracle_body)
            # the plans really injected something (the storm was real)
            injected = sum(
                node.fault_plan.stats()["total_injected"]
                for node in topo.shards
                if node.fault_plan is not None
            )
            assert injected > 0


class TestKillRestartRejoin:
    def test_restarted_shard_returns_to_full_service_without_router_restart(
        self, setup, oracle
    ):
        comp, truth = setup
        request = {"genes": list(truth.query_genes), "page_size": 25}
        _, oracle_body = ApiApp(oracle).handle_wire("search", dict(request))

        # replication=1: losing a shard MUST show as partial (no replica
        # can mask it), which makes full recovery unambiguous
        with make_topology(comp, replication=1) as topo:
            app = ApiApp(topo.router)
            status, body = app.handle_wire("search", dict(request))
            assert status == 200 and not body["partial"]

            victim = "shard-1"
            topo.kill(victim)
            status, body = app.handle_wire("search", dict(request))
            assert status == 200 and body["partial"]
            assert body["shards"]["missing_datasets"]

            # enough traffic to trip the victim's breaker open
            for _ in range(3):
                app.handle_wire("search", dict(request))
            snap = topo.router.shard_stats()["nodes"][victim]
            assert not snap["alive"]
            assert snap["breaker"]["state"] != BREAKER_CLOSED

            topo.restart(victim)
            topo.router.heartbeat()  # the rejoin sweep — no router rebuild

            status, body = app.handle_wire("search", dict(request))
            assert status == 200 and not body["partial"]
            assert_rows_identical(body, oracle_body)
            snap = topo.router.shard_stats()["nodes"][victim]
            assert snap["alive"]
            assert snap["breaker"]["state"] == BREAKER_CLOSED
            # the resync check: the reborn node's advertised catalog
            # covers exactly what the plan says it owns
            assert snap["catalog_synced"] is True

    def test_restart_with_different_content_is_refused_per_dataset(self, setup):
        comp, truth = setup
        other, _ = make_spell_compendium(
            n_datasets=9,
            n_relevant=3,
            n_genes=150,
            n_conditions=10,
            module_size=12,
            query_size=3,
            seed=99,  # different content, same dataset names
        )
        request = {"genes": list(truth.query_genes), "page_size": 25}
        with make_topology(comp, replication=1) as topo:
            app = ApiApp(topo.router)
            victim = "shard-1"
            topo.kill(victim)
            topo.restart(victim, compendium=other)
            # first sweep may spend on redialling the stale pooled
            # connection; converge before judging the reported catalog
            for _ in range(3):
                topo.router.heartbeat()
                snap = topo.router.shard_stats()["nodes"][victim]
                if snap["alive"]:
                    break
            assert snap["alive"]
            status, body = app.handle_wire("search", dict(request))
            # stale fingerprints are refused, never merged: the answer is
            # a flagged partial, not silently mixed content
            assert status == 200 and body["partial"]
            assert snap["catalog_synced"] is False


class TestDeadlineBudget:
    def test_universal_stall_yields_structured_504_within_budget(self, setup):
        comp, truth = setup
        stall = {
            nid: dict(seed=5, stall=1.0, stall_seconds=8.0)
            for nid in SHARD_IDS
        }
        with make_topology(
            comp,
            fault_specs=stall,
            retry=RetryPolicy.none(),
            hedge=HedgePolicy.disabled(),
        ) as topo:
            app = ApiApp(topo.router)
            payload = {
                "genes": list(truth.query_genes),
                "page_size": 25,
                "deadline_ms": 400,
            }
            t0 = time.monotonic()
            status, body = app.handle_wire("search", dict(payload))
            elapsed = time.monotonic() - t0
            assert status == 504
            assert body["error"]["code"] == "DEADLINE_EXCEEDED"
            # the budget bounds the response, not the 8s stall
            assert elapsed < 4.0
            assert topo.router.shard_stats()["deadline_exceeded"] >= 1

    def test_deadline_ms_validation(self, setup):
        comp, truth = setup
        with make_topology(comp) as topo:
            app = ApiApp(topo.router)
            status, body = app.handle_wire(
                "search", {"genes": list(truth.query_genes), "deadline_ms": 0}
            )
            assert status == 400
            status, _body = app.handle_wire(
                "search",
                {"genes": list(truth.query_genes), "deadline_ms": 60_000},
            )
            assert status == 200

    def test_unbounded_requests_keep_working(self, setup, oracle):
        comp, truth = setup
        request = {"genes": list(truth.query_genes), "page_size": 25}
        _, oracle_body = ApiApp(oracle).handle_wire("search", dict(request))
        with make_topology(comp) as topo:
            status, body = ApiApp(topo.router).handle_wire("search", dict(request))
            assert status == 200 and not body["partial"]
            assert_rows_identical(body, oracle_body)


class TestHedgedReplicas:
    def test_hedge_beats_a_stalled_shard_bit_identically(self, setup, oracle):
        comp, truth = setup
        # shard-0 stalls every partials reply for 5s; its datasets'
        # second replicas answer instantly once the hedge fires
        stall = {"shard-0": dict(seed=3, stall=1.0, stall_seconds=5.0)}
        hedge = HedgePolicy(initial_delay=0.05, min_delay=0.01, max_delay=0.2)
        request = SearchRequest(genes=truth.query_genes, page_size=25)
        oracle_response = oracle.respond(request)

        with make_topology(comp, fault_specs=stall, hedge=hedge) as topo:
            t0 = time.monotonic()
            response = topo.router.respond(request)
            elapsed = time.monotonic() - t0
            assert not response.partial  # hedging, not degradation
            assert elapsed < 3.0  # far below the 5s stall
            assert response.gene_rows == oracle_response.gene_rows
            assert response.dataset_rows == oracle_response.dataset_rows
            stats = topo.router.shard_stats()["hedging"]
            assert stats["enabled"]
            assert stats["fired"] >= 1
            assert stats["wins"] >= 1

    def test_hedging_disabled_still_completes_via_failover(self, setup, oracle):
        comp, truth = setup
        # the stalled owner exhausts its one try (clamped by rpc_timeout),
        # then ring failover reaches the healthy replica — slower than a
        # hedge but still complete and correct
        stall = {"shard-0": dict(seed=3, stall=1.0, stall_seconds=1.0)}
        request = SearchRequest(genes=truth.query_genes, page_size=25)
        oracle_response = oracle.respond(request)
        with make_topology(
            comp,
            fault_specs=stall,
            hedge=HedgePolicy.disabled(),
            retry=RetryPolicy.none(),
            rpc_timeout=0.4,
        ) as topo:
            response = topo.router.respond(request)
            assert not response.partial
            assert response.gene_rows == oracle_response.gene_rows
            stats = topo.router.shard_stats()["hedging"]
            assert not stats["enabled"]
            assert stats["fired"] == 0


class TestBreakerInTheLoop:
    def test_dead_shard_trips_breaker_and_heartbeat_heals_it(self, setup):
        comp, truth = setup
        request = {"genes": list(truth.query_genes), "page_size": 25}
        with make_topology(comp, replication=1) as topo:
            app = ApiApp(topo.router)
            # pick a shard that is actually a primary owner (consistent
            # hashing can leave a node with zero datasets at replication=1
            # — killing that one would never dial, never trip anything)
            victim = sorted(nids[0] for nids in topo.router._plan.values())[0]
            topo.kill(victim)
            # each query retries (2 tries) against the dead node; two
            # queries cross the threshold of 3 and open the breaker
            for _ in range(3):
                app.handle_wire("search", dict(request))
            breaker = topo.router._membership.breaker(victim)
            assert breaker.snapshot()["state"] != BREAKER_CLOSED
            assert breaker.opens >= 1

            # while open, shard calls fail fast — the query stays partial
            # but never burns a connect timeout on the dead node
            t0 = time.monotonic()
            status, body = app.handle_wire("search", dict(request))
            assert status == 200 and body["partial"]
            assert time.monotonic() - t0 < 2.0

            topo.restart(victim)
            topo.router.heartbeat()  # ping bypasses the open breaker
            assert breaker.snapshot()["state"] == BREAKER_CLOSED
            status, body = app.handle_wire("search", dict(request))
            assert status == 200 and not body["partial"]

    def test_health_endpoint_surfaces_breakers_and_hedging(self, setup):
        comp, truth = setup
        with make_topology(comp) as topo:
            app = ApiApp(topo.router)
            status, body = app.handle_wire("health", None)
            assert status == 200
            shards = body["shards"]
            assert set(shards["nodes"]) == set(SHARD_IDS)
            for snap in shards["nodes"].values():
                assert snap["breaker"]["state"] == BREAKER_CLOSED
                assert "opens" in snap["breaker"]
            assert "fired" in shards["hedging"]
            assert shards["deadline_exceeded"] == 0
