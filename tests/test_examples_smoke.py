"""Smoke tests: every shipped example must run end-to-end.

Examples are deliverables, not decoration — these tests execute each one
in a subprocess with the repo's interpreter and assert a clean exit plus
a recognizable success marker in its output.  Artifacts are written into
a temp copy of the examples dir? No — the scripts write next to
themselves; we allow that (the files are .gitignore-grade outputs) but
assert they exist afterwards where applicable.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def _example_env() -> dict[str, str]:
    """Subprocess env with ``src`` on PYTHONPATH so examples import repro.

    The test process may itself be running off an installed package; the
    examples must work from a bare checkout either way.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else str(SRC_DIR) + os.pathsep + existing
    )
    return env

CASES = [
    ("quickstart.py", "wrote", 120),
    ("stress_response_case_study.py", "workflow cost", 240),
    ("spell_search.py", "SPELL finds co-expressed genes", 240),
    ("golem_exploration.py", "GOLEM local map", 240),
    ("display_wall_rendering.py", "byte-identical", 360),
    ("wall_interaction_macro.py", "combined ForestView+GOLEM", 360),
    ("data_formats_tour.py", "round-tripped GO stack", 120),
]


@pytest.mark.parametrize("script,marker,timeout", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, marker, timeout):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(EXAMPLES_DIR),
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert marker in result.stdout, (
        f"{script} ran but its success marker {marker!r} is absent; "
        f"output tail:\n{result.stdout[-1000:]}"
    )


def test_quickstart_writes_frame():
    out = EXAMPLES_DIR / "quickstart_frame.ppm"
    # quickstart ran in the parametrized test above; its artifact must parse
    if not out.exists():
        pytest.skip("quickstart artifact not present (example test order)")
    from repro.viz import read_ppm

    pixels = read_ppm(out)
    assert pixels.shape == (720, 1280, 3)
