"""Streaming deep-result export: ``/v1/search/export`` end to end.

The acceptance bar (ISSUE 5): the export stream, reassembled, is
**bit-identical** to the concatenation of all ``/v1/search`` pages for
the same request — asserted over a live socket — and failures surface
as a structured error trailer, never a silently truncated stream.
"""

from __future__ import annotations

import hashlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.app import ApiApp
from repro.api.errors import ApiError
from repro.api.http import serve
from repro.api.protocol import ExportChunk, ExportRequest, ExportTrailer
from repro.spell import SpellService


@pytest.fixture(scope="module")
def export_setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    from repro.synth import make_spell_compendium

    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=150,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=23,
    )


@pytest.fixture(scope="module")
def live_export(export_setup):
    compendium, truth = export_setup
    service = SpellService(compendium, n_workers=2)
    app = ApiApp(service)
    server = serve(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", app, truth
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post_json(base: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def read_stream(base: str, payload: dict):
    """POST the export; returns (headers, chunk dicts, trailer dict, raw lines)."""
    request = urllib.request.Request(
        base + "/v1/search/export", data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        headers = dict(resp.headers)
        raw = resp.read()
    lines = [line for line in raw.split(b"\n") if line]
    parsed = [json.loads(line) for line in lines]
    assert parsed, "stream must contain at least a trailer"
    trailer = parsed[-1]
    assert trailer["kind"] == "trailer", "stream must end with a trailer line"
    chunks = parsed[:-1]
    assert all(c["kind"] == "chunk" for c in chunks)
    return headers, chunks, trailer, lines


class TestExportStream:
    def test_export_bit_identical_to_paged(self, live_export):
        """The acceptance bar, over a live socket with real chunked HTTP."""
        base, _, truth = live_export
        genes = list(truth.query_genes)
        size = 7  # deliberately not a divisor of the ranking length

        headers, chunks, trailer, _ = read_stream(
            base, {"genes": genes, "chunk_size": size}
        )
        assert headers["Content-Type"].startswith("application/x-ndjson")
        assert headers.get("Transfer-Encoding") == "chunked"

        paged_rows: list = []
        page = 0
        while True:
            status, body = post_json(
                base, "/v1/search", {"genes": genes, "page": page, "page_size": size}
            )
            assert status == 200
            paged_rows.extend(body["gene_rows"])
            page += 1
            if page >= body["total_pages"]:
                break

        export_rows = [row for c in chunks for row in c["gene_rows"]]
        assert export_rows == paged_rows  # ranks, ids, scores — bit-identical
        assert trailer["status"] == "ok"
        assert trailer["total_rows"] == len(export_rows) == body["total_genes"]
        assert trailer["total_genes"] == body["total_genes"]
        assert trailer["n_chunks"] == len(chunks)
        # chunks are self-describing: offsets tile the ranking exactly
        assert [c["offset"] for c in chunks] == list(
            range(0, len(export_rows), size)
        )
        # dataset ranking rides the trailer, identical to the paged answer
        assert trailer["dataset_rows"] == body["dataset_rows"]

    def test_checksum_covers_chunk_bytes(self, live_export):
        base, _, truth = live_export
        _, _, trailer, lines = read_stream(
            base, {"genes": list(truth.query_genes), "chunk_size": 11}
        )
        digest = hashlib.sha256()
        for line in lines[:-1]:
            digest.update(line + b"\n")
        assert trailer["checksum"] == f"sha256:{digest.hexdigest()}"

    def test_top_k_caps_export(self, live_export):
        base, _, truth = live_export
        _, chunks, trailer, _ = read_stream(
            base, {"genes": list(truth.query_genes), "top_k": 10, "chunk_size": 4}
        )
        rows = [row for c in chunks for row in c["gene_rows"]]
        assert len(rows) == 10
        assert trailer["total_rows"] == 10
        assert trailer["total_genes"] >= 10  # full candidate count still reported
        # the capped export is the head of the uncapped one
        _, full_chunks, _, _ = read_stream(
            base, {"genes": list(truth.query_genes), "chunk_size": 4}
        )
        full_rows = [row for c in full_chunks for row in c["gene_rows"]]
        assert rows == full_rows[:10]

    def test_single_chunk_when_size_exceeds_ranking(self, live_export):
        base, _, truth = live_export
        _, chunks, trailer, _ = read_stream(
            base, {"genes": list(truth.query_genes), "chunk_size": 1_000_000}
        )
        assert len(chunks) == 1 and chunks[0]["offset"] == 0
        assert trailer["n_chunks"] == 1

    def test_pre_stream_errors_are_plain_json(self, live_export):
        """Failures before streaming (bad query) answer with an ordinary
        error status, not a 200 + error trailer."""
        base, _, _ = live_export
        status, body = post_json(
            base, "/v1/search/export", {"genes": ["NOT_A_GENE"]}
        )
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_GENE"
        status, body = post_json(
            base, "/v1/search/export", {"genes": [], "chunk_size": 5}
        )
        assert status == 400
        assert body["error"]["code"] == "INVALID_QUERY"
        status, body = post_json(
            base, "/v1/search/export", {"genes": ["A"], "chunk_size": 0}
        )
        assert status == 400
        assert body["error"]["code"] == "INVALID_REQUEST"

    def test_export_counts_in_health(self, live_export):
        base, _, truth = live_export
        read_stream(base, {"genes": list(truth.query_genes), "chunk_size": 50})
        with urllib.request.urlopen(base + "/v1/health", timeout=30) as resp:
            health = json.loads(resp.read())
        stats = health["endpoints"]["search/export"]
        assert stats["count"] >= 1
        assert health["endpoints"]["search/export"]["count"] >= stats["errors"]

    def test_unknown_endpoint_listing_includes_export(self, live_export):
        base, _, _ = live_export
        status, body = post_json(base, "/v1/nope", {})
        assert status == 404
        assert "/v1/search/export" in body["error"]["details"]["endpoints"]


class TestMidStreamFailure:
    def _exploding_app(self, export_setup, n_good_chunks: int = 1):
        """An app whose cursor yields ``n_good_chunks`` then blows up."""
        compendium, truth = export_setup
        service = SpellService(compendium)
        real_iter = service.iter_result

        def exploding(request, **kwargs):
            cursor = real_iter(request, **kwargs)

            def walk():
                for i, item in enumerate(cursor):
                    if i >= n_good_chunks:
                        raise RuntimeError("disk on fire")
                    yield item

            return walk()

        service.iter_result = exploding
        return ApiApp(service), truth

    def test_error_trailer_not_truncation(self, export_setup):
        app, truth = self._exploding_app(export_setup, n_good_chunks=2)
        lines = list(
            app.export({"genes": list(truth.query_genes), "chunk_size": 5})
        )
        parsed = [json.loads(line) for line in lines]
        assert [p["kind"] for p in parsed] == ["chunk", "chunk", "trailer"]
        trailer = parsed[-1]
        assert trailer["status"] == "error"
        assert trailer["error"]["code"] == "INTERNAL"
        assert trailer["n_chunks"] == 2
        # the checksum still covers what *was* streamed
        digest = hashlib.sha256()
        for line in lines[:-1]:
            digest.update(line)
        assert trailer["checksum"] == f"sha256:{digest.hexdigest()}"
        # and the failed export shows in the endpoint stats
        stats = app.endpoint_stats()["search/export"]
        assert stats["errors"] == 1

    def test_error_trailer_over_live_socket(self, export_setup):
        """The HTTP stream terminates cleanly (valid chunked encoding)
        with the error trailer as its last line."""
        app, truth = self._exploding_app(export_setup, n_good_chunks=1)
        server = serve(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/search/export",
                data=json.dumps(
                    {"genes": list(truth.query_genes), "chunk_size": 5}
                ).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                assert resp.status == 200  # headers were already committed
                raw = resp.read()  # a broken stream would raise here
            lines = [json.loads(line) for line in raw.split(b"\n") if line]
            assert lines[-1]["kind"] == "trailer"
            assert lines[-1]["status"] == "error"
            assert lines[-1]["error"]["code"] == "INTERNAL"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServiceCursor:
    def test_iter_result_matches_respond_rows(self, export_setup):
        """Service-level parity, independent of any transport."""
        from repro.api.protocol import SearchRequest

        compendium, truth = export_setup
        service = SpellService(compendium)
        request = ExportRequest(genes=truth.query_genes, chunk_size=13)
        items = list(service.iter_result(request))
        chunks = [i for i in items if isinstance(i, ExportChunk)]
        trailers = [i for i in items if isinstance(i, ExportTrailer)]
        assert len(trailers) == 1 and trailers[0].status == "ok"
        rows = [row for c in chunks for row in c.gene_rows]
        paged = service.respond(
            SearchRequest(genes=truth.query_genes, page=0, page_size=len(rows))
        )
        assert tuple(rows) == paged.gene_rows

    def test_iter_result_eager_validation(self, export_setup):
        """Invalid queries raise at call time, not at first iteration —
        a transport must be able to answer 4xx before streaming."""
        compendium, _ = export_setup
        service = SpellService(compendium)
        with pytest.raises(Exception):
            service.iter_result(
                ExportRequest(genes=("NOT_A_GENE",), chunk_size=5)
            )

    def test_export_request_validation(self):
        with pytest.raises(ApiError) as exc:
            ExportRequest(genes=())
        assert exc.value.code == "INVALID_QUERY"
        with pytest.raises(ApiError):
            ExportRequest(genes=("A",), chunk_size=0)
        with pytest.raises(ApiError):
            ExportRequest(genes=("A", "A"))
