"""Shared fixtures.

Expensive synthetic collections are session-scoped; tests must not
mutate them (mutating tests build their own instances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.compendium import Compendium
from repro.data.matrix import ExpressionMatrix
from repro.synth import (
    make_annotated_ontology,
    make_case_study,
    make_simple_dataset,
    make_spell_compendium,
    systematic_names,
)


@pytest.fixture
def small_matrix() -> ExpressionMatrix:
    """4 genes x 3 conditions with one missing value, hand-knowable numbers."""
    values = np.array(
        [
            [1.0, -1.0, 0.5],
            [2.0, np.nan, -0.5],
            [0.0, 0.0, 0.0],
            [-1.5, 1.5, 1.0],
        ]
    )
    return ExpressionMatrix(
        values,
        ["G1", "G2", "G3", "G4"],
        ["c1", "c2", "c3"],
        gene_names=["ALPHA", "BETA", "GAMMA", "DELTA"],
    )


@pytest.fixture
def simple_dataset():
    return make_simple_dataset(n_genes=40, n_conditions=10, n_module_genes=10, seed=101)


@pytest.fixture
def clustered_dataset(simple_dataset):
    return simple_dataset.clustered()


@pytest.fixture(scope="session")
def case_study():
    """(compendium, truth) for the §4 scenario — read-only."""
    return make_case_study(n_genes=160, n_conditions=12, n_knockouts=15, seed=42)


@pytest.fixture(scope="session")
def spell_setup():
    """(compendium, truth) with a planted SPELL-findable module — read-only."""
    return make_spell_compendium(
        n_datasets=8,
        n_relevant=3,
        n_genes=150,
        n_conditions=12,
        module_size=15,
        query_size=4,
        seed=7,
    )


@pytest.fixture(scope="session")
def ontology_setup():
    """(ontology, annotations, truth) with one planted enriched term — read-only."""
    genes = systematic_names(80)
    onto, store, truth = make_annotated_ontology(
        genes,
        n_terms=120,
        annotations_per_gene=2.5,
        planted={"planted stress response": genes[:12]},
        seed=13,
    )
    return onto, store, truth, genes


def fresh_compendium(n_datasets: int = 3, seed: int = 0) -> Compendium:
    """Small mutable compendium helper for tests that reorder/add datasets."""
    datasets = [
        make_simple_dataset(name=f"ds{i}", n_genes=30, n_conditions=8, seed=seed + i)
        for i in range(n_datasets)
    ]
    return Compendium(datasets)
