"""End-to-end integration tests: the §4 case study and the Figure 6 pipeline.

These tests run the complete system the way the paper's collaborators
did: load a multi-study compendium into ForestView, select suspicious
gene groups in the nutrient/knockout data, check their behaviour in the
stress datasets, confirm with SPELL and GOLEM, and render the combined
screen — on a laptop surface and across a simulated display wall.
"""

import numpy as np
import pytest

from repro.core import ForestView, GolemAdapter, SpellAdapter, SynchronizationLayer
from repro.ontology import Golem
from repro.stats import pearson_matrix
from repro.synth import make_annotated_ontology, make_case_study
from repro.wall import DisplayWall, WallGeometry


@pytest.fixture(scope="module")
def pipeline():
    comp, truth = make_case_study(n_genes=150, n_conditions=12, n_knockouts=15, seed=77)
    app = ForestView.from_compendium(comp)
    genes = comp.gene_universe()
    onto, store, otruth = make_annotated_ontology(
        genes,
        n_terms=100,
        planted={
            "environmental stress response": list(truth.esr_all),
        },
        seed=78,
    )
    golem = Golem(onto, store)
    return app, truth, golem, otruth


class TestCaseStudyWorkflow:
    """The §4 narrative, step by step, with planted ground truth."""

    def test_full_stress_response_recovery(self, pipeline):
        app, truth, golem, otruth = pipeline

        # Step 1: the collaborator suspects a cluster in the nutrient study.
        # Select genes strongly co-varying in the nutrient data (region pick
        # stands in for the mouse drag: we take the planted ESR rows plus
        # some bystanders, as a human imprecisely would).
        suspicious = list(truth.esr_induced) + list(truth.growth_genes[:3])
        selection = app.select_genes(suspicious, source="nutrient-cluster")
        assert len(selection) == len(suspicious)

        # Step 2: synchronized views show the same genes in every dataset.
        views = app.zoom_views()
        assert SynchronizationLayer.rows_aligned(views)
        assert len(views) == len(app.compendium)

        # Step 3: the horizontal scan — in the stress datasets, the ESR rows
        # correlate strongly with each other while the growth bystanders
        # do not correlate with them.
        stress_view = next(
            v for v in views if v.pane_name == truth.stress_dataset_names[0]
        )
        corr = pearson_matrix(stress_view.values)
        n_esr = len(truth.esr_induced)
        esr_block = corr[:n_esr, :n_esr]
        iu = np.triu_indices(n_esr, k=1)
        assert np.nanmean(esr_block[iu]) > 0.5
        cross = corr[:n_esr, n_esr:]
        assert abs(np.nanmean(cross)) < 0.4

        # Step 4: SPELL confirms the stress datasets are the most relevant
        # context for the ESR genes.
        spell = SpellAdapter(app)
        result = spell.query(list(truth.esr_induced[:4]), top_n=15)
        stress_set = set(truth.stress_dataset_names)
        top3 = set(result.top_datasets(3))
        assert len(top3 & (stress_set | {truth.nutrient_dataset_name,
                                         truth.knockout_dataset_name})) == 3
        # datasets were reordered in the display accordingly
        assert app.compendium.names[:3] == result.dataset_ranking()[:3]

        # Step 5: GOLEM confirms the selection is enriched for the planted
        # stress-response term.
        app.select_genes(list(truth.esr_induced), source="refined")
        golem_adapter = GolemAdapter(app, golem)
        report = golem_adapter.enrich_selection()
        planted_id = next(iter(otruth.planted_terms))
        assert report.term(planted_id).significant

        # Step 6: export the confirmed gene list for the lab.
        text = app.export_gene_list_text()
        for gene in truth.esr_induced:
            assert gene in text

    def test_sick_knockouts_share_esr_signature(self, pipeline):
        """The paper's conclusion: knockout signatures superseded by ESR."""
        app, truth, _, _ = pipeline
        ko = app.compendium[truth.knockout_dataset_name]
        cond_idx = {c: i for i, c in enumerate(ko.matrix.condition_names)}
        esr_rows = ko.matrix.indices_of(list(truth.esr_induced))
        esr_mean = np.nanmean(ko.matrix.values[np.asarray(esr_rows)], axis=0)
        sick_cols = [cond_idx[c] for c in truth.sick_knockouts]
        other_cols = [i for c, i in cond_idx.items() if c not in truth.sick_knockouts]
        assert np.nanmean(esr_mean[sick_cols]) > np.nanmean(esr_mean[other_cols]) + 1.0

    def test_one_instance_replaces_dozen(self, pipeline):
        """§4: 'over a dozen independent instances ... cut and paste' vs one
        ForestView.  Structural check: one app handles all datasets with a
        single selection operation."""
        app, truth, _, _ = pipeline
        assert len(app.compendium) >= 5
        app.select_genes(list(truth.esr_induced), source="single-op")
        views = app.zoom_views()
        # one selection op produced aligned content for every dataset
        assert len(views) == len(app.compendium)
        assert all(v.gene_ids == views[0].gene_ids for v in views)


class TestFigure6Pipeline:
    """SPELL -> ForestView -> GOLEM, rendered to one frame (Figure 6)."""

    def test_combined_screen_renders_on_wall(self, pipeline):
        app, truth, golem, _ = pipeline
        spell = SpellAdapter(app)
        spell.query(list(truth.esr_induced[:4]), top_n=12)
        golem_adapter = GolemAdapter(app, golem)
        golem_adapter.enrich_selection()
        lm = golem_adapter.map_for_top_term()
        assert len(lm) >= 1

        geo = WallGeometry(rows=2, cols=3, tile_width=220, tile_height=160)
        wall = DisplayWall(geo, n_nodes=4, schedule="dynamic")
        frame = app.render_on_wall(wall)
        ref = app.display_list(geo.canvas_width, geo.canvas_height).render_full()
        assert np.array_equal(frame.pixels, ref)
        assert frame.metrics.parallel_speedup() > 1.0

    def test_wall_failure_does_not_corrupt_frame(self, pipeline):
        app, truth, _, _ = pipeline
        app.select_genes(list(truth.esr_induced), source="t")
        geo = WallGeometry(rows=2, cols=2, tile_width=200, tile_height=150)
        wall = DisplayWall(geo, n_nodes=3, schedule="workstealing")
        healthy = wall.render(app.display_list(geo.canvas_width, geo.canvas_height))
        degraded = wall.render(
            app.display_list(geo.canvas_width, geo.canvas_height), fail_nodes={1}
        )
        assert np.array_equal(healthy.pixels, degraded.pixels)

    def test_session_survives_full_pipeline(self, pipeline, tmp_path):
        from repro.core import load_session, save_session
        from repro.synth import make_case_study

        app, truth, _, _ = pipeline
        app.select_genes(list(truth.esr_induced[:5]), source="pipeline")
        path = save_session(app, tmp_path / "pipeline.json")

        comp2, _ = make_case_study(n_genes=150, n_conditions=12, n_knockouts=15, seed=77)
        app2 = ForestView.from_compendium(comp2)
        load_session(app2, path)
        assert app2.selection.genes == app.selection.genes
        # both apps render identical frames from identical state
        assert np.array_equal(app.render(700, 400), app2.render(700, 400))
