"""Tests for repro.ontology: DAG, OBO, annotations, enrichment, GOLEM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology import (
    GeneOntology,
    Golem,
    Term,
    TermAnnotations,
    enrich,
    format_obo,
    layered_layout,
    parse_obo,
)
from repro.synth import make_ontology, systematic_names
from repro.util.errors import DataFormatError, OntologyError, ValidationError


def diamond_ontology() -> GeneOntology:
    """root -> {a, b} -> d (diamond) plus leaf c under a."""
    return GeneOntology(
        [
            Term("GO:1", "root"),
            Term("GO:2", "a", parents=("GO:1",)),
            Term("GO:3", "b", parents=("GO:1",)),
            Term("GO:4", "d", parents=("GO:2", "GO:3")),
            Term("GO:5", "c", parents=("GO:2",)),
        ]
    )


class TestDag:
    def test_basic_structure(self):
        onto = diamond_ontology()
        assert len(onto) == 5
        assert onto.roots() == ["GO:1"]
        assert set(onto.leaves()) == {"GO:4", "GO:5"}
        assert onto.children("GO:2") == ["GO:4", "GO:5"]
        assert onto.parents("GO:4") == ["GO:2", "GO:3"]

    def test_ancestors_descendants(self):
        onto = diamond_ontology()
        assert onto.ancestors("GO:4") == frozenset({"GO:1", "GO:2", "GO:3"})
        assert onto.descendants("GO:1") == frozenset({"GO:2", "GO:3", "GO:4", "GO:5"})
        assert onto.ancestors("GO:1") == frozenset()
        assert onto.descendants("GO:4") == frozenset()

    def test_depth(self):
        onto = diamond_ontology()
        assert onto.depth("GO:1") == 0
        assert onto.depth("GO:2") == 1
        assert onto.depth("GO:4") == 2

    def test_topological_order(self):
        onto = diamond_ontology()
        order = onto.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for term in onto:
            for parent in term.parents:
                assert pos[parent] < pos[term.term_id]

    def test_cycle_rejected(self):
        with pytest.raises(OntologyError, match="cycle"):
            GeneOntology(
                [
                    Term("GO:1", "x", parents=("GO:2",)),
                    Term("GO:2", "y", parents=("GO:1",)),
                ]
            )

    def test_unknown_parent_rejected(self):
        with pytest.raises(OntologyError, match="unknown parent"):
            GeneOntology([Term("GO:1", "x", parents=("GO:99",))])

    def test_duplicate_id_rejected(self):
        with pytest.raises(OntologyError, match="duplicate"):
            GeneOntology([Term("GO:1"), Term("GO:1")])

    def test_neighborhood(self):
        onto = diamond_ontology()
        nodes, edges = onto.neighborhood("GO:2", up=1, down=1)
        assert nodes == {"GO:1", "GO:2", "GO:4", "GO:5"}
        assert ("GO:2", "GO:1") in edges
        assert ("GO:4", "GO:2") in edges
        # edge to GO:3 excluded: GO:3 not in the neighbourhood
        assert all(parent != "GO:3" for _, parent in edges)

    def test_neighborhood_validation(self):
        with pytest.raises(OntologyError):
            diamond_ontology().neighborhood("GO:1", up=-1)

    def test_to_networkx(self):
        g = diamond_ontology().to_networkx()
        assert g.number_of_nodes() == 5
        assert g.has_edge("GO:4", "GO:2")


class TestObo:
    def test_round_trip(self):
        onto = diamond_ontology()
        again = parse_obo(format_obo(onto))
        assert set(again.term_ids()) == set(onto.term_ids())
        for tid in onto.term_ids():
            assert set(again.term(tid).parents) == set(onto.term(tid).parents)
            assert again.term(tid).name == onto.term(tid).name

    def test_round_trip_generated(self):
        onto = make_ontology(n_terms=60, seed=1)
        again = parse_obo(format_obo(onto))
        assert len(again) == len(onto)

    def test_parse_skips_obsolete_by_default(self):
        text = (
            "format-version: 1.2\n\n[Term]\nid: GO:1\nname: root\n\n"
            "[Term]\nid: GO:2\nname: dead\nis_obsolete: true\n\n"
        )
        onto = parse_obo(text)
        assert "GO:2" not in onto
        kept = parse_obo(text, keep_obsolete=True)
        assert "GO:2" in kept

    def test_parse_ignores_comments_and_unknown_tags(self):
        text = (
            "! comment\n[Term]\nid: GO:1\nname: root\nxref: DB:123\n"
            "synonym: \"thing\" EXACT []\n\n"
        )
        onto = parse_obo(text)
        assert onto.term("GO:1").name == "root"

    def test_parse_is_a_with_comment_suffix(self):
        text = "[Term]\nid: GO:1\nname: r\n\n[Term]\nid: GO:2\nname: c\nis_a: GO:1 ! r\n\n"
        onto = parse_obo(text)
        assert onto.term("GO:2").parents == ("GO:1",)

    def test_parse_def_quotes(self):
        text = '[Term]\nid: GO:1\nname: r\ndef: "does a thing" [PMID:1]\n\n'
        assert parse_obo(text).term("GO:1").definition == "does a thing"

    def test_empty_raises(self):
        with pytest.raises(DataFormatError):
            parse_obo("format-version: 1.2\n")

    def test_stanza_missing_id_raises(self):
        with pytest.raises(DataFormatError, match="missing id"):
            parse_obo("[Term]\nname: x\n\n")


class TestAnnotations:
    def test_annotate_and_lookup(self):
        onto = diamond_ontology()
        store = TermAnnotations(onto)
        store.annotate("g1", "GO:4")
        store.annotate("g2", "GO:5")
        assert store.terms_for("g1") == frozenset({"GO:4"})
        assert store.genes_for("GO:4") == frozenset({"g1"})
        assert store.genes_for("GO:1") == frozenset()
        assert len(store) == 2
        assert store.n_annotations() == 2

    def test_unknown_term_rejected(self):
        store = TermAnnotations(diamond_ontology())
        with pytest.raises(OntologyError):
            store.annotate("g1", "GO:99")

    def test_propagation_true_path(self):
        onto = diamond_ontology()
        store = TermAnnotations(onto)
        store.annotate("g1", "GO:4")
        prop = store.propagated()
        # g1 reaches both diamond parents and the root
        assert prop.terms_for("g1") == frozenset({"GO:4", "GO:3", "GO:2", "GO:1"})
        assert prop.genes_for("GO:1") == frozenset({"g1"})
        # original store untouched
        assert store.terms_for("g1") == frozenset({"GO:4"})

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_propagation_monotone_property(self, seed):
        """After propagation every term's gene set contains each child's."""
        rng = np.random.default_rng(seed)
        onto = make_ontology(n_terms=40, seed=seed)
        store = TermAnnotations(onto)
        genes = systematic_names(15)
        term_ids = onto.term_ids()
        for g in genes:
            for t in rng.choice(term_ids, size=2, replace=False):
                store.annotate(g, str(t))
        prop = store.propagated()
        for tid in onto.term_ids():
            parent_genes = prop.genes_for(tid)
            for child in onto.children(tid):
                assert prop.genes_for(child) <= parent_genes

    def test_from_mapping(self):
        onto = diamond_ontology()
        store = TermAnnotations.from_mapping(onto, {"g1": ["GO:4", "GO:5"]})
        assert store.terms_for("g1") == frozenset({"GO:4", "GO:5"})


class TestEnrichment:
    def test_hand_computed_example(self):
        """Universe 20 genes, term annotates 5; select 5 genes, 4 annotated."""
        onto = GeneOntology([Term("GO:1", "root"), Term("GO:2", "t", parents=("GO:1",))])
        store = TermAnnotations(onto)
        genes = [f"g{i}" for i in range(20)]
        for g in genes:
            store.annotate(g, "GO:1")  # universe membership via root
        for g in genes[:5]:
            store.annotate(g, "GO:2")
        selection = genes[:4] + [genes[10]]
        report = enrich(store, selection, correction="bonferroni")
        t = report.term("GO:2")
        assert t.n_selected_annotated == 4
        assert t.n_universe_annotated == 5
        assert t.n_selected == 5 and t.n_universe == 20
        from scipy.stats import hypergeom

        assert t.pvalue == pytest.approx(hypergeom.sf(3, 20, 5, 5), rel=1e-9)
        assert t.fold_enrichment == pytest.approx(4 / (5 * 5 / 20))

    def test_planted_term_recovered(self, ontology_setup):
        onto, store, truth, genes = ontology_setup
        golem = Golem(onto, store)
        report = golem.enrich_selection(genes[:12])
        planted_id = next(iter(truth.planted_terms))
        top_ids = [r.term_id for r in report.results[:3]]
        assert planted_id in top_ids
        assert report.term(planted_id).significant

    def test_random_selection_mostly_insignificant(self, ontology_setup):
        onto, store, _, genes = ontology_setup
        rng = np.random.default_rng(0)
        random_sel = list(rng.choice(genes, size=12, replace=False))
        report = enrich(store, random_sel, alpha=0.01)
        assert len(report.significant_terms()) <= 3

    def test_empty_selection_raises(self, ontology_setup):
        onto, store, _, genes = ontology_setup
        with pytest.raises(ValidationError):
            enrich(store, ["NOT_A_GENE"])

    def test_min_term_size_filters(self, ontology_setup):
        onto, store, _, genes = ontology_setup
        small = enrich(store, genes[:10], min_term_size=1)
        large = enrich(store, genes[:10], min_term_size=10)
        assert len(large) <= len(small)

    def test_unknown_correction(self, ontology_setup):
        onto, store, _, genes = ontology_setup
        with pytest.raises(ValidationError):
            enrich(store, genes[:5], correction="holm")


class TestLayout:
    def test_positions_normalized_and_layered(self):
        onto = diamond_ontology()
        nodes, edges = onto.neighborhood("GO:4", up=2, down=0)
        layers = {"GO:4": 0, "GO:2": -1, "GO:3": -1, "GO:1": -2}
        pos = layered_layout(nodes, edges, layers)
        assert set(pos) == nodes
        for p in pos.values():
            assert 0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0
        # root drawn above focus
        assert pos["GO:1"].y < pos["GO:4"].y

    def test_bad_layer_direction_rejected(self):
        with pytest.raises(OntologyError):
            layered_layout({"a", "b"}, [("a", "b")], {"a": 0, "b": 0})

    def test_missing_layer_rejected(self):
        with pytest.raises(OntologyError):
            layered_layout({"a", "b"}, [], {"a": 0})

    def test_empty(self):
        assert layered_layout(set(), [], {}) == {}


class TestGolem:
    def test_local_map_contents(self, ontology_setup):
        onto, store, truth, genes = ontology_setup
        golem = Golem(onto, store)
        focus = next(iter(truth.planted_terms))
        lm = golem.local_map(focus, up=2, down=1)
        assert lm.focus == focus
        assert focus in lm.term_ids()
        focus_node = lm.node(focus)
        assert focus_node.layer == 0
        assert focus_node.n_direct == 12

    def test_map_overlays_enrichment(self, ontology_setup):
        onto, store, truth, genes = ontology_setup
        golem = Golem(onto, store)
        golem.enrich_selection(genes[:12])
        lm = golem.most_enriched_map()
        assert any(n.significant for n in lm.nodes)
        assert lm.node(lm.focus).pvalue is not None

    def test_expand_refocuses(self, ontology_setup):
        onto, store, truth, genes = ontology_setup
        golem = Golem(onto, store)
        focus = next(iter(truth.planted_terms))
        lm = golem.local_map(focus, up=1, down=0)
        parent = onto.parents(focus)[0]
        lm2 = golem.expand(lm, parent)
        assert lm2.focus == parent
        with pytest.raises(KeyError):
            golem.expand(lm, "GO:0000001") if "GO:0000001" not in lm.term_ids() else None

    def test_most_enriched_requires_report(self, ontology_setup):
        onto, store, _, _ = ontology_setup
        golem = Golem(onto, store)
        with pytest.raises(OntologyError):
            golem.most_enriched_map()

    def test_mismatched_ontology_rejected(self, ontology_setup):
        onto, store, _, _ = ontology_setup
        other = diamond_ontology()
        with pytest.raises(OntologyError):
            Golem(other, store)

    def test_propagated_counts_on_map(self, ontology_setup):
        onto, store, truth, _ = ontology_setup
        golem = Golem(onto, store)
        focus = next(iter(truth.planted_terms))
        lm = golem.local_map(focus, up=1, down=0)
        for node in lm.nodes:
            assert node.n_propagated >= node.n_direct
