"""Tests for ForestView frame construction details (core.rendering)."""

import numpy as np
import pytest

from repro.core import ForestView
from repro.core.rendering import FrameStyle, _fit_text, build_display_list
from repro.synth import make_case_study
from repro.util.errors import RenderError
from repro.viz import HeatmapCmd, RectCmd, TextCmd, text_width


@pytest.fixture(scope="module")
def app_and_truth():
    comp, truth = make_case_study(n_genes=100, n_conditions=10, n_knockouts=8, seed=81)
    return ForestView.from_compendium(comp, cluster_genes=True), truth


def commands_of(dl, kind):
    return [c for c in dl.commands if isinstance(c, kind)]


class TestFrameConstruction:
    def test_one_heatmap_per_pane_without_selection(self, app_and_truth):
        app, _ = app_and_truth
        app.clear_selection()
        dl = app.display_list(1200, 600)
        heatmaps = commands_of(dl, HeatmapCmd)
        # global view heatmap per pane; zoom views show the placeholder
        assert len(heatmaps) == len(app.panes)

    def test_two_heatmaps_per_pane_with_selection(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced), source="t")
        dl = app.display_list(1200, 600)
        heatmaps = commands_of(dl, HeatmapCmd)
        assert len(heatmaps) == 2 * len(app.panes)

    def test_highlight_marks_present_and_colored(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced), source="t")
        dl = app.display_list(1200, 600)
        marks = [
            c for c in commands_of(dl, RectCmd) if c.color == FrameStyle.highlight_color
        ]
        expected = sum(
            len(p.highlight_rows(app.selection)) for p in app.panes
        )
        assert len(marks) == expected > 0

    def test_titles_and_status_text(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced[:5]), source="mysource")
        dl = app.display_list(1200, 600)
        texts = [c.text for c in commands_of(dl, TextCmd)]
        for name in app.compendium.names:
            assert any(name.upper().startswith(t[:8]) for t in texts if t)
        assert any("5 GENES SELECTED" in t for t in texts)
        assert any("SYNC=ON" in t for t in texts)

    def test_status_reflects_sync_off(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced[:5]), source="t")
        app.set_synchronized(False)
        dl = app.display_list(1200, 600)
        texts = [c.text for c in commands_of(dl, TextCmd)]
        assert any("SYNC=OFF" in t for t in texts)
        app.set_synchronized(True)

    def test_every_command_within_canvas(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced), source="t")
        dl = app.display_list(900, 500)
        for cmd in dl.commands:
            x, y, w, h = cmd.bbox()
            assert x >= 0 and y >= 0
            assert x + w <= 900 + 1 and y + h <= 500 + 1

    def test_zoom_labels_appear_when_rows_are_tall(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced[:4]), source="t")  # few rows = tall
        dl = app.display_list(1400, 800)
        labels = [
            c.text for c in commands_of(dl, TextCmd)
            if c.text and not c.text.startswith(("HEAT", "OXID", "OSMO", "NUTR", "KNOC"))
            and "SYNC" not in c.text
        ]
        annotations = app.panes[0].dataset.annotations
        expected_names = {
            (annotations.get(g, "NAME", g) or g).upper() for g in truth.esr_induced[:4]
        }
        rendered = set(labels)
        assert expected_names & rendered

    def test_dendrogram_strip_toggle(self, app_and_truth):
        app, truth = app_and_truth
        from repro.viz import LineCmd

        app.select_genes(list(truth.esr_induced), source="t")
        app.set_preferences(None, show_gene_tree=True)
        with_trees = len(commands_of(app.display_list(1200, 600), LineCmd))
        app.set_preferences(None, show_gene_tree=False)
        without = len(commands_of(app.display_list(1200, 600), LineCmd))
        app.set_preferences(None, show_gene_tree=True)
        assert with_trees > without

    def test_global_fraction_moves_split(self, app_and_truth):
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced), source="t")
        name = app.compendium.names[0]
        app.set_preferences(name, global_fraction=0.2)
        dl_small = app.display_list(1200, 600)
        app.set_preferences(name, global_fraction=0.8)
        dl_big = app.display_list(1200, 600)
        app.set_preferences(name, global_fraction=0.45)

        def first_global_heatmap_height(dl):
            return commands_of(dl, HeatmapCmd)[0].h

        assert first_global_heatmap_height(dl_big) > first_global_heatmap_height(dl_small)

    def test_too_small_canvas_raises(self, app_and_truth):
        app, _ = app_and_truth
        with pytest.raises(RenderError):
            app.display_list(200, 60)

    def test_empty_pane_list_rejected(self, app_and_truth):
        app, _ = app_and_truth
        with pytest.raises(RenderError):
            build_display_list([], None, app.sync_layer, width=800, height=400)


class TestFitText:
    def test_fit_text_truncates_to_width(self):
        text = "ABCDEFGHIJKLMNOP"
        fitted = _fit_text(text, 30)
        assert text_width(fitted) <= 30
        assert text.startswith(fitted)

    def test_fit_text_zero_width(self):
        assert _fit_text("ABC", 0) == ""

    def test_fit_text_fits_untouched(self):
        assert _fit_text("AB", 100) == "AB"


class TestViewportWindowing:
    def test_zoomed_viewport_limits_rendered_rows(self, app_and_truth):
        """With the shared viewport zoomed to k rows, the zoom heatmap
        must contain exactly k rows of data."""
        app, truth = app_and_truth
        app.select_genes(list(truth.esr_induced), source="t")
        app.sync_layer.shared_viewport.set_zoom(3)
        dl = app.display_list(1200, 600)
        zoom_heatmaps = commands_of(dl, HeatmapCmd)[1::2]  # global, zoom alternate
        for cmd in zoom_heatmaps:
            assert cmd.values.shape[0] == 3
        # scrolling shifts which rows appear
        first_before = zoom_heatmaps[0].values[0].copy()
        app.sync_layer.shared_viewport.scroll_by(2)
        dl2 = app.display_list(1200, 600)
        first_after = commands_of(dl2, HeatmapCmd)[1].values[0]
        assert not np.allclose(first_before, first_after, equal_nan=True)
        app.sync_layer.shared_viewport.scroll_to(0)
        app.sync_layer.shared_viewport.set_zoom(len(truth.esr_induced))
