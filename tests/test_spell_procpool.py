"""Tests for the fused-arena scoring path and multi-process batch serving.

Covers the PR-4 serving spine end to end: the shard arena + scratch pool
under ``SpellIndex.search``, the batched ``search_batch`` kernel's
bit-identity oracle, the process pool over the mmap store (including
stale-worker resync and fallback), batch consistency across a
copy-on-write index swap, and the result cache's admission policy as
surfaced through ``/v1/health``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.app import ApiApp
from repro.api.protocol import BatchSearchRequest, SearchRequest
from repro.data import Compendium
from repro.spell import (
    BatchQuery,
    IndexStore,
    IndexWorkerPool,
    QueryCache,
    ScoreScratch,
    SpellIndex,
    SpellService,
    WorkerPoolError,
)
from repro.synth import make_spell_compendium
from repro.util import LruCache
from repro.util.errors import SearchError


@pytest.fixture()
def setup():
    """A compendium small enough to mutate freely in every test."""
    return make_spell_compendium(
        n_datasets=8,
        n_relevant=3,
        n_genes=150,
        n_conditions=10,
        module_size=14,
        query_size=3,
        seed=41,
    )


def _queries(comp, truth, n=8):
    universe = comp.gene_universe()
    qs = [list(truth.query_genes)]
    for i in range(n - 1):
        qs.append(
            [universe[(5 * i) % len(universe)], universe[(5 * i + 2) % len(universe)]]
        )
    return qs


def _rows(result):
    return [(g.gene_id, g.score, g.n_datasets) for g in result.genes]


def _weights(result):
    return [(d.name, d.weight, d.n_query_present) for d in result.datasets]


# -------------------------------------------------------------------- arena
class TestShardArena:
    def test_inram_build_fuses_into_one_buffer(self, setup):
        comp, _ = setup
        index = SpellIndex.build(comp)
        arena = index._arena
        assert arena.fused
        assert len(arena) == len(comp)
        # every view aliases the single flat buffer and preserves values
        for entry, view in zip(index._entries, arena.views):
            assert view.base is arena._flat or view.base is arena._flat.base
            assert entry.normalized is view
        # offsets tile the buffer contiguously
        sizes = [v.size for v in arena.views]
        assert arena.offsets == [sum(sizes[:i]) for i in range(len(sizes))]

    def test_mmap_load_stays_zero_copy(self, setup, tmp_path):
        comp, truth = setup
        built = SpellIndex.build(comp)
        IndexStore.save(built, tmp_path)
        loaded = IndexStore.load(tmp_path, mmap=True)
        assert not loaded._arena.fused  # fusing would fault in every page
        assert any(isinstance(v, np.memmap) for v in loaded._arena.views)
        q = list(truth.query_genes)
        assert _rows(loaded.search(q)) == _rows(built.search(q))

    def test_incremental_add_keeps_views_parallel(self, setup):
        comp, truth = setup
        datasets = list(comp)
        index = SpellIndex.build(Compendium(datasets[:-1]))
        index.add_dataset(datasets[-1])
        assert len(index._arena) == len(index._entries)
        fresh = SpellIndex.build(comp)
        q = list(truth.query_genes)
        assert _rows(index.search(q)) == _rows(fresh.search(q))
        index.remove_dataset(datasets[0].name)
        assert len(index._arena) == len(index._entries)
        shrunk = SpellIndex.build(Compendium(datasets[1:]))
        assert _rows(index.search(q)) == _rows(shrunk.search(q))

    def test_scratch_reuses_arrays_and_rezeroes(self):
        scratch = ScoreScratch()
        totals, mass, counts = scratch.arrays(16)
        totals[3] = 7.0
        mass[3] = 1.0
        counts[3] = 2
        t2, m2, c2 = scratch.arrays(16)
        assert t2.base is scratch.totals or t2 is scratch.totals
        assert not t2.any() and not m2.any() and not c2.any()
        # growth re-allocates, shrink requests reuse
        t3, _, _ = scratch.arrays(32)
        assert t3.shape[0] == 32
        t4, _, _ = scratch.arrays(8)
        assert t4.shape[0] == 8 and not t4.any()

    def test_scratch_pool_recycles_across_threads(self):
        """The free-list must survive thread death (thread-per-request
        transports never reuse threads)."""
        from repro.spell import ScratchPool

        pool = ScratchPool()
        holder: list[ScoreScratch] = []

        def use():
            scratch = pool.acquire()
            scratch.arrays(8)
            pool.release(scratch)
            holder.append(scratch)

        t = threading.Thread(target=use)
        t.start()
        t.join()
        assert pool.acquire() is holder[0]  # a new thread gets the recycled one

    def test_updated_reuses_fused_views_without_recopy(self, setup):
        """Copy-on-write sync must not memcpy the whole index: unchanged
        shards keep their (already-fused) views by identity."""
        comp, truth = setup
        index = SpellIndex.build(comp)
        fused_views = list(index._arena.views)
        comp.remove(comp.names[-1])
        new_index = index.updated(comp)
        assert not new_index._arena.fused  # reuse, not a fresh O(bytes) copy
        for view, old in zip(new_index._arena.views, fused_views):
            assert view is old
        q = list(truth.query_genes)
        fresh = SpellIndex.build(comp)
        assert _rows(new_index.search(q)) == _rows(fresh.search(q))

    def test_search_results_do_not_alias_scratch(self, setup):
        """Pooled scratch must never leak into (mutable) results."""
        comp, truth = setup
        index = SpellIndex.build(comp)
        q = list(truth.query_genes)
        first = index.search(q)
        snapshot = first.genes.scores.copy()
        for other in _queries(comp, truth)[1:]:
            index.search(other)
        assert np.array_equal(first.genes.scores, snapshot)


# ------------------------------------------------------------- batched kernel
class TestSearchBatch:
    def test_batch_bit_identical_to_per_query_search(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp)
        queries = _queries(comp, truth)
        specs = [
            BatchQuery(genes=tuple(queries[0])),
            BatchQuery(genes=tuple(queries[1]), top_k=5),
            BatchQuery(genes=tuple(queries[2]), datasets=tuple(comp.names[:4])),
            BatchQuery(genes=tuple(queries[3]), top_k=3,
                       datasets=tuple(comp.names[2:])),
        ] + [BatchQuery(genes=tuple(q)) for q in queries[4:]]
        batch = index.search_batch(specs)
        assert len(batch) == len(specs)
        for spec, got in zip(specs, batch):
            oracle = index.search(
                list(spec.genes), top_k=spec.top_k, datasets=spec.datasets
            )
            assert _rows(got) == _rows(oracle)
            assert _weights(got) == _weights(oracle)
            assert got.total_genes == oracle.total_genes
            assert got.query_used == oracle.query_used
            assert got.query_missing == oracle.query_missing

    def test_batch_float32_matches_per_query(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp, dtype=np.float32)
        queries = _queries(comp, truth, n=4)
        batch = index.search_batch(queries)
        for q, got in zip(queries, batch):
            assert _rows(got) == _rows(index.search(q))

    def test_batch_is_all_or_nothing(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp)
        good = tuple(truth.query_genes)
        with pytest.raises(SearchError):
            index.search_batch([BatchQuery(genes=good), BatchQuery(genes=())])
        with pytest.raises(SearchError):
            index.search_batch(
                [BatchQuery(genes=good), BatchQuery(genes=("nope", "nada"))]
            )
        with pytest.raises(SearchError):
            index.search_batch(
                [BatchQuery(genes=good, datasets=("no-such-dataset",))]
            )

    def test_empty_batch(self, setup):
        comp, _ = setup
        index = SpellIndex.build(comp)
        assert index.search_batch([]) == []


# --------------------------------------------------------- scratch discipline
class TestScratchPoolLeak:
    """Regression: failing queries must not strand pooled scratch buffers.

    A search that raises *after* ``acquire()`` (e.g. a bad ``top_k``
    surfacing during finalization) used to be the leak shape the
    try/finally discipline exists for: every failed query would strand
    one scratch, silently regrowing allocations on the serving path.
    Hammer failing calls and assert the pool's steady state is stable.
    """

    def _steady_state(self, index, query):
        index.search(query)  # populate one scratch in the free-list
        return index._scratch.idle_count()

    def test_failing_search_keeps_pool_stable(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp)
        query = list(truth.query_genes)
        steady = self._steady_state(index, query)
        for _ in range(50):
            with pytest.raises(SearchError):
                # top_k validation fires in _finalize, after acquire()
                index.search(query, top_k=-1)
        assert index._scratch.idle_count() == steady
        # and the pool still serves correct answers afterwards
        assert _rows(index.search(query)) == _rows(SpellIndex.build(comp).search(query))

    def test_failing_batch_keeps_pool_stable(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp)
        query = tuple(truth.query_genes)
        bad_batch = [
            BatchQuery(genes=query),
            # the second member's bad top_k fires after the batch
            # acquired one scratch per member
            BatchQuery(genes=query[:2], top_k=-1),
        ]
        with pytest.raises(SearchError):
            index.search_batch(bad_batch)
        # the first failure parks the batch's scratches in the free-list;
        # repeated failures must recycle those, never strand new ones
        steady = index._scratch.idle_count()
        for _ in range(25):
            with pytest.raises(SearchError):
                index.search_batch(bad_batch)
        assert index._scratch.idle_count() == steady

    def test_pre_acquire_failures_never_touch_pool(self, setup):
        comp, truth = setup
        index = SpellIndex.build(comp)
        steady = self._steady_state(index, list(truth.query_genes))
        for _ in range(25):
            with pytest.raises(SearchError):
                index.search(list(truth.query_genes), datasets=["no-such-dataset"])
            with pytest.raises(SearchError):
                index.search(["totally-unknown-gene"])
        assert index._scratch.idle_count() == steady

    def test_batch_reuses_pooled_scratch(self, setup):
        """The batched kernel draws from (and returns to) the same pool
        as single-query search — no per-batch accumulator allocations."""
        comp, truth = setup
        index = SpellIndex.build(comp)
        queries = _queries(comp, truth, n=6)
        index.search_batch(queries)
        pooled = index._scratch.idle_count()
        assert pooled >= len(queries)  # every member's scratch came back
        index.search_batch(queries)
        assert index._scratch.idle_count() == pooled  # reused, not regrown


# ----------------------------------------------------------- process serving
@pytest.fixture(scope="module")
def proc_service():
    """One spawned 2-process service shared by the pool tests (spawn is
    slow; the pool is exercised, not rebuilt, per test)."""
    comp, truth = make_spell_compendium(
        n_datasets=8,
        n_relevant=3,
        n_genes=150,
        n_conditions=10,
        module_size=14,
        query_size=3,
        seed=42,
    )
    service = SpellService(comp, n_procs=2)
    yield comp, truth, service
    service.close()


def _batch_request(queries, **kw):
    return BatchSearchRequest(
        searches=tuple(SearchRequest(genes=tuple(q), **kw) for q in queries)
    )


class TestProcessPool:
    def test_proc_batch_bit_identical_to_threaded(self, proc_service):
        comp, truth, service = proc_service
        queries = _queries(comp, truth)
        request = _batch_request(queries, page_size=12)
        got = service.respond_batch(request)
        assert service._procpool is not None
        assert got.n_workers == 2
        oracle = SpellService(comp, n_workers=2, cache_size=0)
        expect = oracle.respond_batch(request)
        for a, b in zip(got.results, expect.results):
            assert a.gene_rows == b.gene_rows
            assert a.dataset_rows == b.dataset_rows
            assert a.total_genes == b.total_genes and a.total_pages == b.total_pages

    def test_warm_batch_answered_inline_from_cache(self, proc_service):
        comp, truth, service = proc_service
        queries = _queries(comp, truth)
        request = _batch_request(queries, page_size=12)
        service.respond_batch(request)  # prime
        dispatched_before = service._procpool.batches
        warm = service.respond_batch(request)
        assert warm.cache_hits == len(queries)
        assert service._procpool.batches == dispatched_before  # nothing scattered

    def test_workers_resync_on_version_bump(self, proc_service):
        comp, truth, service = proc_service
        queries = _queries(comp, truth, n=4)
        request = _batch_request(queries, page_size=10, use_cache=False)
        service.respond_batch(request)  # ensure workers hold the current index
        removed = comp[comp.names[-1]]
        comp.remove(removed.name)
        try:
            resyncs_before = service._procpool.resyncs
            got = service.respond_batch(request)
            assert service._procpool.resyncs > resyncs_before
            # post-resync answers are bit-identical to a direct index oracle
            for q, resp in zip(queries, got.results):
                oracle = service._index.search(q, top_k=10)
                assert resp.gene_rows == tuple(
                    (i + 1, g.gene_id, g.score) for i, g in enumerate(oracle.genes[:10])
                )
                assert removed.name not in [row[1] for row in resp.dataset_rows]
        finally:
            comp.add(removed)  # restore for the other module-scoped tests

    def test_member_error_fails_batch_all_or_nothing(self, proc_service):
        comp, truth, service = proc_service
        bad = BatchSearchRequest(
            searches=(
                SearchRequest(genes=tuple(truth.query_genes)),
                SearchRequest(genes=("definitely", "not", "genes")),
            )
        )
        with pytest.raises(SearchError):
            service.respond_batch(bad)
        assert not service._procpool.broken  # user errors must not kill the pool

    def test_broken_pool_respawns_and_recovers(self, setup):
        comp, truth = setup
        service = SpellService(comp, n_procs=2, n_workers=2, cache_size=0)
        try:
            queries = _queries(comp, truth, n=4)
            request = _batch_request(queries, page_size=10)
            service.respond_batch(request)
            first_pool = service._procpool
            first_pool.close()  # kill the workers behind the service's back
            got = service.respond_batch(request)  # must still answer
            # a transient failure heals: a fresh pool served this batch
            assert service._procpool is not first_pool
            assert not service._procpool.broken
            assert service._pool_respawns == 1
            oracle = SpellService(comp, n_workers=1, cache_size=0)
            expect = oracle.respond_batch(request)
            for a, b in zip(got.results, expect.results):
                assert a.gene_rows == b.gene_rows
        finally:
            service.close()

    def test_exhausted_respawn_budget_falls_back_without_double_counting(
        self, setup
    ):
        """Once respawning is pointless the batch is served in-process —
        and the counters (hits/misses/history) move exactly once per
        member, inline hits included."""
        comp, truth = setup
        service = SpellService(comp, n_procs=2, n_workers=2)
        try:
            queries = _queries(comp, truth, n=3)
            hot = queries[0]
            service.search(hot)  # prime one cache entry
            count0 = service.query_count
            hits0 = service.cache_stats()["hits"]
            misses0 = service.cache_stats()["misses"]
            # exhaust the respawn budget, then break the pool
            service.respond_batch(_batch_request([hot], use_cache=False))
            service._procpool.close()
            service._pool_respawns = service.MAX_POOL_RESPAWNS
            request = _batch_request(queries, page_size=10)
            got = service.respond_batch(request)
            assert service._pool_disabled  # budget exhausted, threads from now on
            stats = service.cache_stats()
            assert stats["hits"] - hits0 == 1  # the primed member, once
            assert stats["misses"] - misses0 == len(queries) - 1  # probes, once
            assert service.query_count - count0 == len(queries) + 1
            oracle = SpellService(comp, n_workers=1, cache_size=0)
            expect = oracle.respond_batch(request)
            for a, b in zip(got.results, expect.results):
                assert a.gene_rows == b.gene_rows
        finally:
            service.close()

    def test_environmental_worker_error_becomes_pool_error(self, setup, tmp_path):
        """A worker hitting a broken store (not a bad query) must surface
        as WorkerPoolError so the service falls back instead of failing
        the client's batch."""
        comp, truth = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        with IndexWorkerPool(tmp_path, n_procs=1) as pool:
            # warm the worker onto the current tokens
            pool.run_batch(index.fingerprints(), [BatchQuery(genes=tuple(truth.query_genes))])
            (tmp_path / "manifest.json").unlink()  # store breaks under the worker
            bumped = [(n, "f" * 40) for n, _ in index.fingerprints()]  # force reload
            with pytest.raises(WorkerPoolError):
                pool.run_batch(bumped, [BatchQuery(genes=tuple(truth.query_genes))])

    def test_pool_refuses_unknown_tokens(self, setup, tmp_path):
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        with IndexWorkerPool(tmp_path, n_procs=1) as pool:
            bogus = [("no-such-dataset", "0" * 40)]
            with pytest.raises(WorkerPoolError):
                pool.run_batch(bogus, [BatchQuery(genes=("G1", "G2"))])
            assert not pool.broken  # stale is a state, not a crash

    def test_pool_direct_matches_index(self, setup, tmp_path):
        comp, truth = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        specs = [BatchQuery(genes=tuple(q)) for q in _queries(comp, truth, n=5)]
        with IndexWorkerPool(tmp_path, n_procs=2) as pool:
            results, busy = pool.run_batch(index.fingerprints(), specs)
            assert busy >= 0.0
        assert len(results) == len(specs)
        for spec, got in zip(specs, results):
            assert _rows(got) == _rows(index.search(list(spec.genes)))


# ---------------------------------------------------- consistency under swap
class TestMidSwapConsistency:
    def test_batches_mid_updated_swap_stay_consistent(self, setup):
        """A batch racing a compendium mutation must serve answers from a
        *consistent* index — entirely pre-swap or entirely post-swap per
        query, never a stale mixture (bit-checked against both oracles)."""
        comp, truth = setup
        service = SpellService(comp, n_workers=2)
        queries = _queries(comp, truth, n=4)
        request = _batch_request(queries, page_size=10)
        victim = comp[comp.names[-1]]

        old_index = SpellIndex.build(comp)
        new_index = SpellIndex.build(
            Compendium([ds for ds in comp if ds.name != victim.name])
        )
        valid: dict[str, list] = {}
        for q in queries:
            valid[",".join(q)] = [
                tuple(
                    (i + 1, g.gene_id, g.score)
                    for i, g in enumerate(index.search(q).genes[:10])
                )
                for index in (old_index, new_index)
            ]

        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                response = service.respond_batch(request)
                for q, result in zip(queries, response.results):
                    if result.gene_rows not in valid[",".join(q)]:
                        failures.append(",".join(q))

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            comp.remove(victim.name)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not failures, f"inconsistent mid-swap answers for {set(failures)}"
        # post-swap: the service must now serve the new state exclusively
        final = service.respond_batch(request)
        for q, result in zip(queries, final.results):
            assert result.gene_rows == valid[",".join(q)][1]


# ------------------------------------------------------------ cache admission
class TestCacheAdmission:
    def test_lru_tracks_per_entry_hits(self):
        lru = LruCache(max_entries=4)
        lru.put("a", 1)
        lru.put("b", 2)
        for _ in range(3):
            lru.get("a")
        lru.get("b")
        assert lru.entry_hits("a") == 3 and lru.entry_hits("b") == 1
        assert lru.hottest(1) == [("a", 3)]
        assert lru.stats()["hot_entry_hits"] == 3
        lru.put("c", 3)
        lru.put("d", 4)
        lru.put("e", 5)  # evicts the LRU entry ("a": its last hit predates b's)
        assert lru.entry_hits("a") == 0
        assert lru.stats()["hot_entry_hits"] == 1  # b's count survives

    def test_hottest_tie_break_is_deterministic(self):
        """Equally-hot entries must rank identically regardless of the
        order they entered the dict — /v1/health must not flap."""
        forward = LruCache(max_entries=8)
        backward = LruCache(max_entries=8)
        keys = ["zeta", "alpha", "mid"]
        for k in keys:
            forward.put(k, k)
        for k in reversed(keys):
            backward.put(k, k)
        for k in keys:  # every entry equally hot
            forward.get(k)
            backward.get(k)
        assert forward.hottest(3) == backward.hottest(3)
        # ties order by key repr; higher counts still come first
        forward.get("mid")
        assert forward.hottest(3) == [("mid", 2), ("alpha", 1), ("zeta", 1)]

    def test_put_refresh_resets_entry_hits(self):
        """Refreshing a key installs a new value; its hit count must
        describe the current value, not the stale one it replaced."""
        lru = LruCache(max_entries=4)
        lru.put("a", 1)
        for _ in range(5):
            lru.get("a")
        assert lru.entry_hits("a") == 5
        lru.put("a", 2)  # refresh
        assert lru.entry_hits("a") == 0
        assert lru.stats()["hot_entry_hits"] == 0
        assert lru.hits == 5  # the lifetime aggregate is untouched
        assert lru.get("a") == 2
        assert lru.entry_hits("a") == 1

    def test_min_cost_gates_admission(self):
        cache = QueryCache(max_entries=8, min_cost=100)
        assert not cache.store(1, ["A"], "cheap", cost=10)
        assert cache.lookup(1, ["A"]) is None
        assert cache.store(1, ["B"], "pricey", cost=500)
        assert cache.lookup(1, ["B"]) == "pricey"
        assert cache.store(1, ["C"], "uncosted")  # opt-out is always admitted
        stats = cache.stats()
        assert stats["min_cost"] == 100
        assert stats["admitted"] == 2 and stats["rejected"] == 1

    def test_service_admission_knob(self, setup):
        comp, truth = setup
        q = list(truth.query_genes)
        # threshold above the universe size: nothing is ever admitted
        picky = SpellService(comp, cache_min_cost=10**6)
        picky.search(q)
        picky.search(q)
        stats = picky.cache_stats()
        assert stats["entries"] == 0 and stats["hits"] == 0
        assert stats["rejected"] == 2
        # threshold below it: the second query is a hit
        normal = SpellService(comp, cache_min_cost=10)
        normal.search(q)
        normal.search(q)
        stats = normal.cache_stats()
        assert stats["hits"] == 1 and stats["admitted"] == 1
        assert stats["hot_entry_hits"] == 1

    def test_health_surfaces_admission_and_serving(self, setup):
        comp, truth = setup
        service = SpellService(comp, n_workers=2, cache_min_cost=5)
        app = ApiApp(service)
        status, body = app.handle_wire(
            "search", {"genes": list(truth.query_genes)}
        )
        assert status == 200
        status, body = app.handle_wire("health", None)
        assert status == 200
        cache = body["cache"]
        for key in ("hits", "misses", "admitted", "rejected", "min_cost",
                    "hot_entry_hits"):
            assert key in cache, f"health cache lacks {key}"
        assert cache["min_cost"] == 5 and cache["admitted"] == 1
        serving = body["serving"]
        assert serving["n_workers"] == 2
        assert serving["n_procs"] == 1 and serving["procpool"] is None
