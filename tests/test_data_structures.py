"""Tests for Dataset, Compendium, MergedDatasetInterface, normalize, impute."""

import numpy as np
import pytest

from repro.data import (
    Compendium,
    Dataset,
    ExpressionMatrix,
    MergedDatasetInterface,
    knn_impute,
    log_transform,
    median_center,
    normalize,
    row_mean_impute,
    zscore_normalize,
)
from repro.synth import make_simple_dataset
from repro.util.errors import ValidationError

from tests.conftest import fresh_compendium


class TestDataset:
    def test_name_required(self, small_matrix):
        with pytest.raises(ValidationError):
            Dataset(name="", matrix=small_matrix)

    def test_annotations_backfilled_with_names(self, small_matrix):
        ds = Dataset(name="d", matrix=small_matrix)
        assert ds.annotations.get("G1", "NAME") == "ALPHA"

    def test_tree_leaf_count_validated(self, small_matrix, clustered_dataset):
        with pytest.raises(ValidationError, match="leaves"):
            Dataset(name="d", matrix=small_matrix, gene_tree=clustered_dataset.gene_tree)

    def test_display_order_defaults_to_natural(self, small_matrix):
        ds = Dataset(name="d", matrix=small_matrix)
        assert ds.display_order() == [0, 1, 2, 3]
        assert ds.condition_display_order() == [0, 1, 2]

    def test_clustered_display_order_is_permutation(self, simple_dataset):
        ds = simple_dataset.clustered()
        order = ds.display_order()
        assert sorted(order) == list(range(ds.n_genes))
        assert ds.gene_tree is not None

    def test_clustered_arrays(self, simple_dataset):
        ds = simple_dataset.clustered(cluster_arrays=True)
        assert ds.array_tree is not None
        assert sorted(ds.condition_display_order()) == list(range(ds.n_conditions))

    def test_subset(self, simple_dataset):
        genes = simple_dataset.gene_ids[:5]
        sub = simple_dataset.subset(genes, name="sub")
        assert sub.name == "sub"
        assert sub.gene_ids == genes
        with pytest.raises(ValidationError):
            simple_dataset.subset(["NOT_A_GENE"])

    def test_measurement_count_excludes_missing(self, small_matrix):
        ds = Dataset(name="d", matrix=small_matrix)
        assert ds.measurement_count() == 11  # 12 cells, 1 NaN


class TestCompendium:
    def test_add_lookup_iterate(self):
        comp = fresh_compendium(3)
        assert len(comp) == 3
        assert comp["ds1"].name == "ds1"
        assert comp[0].name == "ds0"
        assert [d.name for d in comp] == ["ds0", "ds1", "ds2"]
        assert "ds2" in comp and "nope" not in comp
        with pytest.raises(KeyError):
            comp["nope"]

    def test_duplicate_name_rejected(self):
        comp = fresh_compendium(1)
        with pytest.raises(ValidationError, match="duplicate"):
            comp.add(
                make_simple_dataset(
                    name="ds0", n_genes=10, n_conditions=4, n_module_genes=4, seed=9
                )
            )

    def test_remove(self):
        comp = fresh_compendium(2)
        removed = comp.remove("ds0")
        assert removed.name == "ds0"
        assert comp.names == ["ds1"]

    def test_reorder_validates_permutation(self):
        comp = fresh_compendium(3)
        comp.reorder(["ds2", "ds0", "ds1"])
        assert comp.names == ["ds2", "ds0", "ds1"]
        with pytest.raises(ValidationError):
            comp.reorder(["ds0", "ds1"])
        with pytest.raises(ValidationError):
            comp.reorder(["ds0", "ds1", "dsX"])

    def test_gene_universe_and_common(self):
        m1 = ExpressionMatrix(np.zeros((2, 2)), ["A", "B"], ["c1", "c2"])
        m2 = ExpressionMatrix(np.zeros((2, 2)), ["B", "C"], ["c1", "c2"])
        comp = Compendium([Dataset(name="x", matrix=m1), Dataset(name="y", matrix=m2)])
        assert comp.gene_universe() == ["A", "B", "C"]
        assert comp.common_genes() == ["B"]
        assert comp.datasets_containing("A") == ["x"]
        assert set(comp.datasets_containing("B")) == {"x", "y"}

    def test_index_of(self):
        comp = fresh_compendium(2)
        assert comp.index_of("ds1") == 1
        with pytest.raises(KeyError):
            comp.index_of("zz")


class TestMergedInterface:
    @pytest.fixture
    def merged_pair(self):
        m1 = ExpressionMatrix(
            np.array([[1.0, 2.0], [3.0, 4.0]]), ["A", "B"], ["c1", "c2"]
        )
        m2 = ExpressionMatrix(
            np.array([[5.0, 6.0, 7.0], [8.0, 9.0, np.nan]]), ["B", "C"], ["d1", "d2", "d3"]
        )
        comp = Compendium([Dataset(name="x", matrix=m1), Dataset(name="y", matrix=m2)])
        return comp, MergedDatasetInterface(comp)

    def test_shape_is_union_and_max(self, merged_pair):
        _, mi = merged_pair
        assert mi.shape == (2, 3, 3)
        assert mi.gene_ids == ["A", "B", "C"]

    def test_empty_compendium_rejected(self):
        with pytest.raises(ValidationError):
            MergedDatasetInterface(Compendium())

    def test_value_lookup(self, merged_pair):
        _, mi = merged_pair
        assert mi.value("x", "A", 0) == 1.0
        assert mi.value("y", "B", 2) == 7.0
        assert np.isnan(mi.value("x", "C", 0))  # gene absent from x
        assert np.isnan(mi.value("x", "A", 2))  # condition beyond x's width
        with pytest.raises(ValidationError):
            mi.value("x", "A", 3)
        with pytest.raises(KeyError):
            mi.value("x", "ZZ", 0)

    def test_gene_slice_cross_dataset_scan(self, merged_pair):
        _, mi = merged_pair
        slab = mi.gene_slice("B")
        assert slab.shape == (2, 3)
        assert slab[0, :2].tolist() == [3.0, 4.0] and np.isnan(slab[0, 2])
        assert slab[1, 0] == 5.0

    def test_dataset_slab_keeps_native_width(self, merged_pair):
        _, mi = merged_pair
        slab = mi.dataset_slab("x", ["C", "A"])
        assert slab.shape == (2, 2)
        assert np.isnan(slab[0]).all()
        assert slab[1].tolist() == [1.0, 2.0]

    def test_presence_matrix(self, merged_pair):
        _, mi = merged_pair
        pm = mi.presence_matrix(["A", "B", "C", "ZZ"])
        assert pm.tolist() == [
            [True, False],
            [True, True],
            [False, True],
            [False, False],
        ]

    def test_dense_cube(self, merged_pair):
        _, mi = merged_pair
        cube = mi.dense()
        assert cube.shape == (2, 3, 3)
        assert cube[0, 0, 0] == 1.0
        assert np.isnan(cube[0, 2]).all()  # gene C absent from x

    def test_export_merged_matrix_provenance_columns(self, merged_pair):
        _, mi = merged_pair
        merged = mi.export_merged_matrix(["B"])
        assert merged.condition_names == ["x:c1", "x:c2", "y:d1", "y:d2", "y:d3"]
        assert merged.values[0, 0] == 3.0 and merged.values[0, 2] == 5.0

    def test_consistency_with_datasets(self, case_study):
        comp, _ = case_study
        mi = MergedDatasetInterface(comp)
        ds = comp[0]
        gene = ds.gene_ids[7]
        assert np.allclose(
            mi.gene_profile(0, gene)[: ds.n_conditions],
            ds.matrix.row(gene),
            equal_nan=True,
        )


class TestNormalize:
    def _flat_dataset(self):
        values = np.array([[1.0, 2.0, 4.0], [8.0, 16.0, 32.0]])
        m = ExpressionMatrix(values, ["A", "B"], ["c1", "c2", "c3"])
        return Dataset(name="d", matrix=m)

    def test_log_transform_base2(self):
        logged = log_transform(self._flat_dataset())
        assert np.allclose(logged.matrix.values[0], [0.0, 1.0, 2.0])

    def test_log_transform_nonpositive_becomes_nan(self):
        m = ExpressionMatrix(np.array([[0.0, -1.0, 4.0]]), ["A"], ["c1", "c2", "c3"])
        logged = log_transform(Dataset(name="d", matrix=m))
        assert np.isnan(logged.matrix.values[0, 0])
        assert np.isnan(logged.matrix.values[0, 1])
        assert logged.matrix.values[0, 2] == 2.0

    def test_log_base_validation(self):
        with pytest.raises(ValidationError):
            log_transform(self._flat_dataset(), base=1.0)

    def test_median_center_rows_have_zero_median(self, simple_dataset):
        centered = median_center(simple_dataset)
        med = np.nanmedian(centered.matrix.values, axis=1)
        assert np.allclose(med, 0.0, atol=1e-12)

    def test_zscore_rows_unit_variance(self, simple_dataset):
        z = zscore_normalize(simple_dataset)
        std = np.nanstd(z.matrix.values, axis=1)
        valid = std > 0
        assert np.allclose(std[valid], 1.0, atol=1e-9)

    def test_pipeline_and_unknown_step(self):
        ds = self._flat_dataset()
        out = normalize(ds, steps=("log", "median_center"))
        assert np.allclose(np.nanmedian(out.matrix.values, axis=1), 0.0)
        with pytest.raises(ValidationError, match="unknown normalization"):
            normalize(ds, steps=("bogus",))

    def test_original_not_mutated(self, simple_dataset):
        before = simple_dataset.matrix.values.copy()
        zscore_normalize(simple_dataset)
        assert np.array_equal(
            simple_dataset.matrix.values, before, equal_nan=True
        )


class TestImpute:
    def test_row_mean_impute(self):
        m = ExpressionMatrix(
            np.array([[1.0, np.nan, 3.0], [np.nan, np.nan, np.nan]]),
            ["A", "B"],
            ["c1", "c2", "c3"],
        )
        filled = row_mean_impute(m)
        assert filled.values[0, 1] == 2.0
        assert np.allclose(filled.values[1], 0.0)  # all-missing row -> zeros
        assert not np.isnan(filled.values).any()

    def test_knn_impute_uses_correlated_neighbours(self):
        rng = np.random.default_rng(8)
        base = rng.normal(size=12)
        # five highly-correlated rows plus noise rows
        rows = [base + rng.normal(0, 0.05, 12) for _ in range(5)]
        rows += [rng.normal(size=12) for _ in range(5)]
        X = np.array(rows)
        true_value = X[0, 4]
        X[0, 4] = np.nan
        m = ExpressionMatrix(
            X, [f"G{i}" for i in range(10)], [f"c{i}" for i in range(12)]
        )
        filled = knn_impute(m, k=4)
        assert filled.values[0, 4] == pytest.approx(true_value, abs=0.25)
        assert not np.isnan(filled.values).any()

    def test_knn_impute_no_missing_is_identity(self, simple_dataset):
        complete = row_mean_impute(simple_dataset.matrix)
        again = knn_impute(complete, k=3)
        assert np.array_equal(again.values, complete.values)

    def test_knn_k_validation(self, small_matrix):
        with pytest.raises(ValidationError):
            knn_impute(small_matrix, k=0)

    def test_knn_always_completes(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(6, 8))
        X[rng.random(X.shape) < 0.4] = np.nan
        m = ExpressionMatrix(X, [f"G{i}" for i in range(6)], [f"c{i}" for i in range(8)])
        assert not np.isnan(knn_impute(m, k=3).values).any()
