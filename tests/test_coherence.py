"""Tests for selection-coherence scoring (§2's "tightness of grouping")."""

import numpy as np
import pytest

from repro.core import ForestView
from repro.stats import coherence_score, coherence_test
from repro.synth import make_case_study
from repro.util.errors import ValidationError


def planted_data(seed=0, n_genes=60, n_cond=15, module=10):
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 0.6, size=(n_genes, n_cond))
    profile = np.sin(np.linspace(0, 2 * np.pi, n_cond)) * 2.0
    data[:module] += profile[None, :]
    return data


class TestCoherenceScore:
    def test_tight_group_scores_high(self):
        data = planted_data()
        tight = coherence_score(data[:10])
        loose = coherence_score(data[30:40])
        assert tight > 0.6
        assert abs(loose) < 0.4

    def test_anticorrelated_pair(self):
        x = np.linspace(0, 1, 10)
        data = np.vstack([x, -x])
        assert coherence_score(data) == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            coherence_score(np.zeros((1, 5)))
        with pytest.raises(ValidationError):
            coherence_score(np.zeros(5))

    def test_all_nan_pairs_gives_nan(self):
        data = np.full((3, 5), np.nan)
        data[0, 0] = 1.0
        assert np.isnan(coherence_score(data))


class TestCoherenceTest:
    def test_planted_module_is_significant(self):
        data = planted_data(seed=1)
        result = coherence_test(data, list(range(10)), n_permutations=100, seed=2)
        assert result.pvalue <= 0.02
        assert result.zscore > 3
        assert result.score > result.null_mean

    def test_random_group_not_significant(self):
        data = planted_data(seed=3)
        rng = np.random.default_rng(4)
        random_rows = rng.choice(np.arange(20, 60), size=10, replace=False)
        result = coherence_test(data, random_rows.tolist(), n_permutations=100, seed=5)
        assert result.pvalue > 0.05

    def test_pvalue_never_zero(self):
        data = planted_data(seed=6)
        result = coherence_test(data, list(range(10)), n_permutations=50, seed=7)
        assert result.pvalue >= 1 / 51

    def test_validation(self):
        data = planted_data()
        with pytest.raises(ValidationError):
            coherence_test(data, [0])  # too few
        with pytest.raises(ValidationError):
            coherence_test(data, [0, 0, 1])  # duplicates
        with pytest.raises(ValidationError):
            coherence_test(data, [0, 999])  # out of range
        with pytest.raises(ValidationError):
            coherence_test(data, [0, 1], n_permutations=0)

    def test_deterministic_given_seed(self):
        data = planted_data(seed=8)
        a = coherence_test(data, list(range(8)), n_permutations=50, seed=9)
        b = coherence_test(data, list(range(8)), n_permutations=50, seed=9)
        assert a == b


class TestAppIntegration:
    def test_esr_selection_is_tight_in_stress_data(self):
        comp, truth = make_case_study(n_genes=150, n_conditions=12, seed=91)
        app = ForestView.from_compendium(comp)
        app.select_genes(list(truth.esr_induced), source="esr")
        result = app.selection_coherence(
            truth.stress_dataset_names[0], n_permutations=100, seed=92
        )
        assert result.pvalue <= 0.02
        assert result.n_genes == len(truth.esr_induced)

    def test_requires_selection_and_enough_genes(self):
        comp, truth = make_case_study(n_genes=100, n_conditions=10, seed=93)
        app = ForestView.from_compendium(comp)
        with pytest.raises(ValidationError):
            app.selection_coherence(comp.names[0])
        app.select_genes([comp[0].gene_ids[0], "NOT_A_GENE"], source="x")
        with pytest.raises(ValidationError, match="fewer than 2"):
            app.selection_coherence(comp.names[0])
