"""Crash-safe tiered index storage: the PR-9 durability contract.

Four guarantees under test, end to end:

* **Integrity** — a flipped byte anywhere in a shard file is detected
  against the manifest sha256, the damaged file is quarantined (never
  served), and the shard is rebuilt bit-identical from its bound
  ``Dataset`` source — or the load refuses with the structured
  ``STORE_CORRUPT`` error when no source is attached.  Property-tested
  across dtypes, mmap modes, and corruption sites.
* **Crash safety** — a writer killed at any point inside
  ``IndexStore.sync`` (after a shard write but before the manifest
  publish; after the publish but before the orphan sweep) leaves a
  store the next ``load`` opens cleanly, serving exactly the committed
  manifest and reclaiming the debris.  Asserted with real subprocesses
  killed via ``os._exit`` at the injection points.
* **Cold tier** — demotion compresses shards without weakening the
  checksum chain; promotion re-verifies before the bytes rejoin the
  resident tier; a rotten cold shard is quarantined, not promoted.
* **Observability** — every transition lands in ``StorageStats`` and
  surfaces through ``/v1/health``'s append-only ``storage`` field and
  the ``python -m repro.spell.store`` operator CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api.app import ApiApp
from repro.api.errors import ERROR_STATUS, as_api_error, error_payload
from repro.data.compendium import Compendium
from repro.spell import SpellService
from repro.spell.index import SpellIndex
from repro.spell.store import (
    QUARANTINE_DIR,
    IndexStore,
    StorageStats,
    _cli,
)
from repro.synth import make_spell_compendium
from repro.util.errors import StoreCorruptError, StoreError, StorePublishError

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

COMPENDIUM_KWARGS = dict(
    n_datasets=6,
    n_relevant=2,
    n_genes=80,
    n_conditions=10,
    module_size=10,
    query_size=3,
    seed=7,
)


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(**COMPENDIUM_KWARGS)


def _shard_files(directory: Path) -> list[Path]:
    return sorted(directory.glob("shard-*.npy")) + sorted(directory.glob("shard-*.npz"))


def _flip_byte(path: Path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    offset = min(offset, len(data) - 1)
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def _entries_by_name(index: SpellIndex) -> dict[str, np.ndarray]:
    return {e.name: np.asarray(e.normalized) for e in index._entries}


class TestCorruptionOracle:
    """Single-byte corruption anywhere → quarantine + rebuild-or-refuse."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("mmap", [True, False])
    @pytest.mark.parametrize("site", ["header", "middle", "tail"])
    def test_flip_rebuilds_bit_identical_from_bound_source(
        self, setup, tmp_path, dtype, mmap, site
    ):
        compendium, _ = setup
        index = SpellIndex.build(compendium, dtype=dtype)
        IndexStore.save(index, tmp_path)
        clean = _entries_by_name(IndexStore.load(tmp_path, mmap=False))

        victim = _shard_files(tmp_path)[2]
        size = victim.stat().st_size
        offset = {"header": 7, "middle": size // 2, "tail": size - 3}[site]
        _flip_byte(victim, offset)

        stats = StorageStats()
        loaded = IndexStore.load(
            tmp_path, mmap=mmap, bind=compendium, verify="eager", stats=stats
        )
        healed = _entries_by_name(loaded)
        assert healed.keys() == clean.keys()
        for name, array in clean.items():
            assert np.array_equal(healed[name], array), name

        # the damaged file was moved aside, never deleted, never served
        pen = tmp_path / QUARANTINE_DIR
        assert (pen / victim.name).exists()
        assert stats.snapshot()["quarantined"] == 1
        assert stats.snapshot()["rebuilt"] == 1
        # the healed store is self-consistent again: a scrub comes back clean
        assert IndexStore.verify(tmp_path).clean

    @pytest.mark.parametrize("mmap", [True, False])
    def test_flip_without_source_refuses_with_structured_error(
        self, setup, tmp_path, mmap
    ):
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        victim = _shard_files(tmp_path)[0]
        _flip_byte(victim, victim.stat().st_size // 2)

        stats = StorageStats()
        with pytest.raises(StoreCorruptError) as exc:
            IndexStore.load(tmp_path, mmap=mmap, verify="eager", stats=stats)
        assert exc.value.datasets  # names the dataset it refused to serve
        assert victim.name in exc.value.files
        assert not victim.exists()  # quarantined even on refusal
        assert (tmp_path / QUARANTINE_DIR / victim.name).exists()
        assert stats.snapshot()["corrupt"] == 1

    def test_lazy_mmap_load_defers_and_scrub_detects(self, setup, tmp_path):
        """The mmap cold start stays zero-copy under ``verify="lazy"``;
        the startup scrub (``IndexStore.verify``) is the detector."""
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        victim_record = manifest["shards"][3]
        victim = tmp_path / victim_record["file"]
        # flip deep in the data region so np.load's header still parses —
        # exactly the bit rot a structural check cannot see
        _flip_byte(victim, victim.stat().st_size - 16)

        loaded = IndexStore.load(tmp_path, mmap=True, verify="lazy")
        assert len(loaded._entries) == len(compendium)  # served structurally

        report = IndexStore.verify(tmp_path)
        assert report.corrupt == (victim_record["name"],)
        assert not report.clean

        # eager reload with the source bound heals it in place
        IndexStore.load(tmp_path, bind=compendium, verify="eager")
        assert IndexStore.verify(tmp_path).clean

    def test_verify_policy_validated(self, setup, tmp_path):
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        with pytest.raises(StoreError, match="unknown verify policy"):
            IndexStore.load(tmp_path, verify="sometimes")


def _kill_mid_sync(tmp_path: Path, *, n_target: int, patch: str) -> None:
    """Run a real writer subprocess that syncs ``tmp_path`` toward the
    first ``n_target`` datasets and dies (``os._exit``) inside ``patch``."""
    script = textwrap.dedent(
        f"""
        import os
        from repro.data.compendium import Compendium
        from repro.spell.index import SpellIndex
        from repro.spell.store import IndexStore
        from repro.synth import make_spell_compendium

        compendium, _ = make_spell_compendium(**{COMPENDIUM_KWARGS!r})
        target = Compendium(list(compendium)[:{n_target}])
        index = SpellIndex.build(target)
        IndexStore.{patch} = staticmethod(lambda *a, **k: os._exit(9))
        IndexStore.sync(index, {str(tmp_path)!r})
        os._exit(7)  # unreachable: the patched step must run
        """
    )
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, timeout=180
    )
    assert proc.returncode == 9, proc.stderr.decode()


class TestCrashInjection:
    """Kill a real writer process mid-``sync``; the next load recovers."""

    def test_killed_after_shard_write_before_manifest_publish(
        self, setup, tmp_path
    ):
        compendium, _ = setup
        committed = Compendium(list(compendium)[:4])
        IndexStore.save(SpellIndex.build(committed), tmp_path)

        # the writer grows the store to 6 datasets but dies before the
        # manifest rename: 2 freshly-written shards are now orphans
        _kill_mid_sync(tmp_path, n_target=6, patch="_publish_manifest")
        assert len(_shard_files(tmp_path)) == 6

        stats = StorageStats()
        loaded = IndexStore.load(tmp_path, bind=committed, stats=stats)
        # exactly the committed manifest is served — the old store
        names = [e.name for e in loaded._entries]
        assert names == [ds.name for ds in committed]
        # and the debris is reclaimed: orphan shards swept, no partials
        assert len(_shard_files(tmp_path)) == 4
        assert not list(tmp_path.glob("*.tmp"))
        assert stats.snapshot()["swept"] == 2
        assert IndexStore.verify(tmp_path).clean

    def test_killed_after_publish_before_sweep(self, setup, tmp_path):
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)

        # the writer shrinks the store to 4 datasets, publishes the new
        # manifest, and dies before sweeping the 2 retired shard files
        _kill_mid_sync(tmp_path, n_target=4, patch="_sweep_orphans")
        assert len(_shard_files(tmp_path)) == 6  # retired files linger

        loaded = IndexStore.load(tmp_path)
        names = [e.name for e in loaded._entries]
        assert names == [ds.name for ds in list(compendium)[:4]]
        assert len(_shard_files(tmp_path)) == 4  # load finished the sweep
        assert IndexStore.verify(tmp_path).clean

    def test_interrupted_writer_never_tears_the_manifest(self, setup, tmp_path):
        """The manifest is always one of the two complete versions."""
        compendium, _ = setup
        committed = Compendium(list(compendium)[:4])
        IndexStore.save(SpellIndex.build(committed), tmp_path)
        before = (tmp_path / "manifest.json").read_bytes()
        _kill_mid_sync(tmp_path, n_target=6, patch="_publish_manifest")
        assert (tmp_path / "manifest.json").read_bytes() == before


class TestColdTier:
    def test_demote_promote_round_trip(self, setup, tmp_path):
        compendium, _ = setup
        index = SpellIndex.build(compendium)
        IndexStore.save(index, tmp_path)
        clean = _entries_by_name(IndexStore.load(tmp_path, mmap=False))
        names = [ds.name for ds in compendium]

        stats = StorageStats()
        demoted = IndexStore.demote(tmp_path, names[:2], stats=stats)
        assert demoted == tuple(names[:2])
        tiers = IndexStore.tiers(tmp_path)
        assert [tiers[n] for n in names[:2]] == ["cold", "cold"]
        assert sorted(p.suffix for p in _shard_files(tmp_path)) == [
            ".npy", ".npy", ".npy", ".npy", ".npz", ".npz",
        ]
        assert stats.snapshot()["demotions"] == 2
        assert stats.snapshot()["cold"] == 2

        # a load serves cold shards (decompressed + verified into RAM),
        # bit-identical to the resident originals
        loaded = IndexStore.load(tmp_path, stats=stats)
        served = _entries_by_name(loaded)
        for name in names:
            assert np.array_equal(served[name], clean[name]), name
        assert stats.snapshot()["cold_loads"] == 2

        promoted = IndexStore.promote(tmp_path, names[:2], stats=stats)
        assert promoted == tuple(names[:2])
        assert all(t == "resident" for t in IndexStore.tiers(tmp_path).values())
        assert not list(tmp_path.glob("*.npz"))
        assert stats.snapshot()["promotions"] == 2
        served = _entries_by_name(IndexStore.load(tmp_path, mmap=False))
        for name in names:
            assert np.array_equal(served[name], clean[name]), name

    def test_unchanged_cold_shard_stays_cold_across_sync(self, setup, tmp_path):
        compendium, _ = setup
        index = SpellIndex.build(compendium)
        IndexStore.save(index, tmp_path)
        victim = list(compendium)[0].name
        IndexStore.demote(tmp_path, [victim])
        report = IndexStore.sync(index, tmp_path)
        assert victim in report.unchanged
        assert IndexStore.tiers(tmp_path)[victim] == "cold"

    def test_corrupt_cold_shard_quarantined_and_rebuilt_on_promote(
        self, setup, tmp_path
    ):
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        clean = _entries_by_name(IndexStore.load(tmp_path, mmap=False))
        victim = list(compendium)[1].name
        IndexStore.demote(tmp_path, [victim])
        npz = next(tmp_path.glob("*.npz"))
        _flip_byte(npz, npz.stat().st_size // 2)

        stats = StorageStats()
        promoted = IndexStore.promote(
            tmp_path, [victim], bind=compendium, stats=stats
        )
        assert promoted == (victim,)
        assert (tmp_path / QUARANTINE_DIR / npz.name).exists()
        assert stats.snapshot()["rebuilt"] == 1
        served = _entries_by_name(IndexStore.load(tmp_path, mmap=False))
        assert np.array_equal(served[victim], clean[victim])

    def test_corrupt_cold_shard_refused_without_source(self, setup, tmp_path):
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        victim = list(compendium)[1].name
        IndexStore.demote(tmp_path, [victim])
        npz = next(tmp_path.glob("*.npz"))
        _flip_byte(npz, npz.stat().st_size // 2)
        with pytest.raises(StoreCorruptError):
            IndexStore.promote(tmp_path, [victim])
        with pytest.raises(StoreCorruptError):
            IndexStore.load(tmp_path)  # cold shards always verify


class TestPublishFailure:
    def test_enospc_surfaces_as_publish_error_not_torn_store(
        self, setup, tmp_path, monkeypatch
    ):
        compendium, _ = setup
        index = SpellIndex.build(compendium)

        def full_disk(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", full_disk)
        stats = StorageStats()
        with pytest.raises(StorePublishError, match="No space left"):
            IndexStore.save(index, tmp_path, stats=stats)
        monkeypatch.undo()
        assert stats.snapshot()["publish_errors"] == 1
        # nothing half-published: no manifest, no temp partials
        assert not (tmp_path / "manifest.json").exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_sync_leaves_prior_store_servable(
        self, setup, tmp_path, monkeypatch
    ):
        compendium, _ = setup
        committed = Compendium(list(compendium)[:4])
        IndexStore.save(SpellIndex.build(committed), tmp_path)

        def full_disk(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", full_disk)
        with pytest.raises(StorePublishError):
            IndexStore.sync(SpellIndex.build(compendium), tmp_path)
        monkeypatch.undo()
        loaded = IndexStore.load(tmp_path, verify="eager")
        assert [e.name for e in loaded._entries] == [ds.name for ds in committed]


class TestServiceIntegration:
    def test_store_corrupt_maps_to_stable_api_code(self):
        err = as_api_error(
            StoreCorruptError("boom", datasets=("ds1",), files=("shard-x.npy",))
        )
        assert err.code == "STORE_CORRUPT"
        assert ERROR_STATUS["STORE_CORRUPT"] == 503
        payload = error_payload(err)["error"]
        assert payload["details"]["datasets"] == ["ds1"]
        assert payload["details"]["quarantined_files"] == ["shard-x.npy"]

    def test_service_rebuilds_corrupt_store_and_counts_it(self, setup, tmp_path):
        compendium, truth = setup
        store = tmp_path / "store"
        with SpellService(compendium, store_dir=store) as svc:
            baseline = svc.search(truth.query_genes)
        victim = sorted(store.glob("shard-*.npy"))[0]
        _flip_byte(victim, victim.stat().st_size // 2)

        with SpellService(
            compendium, store_dir=store, store_verify="eager"
        ) as svc:
            snap = svc.storage.snapshot()
            assert snap["quarantined"] == 1
            assert snap["rebuilt"] == 1
            result = svc.search(truth.query_genes)
        ranked = [(g.gene_id, g.score) for g in baseline.genes]
        assert [(g.gene_id, g.score) for g in result.genes] == ranked
        assert (store / QUARANTINE_DIR / victim.name).exists()

    def test_health_surfaces_storage_counters(self, setup, tmp_path):
        compendium, truth = setup
        with SpellService(compendium, store_dir=tmp_path / "store") as svc:
            app = ApiApp(svc)
            health = app.health().to_wire()
        storage = health["storage"]
        assert storage["persistent"] is True
        for key in (
            "resident", "cold", "promotions", "demotions", "quarantined",
            "rebuilt", "corrupt", "verified", "cold_loads", "swept",
            "publish_errors", "hot_datasets",
        ):
            assert key in storage, key
        assert storage["resident"] == len(compendium)

    def test_demote_cold_spares_datasets_queries_use(self, setup, tmp_path):
        compendium, truth = setup
        with SpellService(compendium, store_dir=tmp_path / "store") as svc:
            result = svc.search(truth.query_genes)
            hot = result.datasets[0].name  # top-ranked: certainly used
            demoted = svc.demote_cold(min_hits=1, keep=1)
            assert hot not in demoted
            tiers = IndexStore.tiers(tmp_path / "store")
            assert tiers[hot] == "resident"
            assert all(tiers[name] == "cold" for name in demoted)
            # the resident index keeps serving; answers don't change
            again = svc.search(truth.query_genes, use_cache=False)
            assert [g.gene_id for g in again.genes] == [
                g.gene_id for g in result.genes
            ]
            promoted = svc.promote_cold()
            assert sorted(promoted) == sorted(demoted)
            assert all(
                t == "resident"
                for t in IndexStore.tiers(tmp_path / "store").values()
            )

    def test_demote_cold_with_no_traffic_keeps_floor(self, setup, tmp_path):
        compendium, _ = setup
        with SpellService(compendium, store_dir=tmp_path / "store") as svc:
            demoted = svc.demote_cold(min_hits=1, keep=1)
            assert len(demoted) == len(compendium) - 1
            snap = svc.storage.snapshot()
            assert snap["cold"] == len(demoted)
            assert snap["resident"] == 1


class TestStoreCli:
    def _store(self, setup, tmp_path) -> Path:
        compendium, _ = setup
        IndexStore.save(SpellIndex.build(compendium), tmp_path)
        return tmp_path

    def test_verify_clean_exits_zero(self, setup, tmp_path, capsys):
        directory = self._store(setup, tmp_path)
        assert _cli(["verify", str(directory)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["corrupt"] == [] and out["missing"] == []
        assert len(out["ok"]) == 6

    def test_verify_corrupt_exits_one(self, setup, tmp_path, capsys):
        directory = self._store(setup, tmp_path)
        victim = _shard_files(directory)[0]
        _flip_byte(victim, victim.stat().st_size // 2)
        assert _cli(["verify", str(directory)]) == 1
        out = json.loads(capsys.readouterr().out)
        assert len(out["corrupt"]) == 1
        assert out["storage"]["corrupt"] == 1

    def test_tiers_demote_promote_verbs(self, setup, tmp_path, capsys):
        compendium, _ = setup
        directory = self._store(setup, tmp_path)
        name = list(compendium)[0].name
        assert _cli(["demote", str(directory), name]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["moved"] == [name]
        assert _cli(["tiers", str(directory)]) == 0
        tiers = json.loads(capsys.readouterr().out)
        assert tiers[name] == "cold"
        assert _cli(["promote", str(directory), name]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["moved"] == [name]

    def test_missing_store_exits_two(self, tmp_path, capsys):
        assert _cli(["verify", str(tmp_path / "nope")]) == 2
        err = json.loads(capsys.readouterr().err)
        assert "no index store" in err["error"]
