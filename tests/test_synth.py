"""Tests for the synthetic-data substitutes (names, modules, compendia, GO)."""

import numpy as np
import pytest

from repro.stats import pearson
from repro.synth import (
    GeneModule,
    make_case_study,
    make_spell_compendium,
    make_stress_compendium,
    profile,
    synthesize_matrix,
    systematic_names,
)
from repro.util.errors import ValidationError


class TestNames:
    def test_format_is_yeast_like(self):
        names = systematic_names(10)
        for n in names:
            assert len(n) == 7
            assert n[0] == "Y" and n[2] in "LR" and n[-1] in "CW"

    def test_unique_at_scale(self):
        names = systematic_names(5000)
        assert len(set(names)) == 5000

    def test_deterministic(self):
        assert systematic_names(50) == systematic_names(50)

    def test_negative_raises(self):
        with pytest.raises(ValidationError):
            systematic_names(-1)


class TestProfiles:
    @pytest.mark.parametrize("kind", ["pulse", "sustained", "gradient", "sine"])
    def test_shapes(self, kind):
        p = profile(kind, 12)
        assert p.shape == (12,)
        assert np.isfinite(p).all()

    def test_spike(self):
        p = profile("spike", 8, at=3)
        assert p[3] == 1.0 and p.sum() == 1.0
        with pytest.raises(ValidationError):
            profile("spike", 8)
        with pytest.raises(ValidationError):
            profile("spike", 8, at=9)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            profile("sawtooth", 8)

    def test_pulse_peaks_inside(self):
        p = profile("pulse", 20, center=0.35)
        assert 3 < int(np.argmax(p)) < 12


class TestSynthesizeMatrix:
    def test_module_genes_correlate(self):
        genes = systematic_names(30)
        prof = tuple(profile("pulse", 10) * 3.0)
        mod = GeneModule("m", tuple(genes[:8]), prof)
        m = synthesize_matrix(genes, [f"c{i}" for i in range(10)], [mod],
                              noise_sd=0.2, missing_fraction=0.0, seed=0)
        # module members strongly correlated with each other
        r = pearson(m.values[0], m.values[1])
        assert r > 0.8
        # module member vs background gene: weak
        r_bg = abs(pearson(m.values[0], m.values[20]))
        assert r_bg < 0.6

    def test_missing_fraction_respected(self):
        genes = systematic_names(40)
        m = synthesize_matrix(genes, [f"c{i}" for i in range(20)], [],
                              missing_fraction=0.25, seed=1)
        frac = np.isnan(m.values).mean()
        assert 0.15 < frac < 0.35

    def test_validation(self):
        genes = systematic_names(5)
        conds = ["c0", "c1"]
        with pytest.raises(ValidationError, match="unknown gene"):
            synthesize_matrix(genes, conds, [GeneModule("m", ("ZZZ",), (1.0, 1.0))])
        with pytest.raises(ValidationError, match="conditions"):
            synthesize_matrix(genes, conds, [GeneModule("m", (genes[0],), (1.0,))])
        with pytest.raises(ValidationError):
            synthesize_matrix(genes, conds, [], missing_fraction=1.0)
        with pytest.raises(ValidationError):
            synthesize_matrix(genes, conds, [], noise_sd=-0.1)

    def test_deterministic_given_seed(self):
        genes = systematic_names(10)
        a = synthesize_matrix(genes, ["c0", "c1"], [], seed=5)
        b = synthesize_matrix(genes, ["c0", "c1"], [], seed=5)
        assert np.array_equal(a.values, b.values, equal_nan=True)


class TestCaseStudy:
    def test_structure(self, case_study):
        comp, truth = case_study
        assert len(comp) == 5  # 3 stress + nutrient + knockout
        assert truth.nutrient_dataset_name in comp
        assert truth.knockout_dataset_name in comp
        assert len(truth.esr_induced) >= 4
        assert len(truth.esr_repressed) >= 4
        assert set(truth.sick_knockouts) <= set(
            comp[truth.knockout_dataset_name].matrix.condition_names
        )

    def test_esr_correlated_within_stress_dataset(self, case_study):
        comp, truth = case_study
        ds = comp[truth.stress_dataset_names[0]]
        g1, g2 = truth.esr_induced[0], truth.esr_induced[1]
        assert pearson(ds.matrix.row(g1), ds.matrix.row(g2)) > 0.5

    def test_esr_anticorrelated_between_arms(self, case_study):
        comp, truth = case_study
        ds = comp[truth.stress_dataset_names[0]]
        r = pearson(
            ds.matrix.row(truth.esr_induced[0]), ds.matrix.row(truth.esr_repressed[0])
        )
        assert r < -0.5

    def test_esr_present_in_nutrient_data(self, case_study):
        """The §4 insight's precondition: ESR signal exists in nutrient data."""
        comp, truth = case_study
        ds = comp[truth.nutrient_dataset_name]
        r = pearson(
            ds.matrix.row(truth.esr_induced[0]), ds.matrix.row(truth.esr_induced[1])
        )
        assert r > 0.5

    def test_sick_knockouts_fire_esr(self, case_study):
        comp, truth = case_study
        ds = comp[truth.knockout_dataset_name]
        cond_idx = {c: i for i, c in enumerate(ds.matrix.condition_names)}
        sick_cols = [cond_idx[c] for c in truth.sick_knockouts]
        healthy_cols = [i for c, i in cond_idx.items() if c not in truth.sick_knockouts]
        esr_rows = ds.matrix.indices_of(list(truth.esr_induced))
        vals = ds.matrix.values[np.asarray(esr_rows)]
        sick_mean = np.nanmean(vals[:, sick_cols])
        healthy_mean = np.nanmean(vals[:, healthy_cols])
        assert sick_mean > healthy_mean + 1.0

    def test_stress_compendium_shortcut(self):
        comp = make_stress_compendium(n_genes=80, n_conditions=8, seed=3)
        assert len(comp) == 3
        assert all(ds.metadata["kind"] == "stress" for ds in comp)

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_case_study(n_genes=10)


class TestSpellCompendium:
    def test_truth_consistency(self, spell_setup):
        comp, truth = spell_setup
        assert set(truth.query_genes) <= set(truth.module_genes)
        assert set(truth.relevant_datasets) | set(truth.irrelevant_datasets) == set(
            comp.names
        )
        assert len(truth.relevant_datasets) == 3

    def test_module_coexpresses_only_in_relevant(self, spell_setup):
        comp, truth = spell_setup
        g1, g2 = truth.module_genes[0], truth.module_genes[1]
        r_rel = pearson(
            comp[truth.relevant_datasets[0]].matrix.row(g1),
            comp[truth.relevant_datasets[0]].matrix.row(g2),
        )
        r_irr = pearson(
            comp[truth.irrelevant_datasets[0]].matrix.row(g1),
            comp[truth.irrelevant_datasets[0]].matrix.row(g2),
        )
        assert r_rel > 0.6
        assert abs(r_irr) < 0.6

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_spell_compendium(n_datasets=2, n_relevant=3)
        with pytest.raises(ValidationError):
            make_spell_compendium(module_size=5, query_size=6)


class TestOntologyGen:
    def test_planted_term_annotates_exact_genes(self, ontology_setup):
        onto, store, truth, genes = ontology_setup
        assert len(truth.planted_terms) == 1
        term_id, planted_genes = next(iter(truth.planted_terms.items()))
        assert store.genes_for(term_id) == frozenset(planted_genes)
        assert set(planted_genes) == set(genes[:12])

    def test_dag_is_valid(self, ontology_setup):
        onto, _, _, _ = ontology_setup
        order = onto.topological_order()
        assert len(order) == len(onto)
        assert onto.roots() == ["GO:0000001"]

    def test_depth_distribution_nontrivial(self):
        from repro.synth import make_ontology

        onto = make_ontology(n_terms=100, max_depth=5, seed=2)
        depths = [onto.depth(t) for t in onto.term_ids()]
        assert max(depths) >= 3

    def test_multi_parent_terms_exist(self):
        from repro.synth import make_ontology

        onto = make_ontology(n_terms=150, multi_parent_fraction=0.3, seed=4)
        multi = [t for t in onto if len(t.parents) > 1]
        assert len(multi) > 0
