"""Tests for ForestView components: events, viewport, selection, sync,
panes, preferences, search, ordering, export."""

import numpy as np
import pytest

from repro.core import (
    DatasetPane,
    EventBus,
    GeneSelection,
    PanePreferences,
    SelectionChanged,
    SelectionModel,
    SynchronizationLayer,
    SyncToggled,
    Viewport,
    find_genes,
    format_gene_list,
    format_merged_pcl,
    order_by_name,
    order_by_scores,
    order_by_selection_coverage,
)
from repro.core.events import Event
from repro.data import parse_pcl
from repro.util.errors import SearchError, ValidationError

from tests.conftest import fresh_compendium


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SelectionChanged, seen.append)
        bus.publish(SelectionChanged(genes=("A",), source="t"))
        assert len(seen) == 1 and seen[0].genes == ("A",)

    def test_subscribe_base_class_gets_subclasses(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(SyncToggled(synchronized=False))
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe(SyncToggled, seen.append)
        unsub()
        bus.publish(SyncToggled(synchronized=True))
        assert seen == []
        unsub()  # idempotent

    def test_log_records_everything(self):
        bus = EventBus()
        bus.publish(SyncToggled(synchronized=True))
        bus.publish(SelectionChanged(genes=(), source="x"))
        assert len(bus.log) == 2
        assert len(bus.events_of(SyncToggled)) == 1

    def test_handler_exception_propagates(self):
        bus = EventBus()
        bus.subscribe(SyncToggled, lambda e: (_ for _ in ()).throw(RuntimeError("h")))
        with pytest.raises(RuntimeError):
            bus.publish(SyncToggled(synchronized=True))


class TestViewport:
    def test_defaults_show_everything(self):
        vp = Viewport(100, 50)
        assert vp.visible_rows == 100 and vp.visible_cols == 50
        assert vp.visible_fraction() == 1.0

    def test_scroll_clamps(self):
        vp = Viewport(100, 10, visible_rows=20)
        vp.scroll_to(95)
        assert vp.scroll_row == 80  # clamped to content
        vp.scroll_by(-200)
        assert vp.scroll_row == 0

    def test_paging(self):
        vp = Viewport(100, 10, visible_rows=30)
        vp.page_down()
        assert vp.scroll_row == 30
        vp.page_up()
        assert vp.scroll_row == 0

    def test_zoom(self):
        vp = Viewport(100, 40, visible_rows=100)
        vp.set_zoom(10, 5)
        assert len(vp.row_range) == 10 and len(vp.col_range) == 5
        assert vp.visible_fraction() == pytest.approx(50 / 4000)
        with pytest.raises(ValidationError):
            vp.set_zoom(0)

    def test_resize_content_keeps_full_view(self):
        vp = Viewport(10, 5)
        vp.resize_content(20, 8)
        assert vp.visible_rows == 20 and vp.visible_cols == 8

    def test_resize_content_clamps_scroll(self):
        vp = Viewport(100, 10, visible_rows=10)
        vp.scroll_to(90)
        vp.resize_content(30, 10)
        assert vp.scroll_row <= 20

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Viewport(-1, 5)


class TestGeneSelection:
    def test_construction_rules(self):
        sel = GeneSelection(("A", "B"), "test")
        assert len(sel) == 2 and "A" in sel
        with pytest.raises(ValidationError):
            GeneSelection((), "empty")
        with pytest.raises(ValidationError):
            GeneSelection(("A", "A"), "dup")

    def test_set_operations(self):
        a = GeneSelection(("A", "B", "C"), "a")
        b = GeneSelection(("B", "D"), "b")
        assert a.union(b).genes == ("A", "B", "C", "D")
        assert a.intersection(b).genes == ("B",)
        assert a.difference(b).genes == ("A", "C")
        with pytest.raises(ValidationError):
            a.intersection(GeneSelection(("Z",), "z"))

    def test_model_select_and_history(self):
        bus = EventBus()
        model = SelectionModel(bus)
        assert model.current is None
        model.select(["A", "B", "A"], source="s1")  # dedup keeps first
        assert model.current.genes == ("A", "B")
        model.select(["C"], source="s2")
        assert len(model.history) == 2
        assert len(bus.events_of(SelectionChanged)) == 2

    def test_model_extend(self):
        model = SelectionModel(EventBus())
        model.extend(["A"], source="x")
        model.extend(["B", "A"], source="y")
        assert model.current.genes == ("A", "B")

    def test_model_undo(self):
        model = SelectionModel(EventBus())
        model.select(["A"], source="1")
        model.select(["B"], source="2")
        back = model.undo()
        assert back.genes == ("A",)
        model.undo()
        assert model.current is None
        assert model.undo() is None

    def test_model_clear(self):
        bus = EventBus()
        model = SelectionModel(bus)
        model.select(["A"], source="1")
        model.clear()
        assert model.current is None
        assert bus.events_of(SelectionChanged)[-1].source == "clear"


class TestSynchronizationLayer:
    @pytest.fixture
    def setup(self):
        comp = fresh_compendium(3)
        panes = [DatasetPane(ds) for ds in comp]
        bus = EventBus()
        layer = SynchronizationLayer(bus)
        return comp, panes, bus, layer

    def test_aligned_views_share_order(self, setup):
        comp, panes, _, layer = setup
        genes = comp[0].gene_ids[:6]
        sel = GeneSelection(tuple(genes), "t")
        views = layer.zoom_views(panes, sel)
        assert SynchronizationLayer.rows_aligned(views)
        for v in views:
            assert v.gene_ids == tuple(genes)
            assert v.synchronized

    def test_aligned_view_has_nan_rows_for_absent_genes(self, setup):
        comp, panes, _, layer = setup
        sel = GeneSelection((comp[0].gene_ids[0], "NOT_A_GENE"), "t")
        view = layer.zoom_view(panes[0], sel)
        assert view.present == (True, False)
        assert np.isnan(view.values[1]).all()
        assert not np.isnan(view.values[0]).all()

    def test_unsync_uses_native_order(self, setup):
        comp, panes, _, layer = setup
        clustered = comp[0].clustered()
        pane = DatasetPane(clustered)
        layer.set_synchronized(False)
        genes = clustered.gene_ids[:8]
        sel = GeneSelection(tuple(genes), "t")
        view = layer.zoom_view(pane, sel)
        assert not view.synchronized
        # native order = clustered display order restricted to selection
        order = [clustered.matrix.gene_ids[i] for i in clustered.display_order()]
        expected = tuple(g for g in order if g in set(genes))
        assert view.gene_ids == expected

    def test_toggle_publishes_once(self, setup):
        _, _, bus, layer = setup
        layer.set_synchronized(False)
        layer.set_synchronized(False)  # no-op
        layer.set_synchronized(True)
        assert len(bus.events_of(SyncToggled)) == 2

    def test_shared_viewport_resizes_on_selection(self, setup):
        _, _, _, layer = setup
        layer.on_selection_changed(12, 30)
        assert layer.shared_viewport.total_rows == 12
        assert layer.shared_viewport.total_cols == 30

    def test_row_values_lookup(self, setup):
        comp, panes, _, layer = setup
        gene = comp[0].gene_ids[0]
        sel = GeneSelection((gene,), "t")
        view = layer.zoom_view(panes[0], sel)
        assert np.allclose(
            view.row_values(gene), comp[0].matrix.row(gene), equal_nan=True
        )
        with pytest.raises(KeyError):
            view.row_values("NOPE")


class TestDatasetPane:
    def test_highlight_rows_sorted_positions(self, clustered_dataset):
        pane = DatasetPane(clustered_dataset)
        genes = clustered_dataset.gene_ids[:5]
        sel = GeneSelection(tuple(genes), "t")
        rows = pane.highlight_rows(sel)
        assert rows == sorted(rows)
        assert len(rows) == 5
        order = pane.display_order()
        ids = clustered_dataset.matrix.gene_ids
        for r in rows:
            assert ids[order[r]] in set(genes)

    def test_genes_in_region_matches_display(self, clustered_dataset):
        pane = DatasetPane(clustered_dataset)
        region = pane.genes_in_region(3, 8)
        assert len(region) == 5
        order = pane.display_order()
        ids = clustered_dataset.matrix.gene_ids
        assert region == [ids[order[r]] for r in range(3, 8)]
        with pytest.raises(ValidationError):
            pane.genes_in_region(5, 5)
        with pytest.raises(ValidationError):
            pane.genes_in_region(0, 10_000)

    def test_global_values_in_display_order(self, clustered_dataset):
        pane = DatasetPane(clustered_dataset)
        values = pane.global_values()
        order = pane.display_order()
        assert np.allclose(
            values, clustered_dataset.matrix.values[order], equal_nan=True
        )

    def test_coverage(self, simple_dataset):
        pane = DatasetPane(simple_dataset)
        sel = GeneSelection((simple_dataset.gene_ids[0], "ZZZ"), "t")
        assert pane.coverage(sel) == 0.5
        assert pane.present_genes(sel) == [simple_dataset.gene_ids[0]]


class TestPreferences:
    def test_defaults_valid(self):
        prefs = PanePreferences()
        assert prefs.colormap().name == "red-green"

    def test_with_changes(self):
        prefs = PanePreferences().with_changes(saturation=1.0, colormap_name="red-blue")
        assert prefs.saturation == 1.0
        assert prefs.colormap().saturation == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            PanePreferences(colormap_name="nope")
        with pytest.raises(ValidationError):
            PanePreferences(saturation=0)
        with pytest.raises(ValidationError):
            PanePreferences(zoom_row_px=0)
        with pytest.raises(ValidationError):
            PanePreferences(global_fraction=0.95)

    def test_dict_round_trip(self):
        prefs = PanePreferences(saturation=1.5, show_annotations=False)
        assert PanePreferences.from_dict(prefs.to_dict()) == prefs


class TestSearchOrderingExport:
    def test_find_genes_across_datasets(self, case_study):
        comp, truth = case_study
        hits = find_genes(comp, ["heat shock"])
        assert hits  # ESR-induced genes carry stress descriptions
        assert len(hits) == len(set(hits))
        with pytest.raises(SearchError):
            find_genes(comp, ["", " "])

    def test_order_by_name(self):
        comp = fresh_compendium(3)
        assert order_by_name(comp) == ["ds0", "ds1", "ds2"]

    def test_order_by_scores(self):
        comp = fresh_compendium(3)
        order = order_by_scores(comp, {"ds1": 9.0, "ds0": 1.0, "ds2": 5.0})
        assert order == ["ds1", "ds2", "ds0"]
        with pytest.raises(ValidationError):
            order_by_scores(comp, {"nope": 1.0})

    def test_order_by_scores_unscored_last(self):
        comp = fresh_compendium(3)
        order = order_by_scores(comp, {"ds2": 1.0})
        assert order[0] == "ds2"

    def test_order_by_selection_coverage(self):
        comp = fresh_compendium(2)
        # all genes shared in fresh compendium; add private-gene dataset
        from repro.data import Dataset, ExpressionMatrix

        private = Dataset(
            name="private",
            matrix=ExpressionMatrix(np.zeros((2, 2)), ["PRIV1", "PRIV2"], ["c1", "c2"]),
        )
        comp.add(private)
        sel = GeneSelection(tuple(comp[0].gene_ids[:4]), "t")
        order = order_by_selection_coverage(comp, sel)
        assert order[-1] == "private"

    def test_format_gene_list_with_annotations(self, case_study):
        comp, truth = case_study
        sel = GeneSelection(tuple(truth.esr_induced[:3]), "t")
        text = format_gene_list(sel, comp)
        lines = text.strip().splitlines()
        assert lines[0] == "GENE\tNAME\tDESCRIPTION"
        assert len(lines) == 4
        assert lines[1].split("\t")[0] == truth.esr_induced[0]

    def test_format_gene_list_plain(self):
        sel = GeneSelection(("A", "B"), "t")
        assert format_gene_list(sel, None, annotations=False) == "A\nB\n"

    def test_format_merged_pcl_parses_back(self, case_study):
        comp, truth = case_study
        sel = GeneSelection(tuple(truth.esr_induced[:4]), "t")
        text = format_merged_pcl(comp, sel)
        matrix = parse_pcl(text)
        assert matrix.n_genes == 4
        total_conditions = sum(ds.n_conditions for ds in comp)
        assert matrix.n_conditions == total_conditions
        assert matrix.condition_names[0].startswith(comp.names[0] + ":")
