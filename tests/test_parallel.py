"""Tests for the parallel substrate: communicator, partitioning, pmap, stealing."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ANY_SOURCE,
    WorkStealingPool,
    balanced_partition,
    block_partition,
    chunk_ranges,
    cyclic_partition,
    parallel_map,
    parallel_starmap,
    run_ranks,
)
from repro.util.errors import CommunicationError, ValidationError


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1, tag=5)
                return comm.recv(source=1, tag=6)
            payload = comm.recv(source=0, tag=5)
            comm.send(payload["x"] + 1, dest=0, tag=6)
            return None

        results = run_ranks(fn, 2)
        assert results[0] == 2

    def test_tag_matching_out_of_order(self):
        """A message with the wrong tag is buffered, not lost."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("second", dest=1, tag=2)
                comm.send("first", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        results = run_ranks(fn, 2)
        assert results[1] == ("first", "second")

    def test_any_source_recv_with_source(self):
        def fn(comm):
            if comm.rank == 0:
                got = set()
                for _ in range(2):
                    src, val = comm.recv_with_source(ANY_SOURCE, tag=9)
                    got.add((src, val))
                return got
            comm.send(comm.rank * 10, dest=0, tag=9)
            return None

        results = run_ranks(fn, 3)
        assert results[0] == {(1, 10), (2, 20)}

    def test_numpy_arrays_pass_through(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(10), dest=1)
                return None
            arr = comm.recv(source=0)
            return int(arr.sum())

        assert run_ranks(fn, 2)[1] == 45

    def test_recv_timeout_raises(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=99)  # nothing ever sent
            return None

        with pytest.raises(CommunicationError):
            run_ranks(fn, 2, timeout=0.3)

    def test_bad_dest_raises(self):
        def fn(comm):
            comm.send(1, dest=5)

        with pytest.raises(CommunicationError):
            run_ranks(fn, 2, timeout=1.0)


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            value = {"data": 42} if comm.rank == 0 else None
            return comm.bcast(value, root=0)["data"]

        assert run_ranks(fn, 4) == [42, 42, 42, 42]

    def test_scatter_gather(self):
        def fn(comm):
            values = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(values, root=0)
            gathered = comm.gather(mine + 1, root=0)
            return gathered

        results = run_ranks(fn, 4)
        assert results[0] == [1, 2, 5, 10]
        assert results[1] is None

    def test_scatter_wrong_length_raises(self):
        def fn(comm):
            values = [1, 2] if comm.rank == 0 else None
            comm.scatter(values, root=0)

        with pytest.raises(CommunicationError):
            run_ranks(fn, 3, timeout=1.0)

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank)

        assert run_ranks(fn, 3) == [[0, 1, 2]] * 3

    def test_reduce_and_allreduce(self):
        def fn(comm):
            total = comm.reduce(comm.rank + 1, lambda a, b: a + b, root=0)
            every = comm.allreduce(comm.rank + 1, lambda a, b: a + b)
            return (total, every)

        results = run_ranks(fn, 4)
        assert results[0] == (10, 10)
        assert results[2] == (None, 10)

    def test_reduce_rank_order_deterministic(self):
        def fn(comm):
            return comm.reduce([comm.rank], lambda a, b: a + b, root=0)

        assert run_ranks(fn, 4)[0] == [0, 1, 2, 3]

    def test_barrier_synchronizes(self):
        hits: list[int] = []
        lock = threading.Lock()

        def fn(comm):
            if comm.rank == 0:
                time.sleep(0.05)
            with lock:
                hits.append(comm.rank)
            comm.barrier()
            # after the barrier everyone must have arrived
            with lock:
                return len(hits)

        results = run_ranks(fn, 3)
        assert all(r == 3 for r in results)

    def test_nonroot_collective_root_validation(self):
        def fn(comm):
            comm.bcast(1, root=9)

        with pytest.raises(CommunicationError):
            run_ranks(fn, 2, timeout=1.0)


class TestRunRanks:
    def test_results_in_rank_order(self):
        assert run_ranks(lambda comm: comm.rank * 2, 5) == [0, 2, 4, 6, 8]

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(CommunicationError, match="rank 2"):
            run_ranks(fn, 4, timeout=2.0)

    def test_zero_ranks_rejected(self):
        with pytest.raises(CommunicationError):
            run_ranks(lambda c: None, 0)


class TestPartition:
    @given(n_items=st.integers(0, 200), n_parts=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_block_partition_properties(self, n_items, n_parts):
        parts = block_partition(n_items, n_parts)
        assert len(parts) == n_parts
        flat = [i for rng in parts for i in rng]
        assert flat == list(range(n_items))  # disjoint, complete, ordered
        sizes = [len(rng) for rng in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_cyclic_partition(self):
        parts = cyclic_partition(7, 3)
        assert parts == [[0, 3, 6], [1, 4], [2, 5]]

    @given(
        weights=st.lists(st.floats(0.0, 100.0), min_size=0, max_size=40),
        n_parts=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_balanced_partition_properties(self, weights, n_parts):
        parts = balanced_partition(weights, n_parts)
        assert len(parts) == n_parts
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(len(weights)))
        # LPT guarantee: makespan <= mean load + largest item
        if weights and sum(weights) > 0:
            loads = [sum(weights[i] for i in p) for p in parts]
            assert max(loads) <= sum(weights) / n_parts + max(weights) + 1e-9

    def test_balanced_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            balanced_partition([1.0, -1.0], 2)

    def test_chunk_ranges(self):
        assert [list(r) for r in chunk_ranges(7, 3)] == [[0, 1, 2], [3, 4, 5], [6]]
        with pytest.raises(ValidationError):
            chunk_ranges(5, 0)

    def test_partition_validation(self):
        with pytest.raises(ValidationError):
            block_partition(5, 0)
        with pytest.raises(ValidationError):
            block_partition(-1, 2)
        with pytest.raises(ValidationError):
            cyclic_partition(5, 0)


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, range(50), n_workers=4)
        assert out == [x * x for x in range(50)]

    def test_serial_fallback(self):
        assert parallel_map(lambda x: x + 1, [1], n_workers=4) == [2]
        assert parallel_map(lambda x: x + 1, [1, 2, 3], n_workers=1) == [2, 3, 4]

    def test_exception_propagates(self):
        def bad(x):
            if x == 3:
                raise RuntimeError("nope")
            return x

        with pytest.raises(RuntimeError):
            parallel_map(bad, range(6), n_workers=3)

    def test_starmap(self):
        assert parallel_starmap(lambda a, b: a + b, [(1, 2), (3, 4)], n_workers=2) == [3, 7]

    def test_worker_validation(self):
        with pytest.raises(ValidationError):
            parallel_map(lambda x: x, [1], n_workers=0)


class TestWorkStealing:
    def test_all_tasks_complete_in_order(self):
        pool = WorkStealingPool(4)
        tasks = [(lambda i=i: i * 3, ()) for i in range(30)]
        results, stats = pool.run(tasks)
        assert results == [i * 3 for i in range(30)]
        assert sum(stats.tasks_run) == 30

    def test_uneven_tasks_get_stolen(self):
        """Workers with cheap tasks steal from the worker with expensive ones."""
        pool = WorkStealingPool(4)

        def slow():
            time.sleep(0.02)
            return "slow"

        def fast():
            return "fast"

        # round-robin initial split puts all slow tasks on worker 0
        tasks = []
        for i in range(16):
            tasks.append((slow if i % 4 == 0 else fast, ()))
        _, stats = pool.run(tasks)
        assert stats.total_steals > 0

    def test_failed_workers_tasks_are_rescued(self):
        pool = WorkStealingPool(4)
        tasks = [(lambda i=i: i, ()) for i in range(20)]
        results, stats = pool.run(tasks, fail_workers={0, 3})
        assert results == list(range(20))
        assert stats.tasks_run[0] == 0 and stats.tasks_run[3] == 0

    def test_cannot_fail_all_workers(self):
        pool = WorkStealingPool(2)
        with pytest.raises(ValidationError):
            pool.run([(lambda: 1, ())], fail_workers={0, 1})

    def test_task_exception_propagates(self):
        pool = WorkStealingPool(2)

        def boom():
            raise KeyError("bad task")

        with pytest.raises(KeyError):
            pool.run([(boom, ())])

    def test_stats_imbalance(self):
        from repro.parallel import StealStats

        stats = StealStats(2)
        stats.tasks_run = [10, 0]
        assert stats.imbalance() == 2.0
        stats.tasks_run = [5, 5]
        assert stats.imbalance() == 1.0

    def test_empty_task_list(self):
        results, stats = WorkStealingPool(3).run([])
        assert results == [] and sum(stats.tasks_run) == 0
