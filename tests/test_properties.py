"""Cross-module property-based tests on the system's load-bearing invariants.

These complement the per-module tests: each property here is something
the *paper's workflows* silently rely on (row alignment, merged-view
consistency, exact tiling, geometry inverses), checked over randomized
inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DatasetPane, EventBus, GeneSelection, SynchronizationLayer
from repro.data import Compendium, Dataset, ExpressionMatrix, MergedDatasetInterface
from repro.viz import DisplayList, HeatmapCmd, LineCmd, RectCmd, TextCmd, get_colormap
from repro.wall import WallGeometry, compose_tiles


def build_compendium(seed: int, n_datasets: int) -> Compendium:
    """Random compendium with partially overlapping gene sets."""
    rng = np.random.default_rng(seed)
    universe = [f"G{i:03d}" for i in range(30)]
    datasets = []
    for d in range(n_datasets):
        n_genes = int(rng.integers(5, 25))
        genes = sorted(rng.choice(universe, size=n_genes, replace=False).tolist())
        n_cond = int(rng.integers(3, 10))
        values = rng.normal(size=(n_genes, n_cond))
        values[rng.random(values.shape) < 0.1] = np.nan
        datasets.append(
            Dataset(
                name=f"ds{d}",
                matrix=ExpressionMatrix(values, genes, [f"c{j}" for j in range(n_cond)]),
            )
        )
    return Compendium(datasets)


class TestSyncInvariants:
    @given(seed=st.integers(0, 5000), n_datasets=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_aligned_views_always_consistent(self, seed, n_datasets):
        """For any compendium and selection: identical order everywhere,
        per-row values equal the dataset's own row, absent genes all-NaN."""
        comp = build_compendium(seed, n_datasets)
        rng = np.random.default_rng(seed + 1)
        universe = comp.gene_universe()
        k = int(rng.integers(1, min(12, len(universe)) + 1))
        genes = tuple(rng.choice(universe, size=k, replace=False).tolist())
        selection = GeneSelection(genes, "prop")
        layer = SynchronizationLayer(EventBus())
        panes = [DatasetPane(ds) for ds in comp]
        views = layer.zoom_views(panes, selection)
        assert SynchronizationLayer.rows_aligned(views)
        for pane, view in zip(panes, views):
            assert view.gene_ids == genes
            matrix = pane.dataset.matrix
            for i, g in enumerate(genes):
                if g in matrix:
                    assert view.present[i]
                    assert np.allclose(
                        view.values[i], matrix.row(g), equal_nan=True
                    )
                else:
                    assert not view.present[i]
                    assert np.isnan(view.values[i]).all()

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_native_views_are_selection_restrictions(self, seed):
        """Unsynced views contain exactly the selected-and-present genes,
        in the dataset's display order."""
        comp = build_compendium(seed, 3)
        rng = np.random.default_rng(seed + 2)
        universe = comp.gene_universe()
        genes = tuple(rng.choice(universe, size=8, replace=False).tolist())
        selection = GeneSelection(genes, "prop")
        layer = SynchronizationLayer(EventBus(), synchronized=False)
        for ds in comp:
            pane = DatasetPane(ds)
            view = layer.zoom_view(pane, selection)
            expected = [g for g in ds.matrix.gene_ids if g in set(genes)]
            assert sorted(view.gene_ids) == sorted(expected)
            assert all(view.present)


class TestMergedInterfaceInvariants:
    @given(seed=st.integers(0, 5000), n_datasets=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_every_cell_matches_source_dataset(self, seed, n_datasets):
        comp = build_compendium(seed, n_datasets)
        merged = MergedDatasetInterface(comp)
        rng = np.random.default_rng(seed + 3)
        for _ in range(20):
            d = int(rng.integers(len(comp)))
            ds = comp[d]
            gene = merged.gene_ids[int(rng.integers(len(merged.gene_ids)))]
            cond = int(rng.integers(merged.max_conditions))
            got = merged.value(d, gene, cond)
            if gene in ds.matrix and cond < ds.n_conditions:
                want = ds.matrix.values[ds.matrix.index_of(gene), cond]
                assert (np.isnan(got) and np.isnan(want)) or got == want
            else:
                assert np.isnan(got)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_dense_cube_matches_point_lookups(self, seed):
        comp = build_compendium(seed, 3)
        merged = MergedDatasetInterface(comp)
        cube = merged.dense()
        rng = np.random.default_rng(seed + 4)
        for _ in range(15):
            d = int(rng.integers(cube.shape[0]))
            g = int(rng.integers(cube.shape[1]))
            c = int(rng.integers(cube.shape[2]))
            point = merged.value(d, merged.gene_ids[g], c)
            cell = cube[d, g, c]
            assert (np.isnan(point) and np.isnan(cell)) or point == cell


class TestTilingInvariants:
    def _random_scene(self, seed: int, w: int, h: int) -> DisplayList:
        rng = np.random.default_rng(seed)
        dl = DisplayList(w, h, background=(3, 3, 3))
        cm = get_colormap("red-green")
        for _ in range(int(rng.integers(3, 10))):
            kind = int(rng.integers(4))
            x, y = int(rng.integers(w)), int(rng.integers(h))
            if kind == 0:
                dl.add(RectCmd(x, y, int(rng.integers(1, 40)), int(rng.integers(1, 40)),
                               tuple(int(v) for v in rng.integers(0, 256, 3))))
            elif kind == 1:
                dl.add(LineCmd(x, y, int(rng.integers(w)), int(rng.integers(h)),
                               tuple(int(v) for v in rng.integers(0, 256, 3))))
            elif kind == 2:
                dl.add(HeatmapCmd(x, y, int(rng.integers(5, 50)), int(rng.integers(5, 50)),
                                  rng.normal(size=(int(rng.integers(2, 9)),
                                                   int(rng.integers(2, 9)))), cm))
            else:
                dl.add(TextCmd(x, y, "GENE", (255, 255, 255)))
        return dl

    @given(
        seed=st.integers(0, 3000),
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_tiling_composites_exactly(self, seed, rows, cols):
        """Random scene + random tile grid => composite == full render."""
        geo = WallGeometry(rows=rows, cols=cols, tile_width=40, tile_height=30)
        dl = self._random_scene(seed, geo.canvas_width, geo.canvas_height)
        full = dl.render_full()
        tiles = [
            (t.region, dl.render_region(t.region.x, t.region.y, t.region.w, t.region.h))
            for t in geo.tiles()
        ]
        composite = compose_tiles(
            geo.canvas_width, geo.canvas_height, tiles, require_full_coverage=True
        )
        assert np.array_equal(composite, full)


class TestGeometryInvariants:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
        bezel=st.integers(0, 20),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_tile_at_inverts_tile_region(self, rows, cols, bezel, seed):
        geo = WallGeometry(rows=rows, cols=cols, tile_width=37, tile_height=23,
                           bezel_px=bezel)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            x = int(rng.integers(geo.canvas_width))
            y = int(rng.integers(geo.canvas_height))
            tile = geo.tile_at(x, y)
            if tile is None:
                # point is in a bezel: not inside any tile region
                for t in geo.tiles():
                    assert not t.region.contains(x, y)
            else:
                assert tile.region.contains(x, y)
                assert geo.tile_region(tile.row, tile.col) == tile.region

    @given(rows=st.integers(1, 4), cols=st.integers(1, 4), bezel=st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_displayed_pixels_vs_canvas(self, rows, cols, bezel):
        geo = WallGeometry(rows=rows, cols=cols, tile_width=20, tile_height=15,
                           bezel_px=bezel)
        assert geo.displayed_pixels <= geo.canvas_pixels
        if bezel == 0 or (rows == 1 and cols == 1):
            assert geo.displayed_pixels == geo.canvas_pixels
