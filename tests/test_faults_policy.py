"""Unit tests for the fault-tolerance primitives.

Covers the four building blocks the chaos suite composes: monotonic
:class:`Deadline` budgets, :class:`RetryPolicy` backoff, the
:class:`CircuitBreaker` state machine (driven by a fake clock — no
sleeps), seeded :class:`FaultPlan` decision schedules, and the hedging
policy/latency tracker pair.
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.cluster_serving.hedging import HedgePolicy, LatencyTracker
from repro.rpc.faults import FAULT_KINDS, FaultPlan
from repro.rpc.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryPolicy,
)
from repro.util.deadline import Deadline, DeadlineExceeded
from repro.util.errors import ValidationError


class TestDeadline:
    def test_unbounded_is_the_degenerate_case(self):
        d = Deadline.never()
        assert not d.bounded
        assert not d.expired
        assert d.remaining() is None
        assert d.clamp(12.5) == 12.5
        assert d.clamp(None) is None
        d.check("anything")  # never raises

    def test_after_ms_none_is_unbounded(self):
        assert not Deadline.after_ms(None).bounded
        assert Deadline.after_ms(50).bounded

    def test_remaining_counts_down_and_clamps_at_zero(self):
        d = Deadline(0.0)
        assert d.expired
        assert d.remaining() == 0.0
        assert d.clamp(10.0) == 0.0
        with pytest.raises(DeadlineExceeded, match="before gather completed"):
            d.check("gather")

    def test_clamp_takes_the_smaller_bound(self):
        d = Deadline(100.0)
        assert d.clamp(1.0) == 1.0  # local timeout tighter
        assert d.clamp(1000.0) < 100.1  # budget tighter
        assert d.clamp(None) is not None  # budget replaces "no timeout"

    def test_tighter_picks_the_earlier_expiry(self):
        short, long = Deadline(0.5), Deadline(60.0)
        merged = Deadline.tighter(short, long)
        assert merged.remaining() <= 0.5
        # None / unbounded participants never tighten
        assert Deadline.tighter(None, None).remaining() is None
        assert not Deadline.tighter(None, Deadline.never()).bounded
        assert Deadline.tighter(None, short).bounded

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            Deadline(-1.0)


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        rng = random.Random(0)
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.3)  # capped
        assert policy.delay(9, rng) == pytest.approx(0.3)

    def test_jitter_only_shortens(self):
        policy = RetryPolicy(base_delay=0.2, jitter=0.5)
        rng = random.Random(123)
        for i in range(1, 6):
            cap = min(policy.base_delay * policy.multiplier ** (i - 1), policy.max_delay)
            d = policy.delay(i, rng)
            assert 0.5 * cap <= d <= cap

    def test_seeded_rng_makes_delays_reproducible(self):
        policy = RetryPolicy()
        a = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        b = [policy.delay(i, random.Random(7)) for i in range(1, 4)]
        assert a == b

    def test_none_is_single_attempt(self):
        assert RetryPolicy.none().max_tries == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_tries=0)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        policy = RetryPolicy()
        with pytest.raises(ValidationError):
            policy.delay(0, random.Random(0))


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs) -> tuple[CircuitBreaker, FakeClock]:
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout", 10.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_threshold_opens_the_breaker(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == BREAKER_CLOSED
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)  # cool-off over
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # second caller waits for the verdict
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow() and breaker.allow()  # fully closed again

    def test_half_open_failure_reopens_immediately(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # a fresh cool-off window started
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # 2 < threshold again

    def test_snapshot_shape(self):
        breaker, clock = self.make()
        snap = breaker.snapshot()
        assert snap == {
            "state": BREAKER_CLOSED,
            "consecutive_failures": 0,
            "opens": 0,
            "retry_in_seconds": None,
        }
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_OPEN
        assert snap["retry_in_seconds"] == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout=0.0)


class TestFaultPlan:
    def test_same_seed_same_decision_sequence(self):
        a = FaultPlan(seed=7, reset_mid_frame=0.4, garbage=0.2)
        b = FaultPlan(seed=7, reset_mid_frame=0.4, garbage=0.2)
        assert [a.reply_fault("m") for _ in range(50)] == [
            b.reply_fault("m") for _ in range(50)
        ]

    def test_max_faults_budget_heals_the_plan(self):
        plan = FaultPlan(seed=1, reset_mid_frame=1.0, max_faults=3)
        draws = [plan.reply_fault("m") for _ in range(10)]
        assert draws[:3] == ["reset_mid_frame"] * 3
        assert draws[3:] == [None] * 7  # budget spent: the "node" healed
        assert plan.stats()["total_injected"] == 3

    def test_methods_filter(self):
        plan = FaultPlan(seed=1, reset_mid_frame=1.0, methods=("partials",))
        assert plan.reply_fault("__ping__") is None
        assert plan.reply_fault("partials") == "reset_mid_frame"

    def test_connect_fault_draws_from_the_same_budget(self):
        plan = FaultPlan(seed=1, connect_refused=1.0, max_faults=2)
        assert plan.connect_fault()
        assert plan.connect_fault()
        assert not plan.connect_fault()

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "seed=9, reset_mid_frame=0.3, stall=0.1, stall_seconds=2.5,"
            "max_faults=4, drip_chunk_bytes=3, methods=partials|info"
        )
        assert plan.seed == 9
        assert plan.rates["reset_mid_frame"] == pytest.approx(0.3)
        assert plan.rates["stall"] == pytest.approx(0.1)
        assert plan.stall_seconds == pytest.approx(2.5)
        assert plan.max_faults == 4
        assert plan.drip_chunk_bytes == 3
        assert plan.methods == ("partials", "info")
        assert "seed=9" in plan.describe()

    def test_parse_rejects_unknown_keys_and_bad_rates(self):
        with pytest.raises(ValidationError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValidationError):
            FaultPlan.parse("stall")
        with pytest.raises(ValidationError):
            FaultPlan(reset_mid_frame=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(drip_chunk_bytes=0)

    def test_inject_reply_kinds(self):
        """Each executed kind does what the chaos contract says on a real
        socket pair: drop-kinds return True, delivery-kinds get the full
        frame through eventually."""
        plan = FaultPlan(seed=0, drip_chunk_bytes=4, drip_interval=0.0, stall_seconds=0.0)
        frame = b"RPRC" + bytes(range(40))
        abort = threading.Event()

        def run(kind: str) -> tuple[bool, bytes]:
            a, b = socket.socketpair()
            try:
                dropped = plan.inject_reply(a, frame, kind=kind, abort=abort)
                a.close()
                received = b""
                while True:
                    chunk = b.recv(4096)
                    if not chunk:
                        break
                    received += chunk
                return dropped, received
            finally:
                b.close()

        dropped, got = run("reset_mid_frame")
        assert dropped and got == frame[: len(frame) // 2]
        dropped, got = run("garbage")
        assert dropped and got[:4] == b"JUNK"
        dropped, got = run("stall")
        assert not dropped and got == frame
        dropped, got = run("slow_drip")
        assert not dropped and got == frame

    def test_inject_reply_aborts_with_the_server(self):
        plan = FaultPlan(seed=0, stall_seconds=30.0)
        abort = threading.Event()
        abort.set()  # server already closing: the stall must not wait
        a, b = socket.socketpair()
        try:
            assert plan.inject_reply(a, b"RPRCxxxx", kind="stall", abort=abort)
        finally:
            a.close()
            b.close()

    def test_all_kinds_are_spellable(self):
        assert set(FAULT_KINDS) == {
            "connect_refused", "reset_mid_frame", "stall", "slow_drip", "garbage",
        }


class TestLatencyTracker:
    def test_percentile_nearest_rank(self):
        tracker = LatencyTracker()
        for v in [0.1, 0.2, 0.3, 0.4, 1.0]:
            tracker.add(v)
        assert tracker.percentile(0) == pytest.approx(0.1)
        assert tracker.percentile(50) == pytest.approx(0.3)
        assert tracker.percentile(100) == pytest.approx(1.0)
        assert tracker.percentile(95) == pytest.approx(1.0)

    def test_empty_and_bounded(self):
        tracker = LatencyTracker(maxlen=3)
        assert tracker.percentile(95) is None
        for v in [9.0, 9.0, 0.1, 0.1, 0.1]:
            tracker.add(v)
        assert len(tracker) == 3
        assert tracker.percentile(100) == pytest.approx(0.1)  # old spikes aged out

    def test_validation(self):
        with pytest.raises(ValidationError):
            LatencyTracker(maxlen=0)
        with pytest.raises(ValidationError):
            LatencyTracker().percentile(101)


class TestHedgePolicy:
    def test_delay_before_samples_is_initial(self):
        policy = HedgePolicy(initial_delay=0.07)
        assert policy.delay(LatencyTracker()) == pytest.approx(0.07)

    def test_delay_tracks_percentile_clamped(self):
        tracker = LatencyTracker()
        for v in [0.2] * 10:
            tracker.add(v)
        assert HedgePolicy(factor=1.0).delay(tracker) == pytest.approx(0.2)
        assert HedgePolicy(factor=100.0, max_delay=1.5).delay(tracker) == pytest.approx(1.5)
        assert HedgePolicy(factor=0.001, min_delay=0.05).delay(tracker) == pytest.approx(0.05)

    def test_disabled(self):
        policy = HedgePolicy.disabled()
        assert not policy.enabled
        assert policy.max_hedges == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            HedgePolicy(percentile=150.0)
        with pytest.raises(ValidationError):
            HedgePolicy(factor=0.0)
        with pytest.raises(ValidationError):
            HedgePolicy(min_delay=2.0, max_delay=1.0)
        with pytest.raises(ValidationError):
            HedgePolicy(max_hedges=-1)
