"""Tests for the wall's communication model: RLE codec + frame traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ForestView
from repro.synth import make_stress_compendium
from repro.util.errors import DataFormatError, ValidationError
from repro.wall import (
    DisplayWall,
    FrameTraffic,
    WallGeometry,
    estimate_traffic,
    rle_decode,
    rle_encode,
)


class TestRleCodec:
    def test_round_trip_random(self):
        rng = np.random.default_rng(0)
        pixels = rng.integers(0, 256, size=(13, 17, 3), dtype=np.uint8)
        assert np.array_equal(rle_decode(rle_encode(pixels)), pixels)

    @given(h=st.integers(1, 20), w=st.integers(1, 20), seed=st.integers(0, 2000),
           n_colors=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, h, w, seed, n_colors):
        rng = np.random.default_rng(seed)
        palette = rng.integers(0, 256, size=(n_colors, 3), dtype=np.uint8)
        pixels = palette[rng.integers(0, n_colors, size=(h, w))]
        assert np.array_equal(rle_decode(rle_encode(pixels)), pixels)

    def test_constant_image_compresses_hard(self):
        pixels = np.zeros((100, 300, 3), dtype=np.uint8)
        encoded = rle_encode(pixels)
        # 100 rows x 2 records (300 = 255 + 45) x 4 bytes + 8 header
        assert len(encoded) == 8 + 100 * 2 * 4
        assert len(encoded) < pixels.nbytes / 50

    def test_worst_case_no_smaller_than_4x(self):
        rng = np.random.default_rng(1)
        pixels = rng.integers(0, 256, size=(10, 50, 3), dtype=np.uint8)
        encoded = rle_encode(pixels)
        # each pixel may need its own 4-byte record, plus header
        assert len(encoded) <= 8 + pixels.shape[0] * pixels.shape[1] * 4

    def test_long_run_chunking(self):
        pixels = np.full((1, 1000, 3), 7, dtype=np.uint8)
        assert np.array_equal(rle_decode(rle_encode(pixels)), pixels)

    def test_bad_input_rejected(self):
        with pytest.raises(DataFormatError):
            rle_encode(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(DataFormatError):
            rle_encode(np.zeros((4, 4, 3), dtype=np.float64))
        with pytest.raises(DataFormatError):
            rle_decode(b"short")
        good = rle_encode(np.zeros((2, 2, 3), dtype=np.uint8))
        with pytest.raises(DataFormatError):
            rle_decode(good[:-1])  # ragged body
        with pytest.raises(DataFormatError):
            rle_decode(good[:8] + good[8:] * 2)  # run total mismatch


class TestFrameTraffic:
    def test_traffic_from_rendered_frame(self):
        comp = make_stress_compendium(n_genes=120, n_conditions=10, seed=17)
        app = ForestView.from_compendium(comp)
        geo = WallGeometry(rows=2, cols=2, tile_width=220, tile_height=160)
        wall = DisplayWall(geo, n_nodes=2, schedule="dynamic")
        frame = app.render_on_wall(wall)
        traffic = estimate_traffic(geo, frame.tile_pixels)
        assert traffic.n_tiles == 4
        assert traffic.raw_bytes == 4 * 220 * 160 * 3
        # application frames have large flat regions: RLE must win
        assert traffic.compression_ratio > 1.5

    def test_fps_model(self):
        traffic = FrameTraffic(raw_bytes=10_000_000, compressed_bytes=1_000_000, n_tiles=4)
        gigabit = 125_000_000  # bytes/s
        assert traffic.max_fps(gigabit) == pytest.approx(125.0)
        assert traffic.max_fps(gigabit, compressed=False) == pytest.approx(12.5)
        with pytest.raises(ValidationError):
            traffic.max_fps(0)

    def test_codec_none_equals_raw(self):
        geo = WallGeometry(rows=1, cols=1, tile_width=10, tile_height=10)
        pixels = {0: np.zeros((10, 10, 3), dtype=np.uint8)}
        traffic = estimate_traffic(geo, pixels, codec="none")
        assert traffic.compressed_bytes == traffic.raw_bytes

    def test_validation(self):
        geo = WallGeometry(rows=1, cols=1, tile_width=10, tile_height=10)
        with pytest.raises(ValidationError):
            estimate_traffic(geo, {}, codec="rle")
        with pytest.raises(ValidationError):
            estimate_traffic(geo, {5: np.zeros((10, 10, 3), dtype=np.uint8)})
        with pytest.raises(ValidationError):
            estimate_traffic(geo, {0: np.zeros((10, 10, 3), dtype=np.uint8)}, codec="zip")
