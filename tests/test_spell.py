"""Tests for SPELL: engine, index, service, baseline."""

import numpy as np
import pytest

from repro.api.protocol import SearchRequest
from repro.data import Compendium, Dataset, ExpressionMatrix
from repro.spell import (
    SpellEngine,
    SpellIndex,
    SpellService,
    TextSearchBaseline,
)
from repro.stats import average_precision, precision_at_k
from repro.synth import make_spell_compendium
from repro.util.errors import SearchError


@pytest.fixture(scope="module")
def searched(spell_setup_module):
    comp, truth = spell_setup_module
    engine = SpellEngine(comp)
    return comp, truth, engine, engine.search(list(truth.query_genes))


@pytest.fixture(scope="module")
def spell_setup_module():
    return make_spell_compendium(
        n_datasets=8,
        n_relevant=3,
        n_genes=150,
        n_conditions=12,
        module_size=15,
        query_size=4,
        seed=7,
    )


class TestEngine:
    def test_relevant_datasets_ranked_first(self, searched):
        comp, truth, _, result = searched
        top = result.top_datasets(len(truth.relevant_datasets))
        assert set(top) == set(truth.relevant_datasets)

    def test_relevant_weights_dominate(self, searched):
        _, truth, _, result = searched
        weights = {d.name: d.weight for d in result.datasets}
        min_rel = min(weights[d] for d in truth.relevant_datasets)
        max_irr = max(weights[d] for d in truth.irrelevant_datasets)
        assert min_rel > max_irr
        assert min_rel > 0.2

    def test_module_genes_retrieved(self, searched):
        _, truth, _, result = searched
        hidden = set(truth.module_genes) - set(truth.query_genes)
        ranking = result.gene_ranking()
        assert precision_at_k(ranking, hidden, len(hidden)) >= 0.9
        assert average_precision(ranking, hidden) >= 0.9

    def test_query_excluded_from_gene_ranking(self, searched):
        _, truth, _, result = searched
        assert not set(result.gene_ranking()) & set(truth.query_genes)

    def test_query_can_be_included(self, searched):
        comp, truth, engine, _ = searched
        result = engine.search(list(truth.query_genes), exclude_query_from_genes=False)
        ranking = result.gene_ranking()
        # query genes rank near the very top of their own search
        for q in truth.query_genes:
            assert ranking.index(q) < len(truth.module_genes) + 5

    def test_missing_query_gene_reported(self, searched):
        comp, truth, engine, _ = searched
        result = engine.search(list(truth.query_genes) + ["YZZ999W"])
        assert "YZZ999W" in result.query_missing
        assert set(result.query_used) == set(truth.query_genes)

    def test_all_unknown_query_raises(self, searched):
        _, _, engine, _ = searched
        with pytest.raises(SearchError):
            engine.search(["YZZ999W"])

    def test_empty_and_duplicate_query_raise(self, searched):
        _, truth, engine, _ = searched
        with pytest.raises(SearchError):
            engine.search([])
        with pytest.raises(SearchError):
            engine.search([truth.query_genes[0], truth.query_genes[0]])

    def test_single_gene_query_gets_no_weights(self):
        """One query gene => no pairwise coherence => all weights zero."""
        comp, truth = make_spell_compendium(
            n_datasets=4, n_relevant=2, n_genes=60, module_size=8, query_size=2, seed=3
        )
        engine = SpellEngine(comp)
        result = engine.search([truth.query_genes[0]])
        assert all(d.weight == 0.0 for d in result.datasets)
        assert len(result.genes) == 0

    def test_empty_compendium_rejected(self):
        with pytest.raises(SearchError):
            SpellEngine(Compendium())

    def test_parallel_workers_same_result(self, searched):
        comp, truth, _, serial = searched
        parallel = SpellEngine(comp, n_workers=4).search(list(truth.query_genes))
        assert parallel.dataset_ranking() == serial.dataset_ranking()
        assert parallel.gene_ranking() == serial.gene_ranking()

    def test_iterative_search_still_finds_module(self, searched):
        comp, truth, engine, _ = searched
        result = engine.search_iterative(list(truth.query_genes), rounds=2, grow_by=2)
        hidden = set(truth.module_genes) - set(truth.query_genes)
        assert precision_at_k(result.gene_ranking(), hidden, len(hidden)) >= 0.8
        assert result.query == tuple(truth.query_genes)

    def test_partial_gene_membership(self):
        """Genes present in only some datasets still get scores."""
        rng = np.random.default_rng(5)
        m1 = ExpressionMatrix(rng.normal(size=(6, 8)), [f"G{i}" for i in range(6)],
                              [f"c{i}" for i in range(8)])
        m2 = ExpressionMatrix(rng.normal(size=(4, 8)), ["G0", "G1", "G2", "EXTRA"],
                              [f"d{i}" for i in range(8)])
        comp = Compendium([Dataset(name="a", matrix=m1), Dataset(name="b", matrix=m2)])
        result = SpellEngine(comp).search(["G0", "G1"])
        # EXTRA only exists in dataset b; it appears iff b got positive weight
        names = set(result.gene_ranking())
        assert names <= {"G2", "G3", "G4", "G5", "EXTRA"}


class TestIndex:
    def test_index_matches_engine_on_complete_data(self):
        comp, truth = make_spell_compendium(
            n_datasets=6, n_relevant=2, n_genes=100, module_size=12, query_size=4,
            missing_fraction=0.0, seed=11,
        )
        engine_result = SpellEngine(comp).search(list(truth.query_genes))
        index_result = SpellIndex.build(comp).search(list(truth.query_genes))
        # identical data => identical weights and near-identical rankings
        ew = {d.name: d.weight for d in engine_result.datasets}
        iw = {d.name: d.weight for d in index_result.datasets}
        for name in ew:
            assert iw[name] == pytest.approx(ew[name], abs=1e-9)
        assert engine_result.dataset_ranking() == index_result.dataset_ranking()
        es = {g.gene_id: g.score for g in engine_result.genes}
        for g in index_result.genes:
            assert g.score == pytest.approx(es[g.gene_id], abs=1e-9)

    def test_index_close_to_engine_with_missing(self, spell_setup_module):
        comp, truth = spell_setup_module
        hidden = set(truth.module_genes) - set(truth.query_genes)
        result = SpellIndex.build(comp).search(list(truth.query_genes))
        assert precision_at_k(result.gene_ranking(), hidden, len(hidden)) >= 0.8
        assert set(result.top_datasets(3)) == set(truth.relevant_datasets)

    def test_index_nbytes_positive(self, spell_setup_module):
        comp, _ = spell_setup_module
        assert SpellIndex.build(comp).nbytes() > 0

    def test_index_query_validation(self, spell_setup_module):
        comp, _ = spell_setup_module
        idx = SpellIndex.build(comp)
        with pytest.raises(SearchError):
            idx.search([])
        with pytest.raises(SearchError):
            idx.search(["NOPE"])


class TestService:
    def test_search_page_shape(self, spell_setup_module):
        comp, truth = spell_setup_module
        service = SpellService(comp)
        page = service.respond(
            SearchRequest(genes=tuple(truth.query_genes), page=0, page_size=10)
        )
        assert len(page.gene_rows) == 10
        assert page.gene_rows[0][0] == 1  # ranks start at 1
        assert page.dataset_rows[0][2] >= page.dataset_rows[1][2]  # sorted by weight
        assert page.elapsed_seconds >= 0.0

    def test_pagination_continues_ranks(self, spell_setup_module):
        comp, truth = spell_setup_module
        service = SpellService(comp)
        p0 = service.respond(
            SearchRequest(genes=tuple(truth.query_genes), page=0, page_size=5)
        )
        p1 = service.respond(
            SearchRequest(genes=tuple(truth.query_genes), page=1, page_size=5)
        )
        assert p1.gene_rows[0][0] == 6
        assert {r[1] for r in p0.gene_rows}.isdisjoint({r[1] for r in p1.gene_rows})

    def test_latency_history(self, spell_setup_module):
        comp, truth = spell_setup_module
        service = SpellService(comp)
        with pytest.raises(SearchError):
            service.mean_latency()
        service.search(list(truth.query_genes))
        service.search(list(truth.query_genes))
        assert service.query_count == 2
        assert service.mean_latency() > 0

    def test_no_index_mode(self, spell_setup_module):
        comp, truth = spell_setup_module
        service = SpellService(comp, use_index=False)
        assert service.index_bytes() == 0
        result = service.search(list(truth.query_genes))
        assert set(result.top_datasets(3)) == set(truth.relevant_datasets)

    def test_page_validation(self, spell_setup_module):
        # the deprecated shim keeps its historical SearchError contract
        comp, truth = spell_setup_module
        service = SpellService(comp)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SearchError):
                service.search_page(list(truth.query_genes), page=-1)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SearchError):
                service.search_page(list(truth.query_genes), page_size=0)


class TestBaseline:
    def test_baseline_much_worse_than_spell(self, spell_setup_module):
        """The paper's motivation: text match misses co-expression structure."""
        comp, truth = spell_setup_module
        hidden = set(truth.module_genes) - set(truth.query_genes)
        spell_rank = SpellEngine(comp).search(list(truth.query_genes)).gene_ranking()
        text_rank = TextSearchBaseline(comp).search(list(truth.query_genes)).gene_ranking()
        k = len(hidden)
        assert precision_at_k(spell_rank, hidden, k) >= precision_at_k(text_rank, hidden, k) + 0.4

    def test_baseline_dataset_weight_is_presence_count(self, spell_setup_module):
        comp, truth = spell_setup_module
        result = TextSearchBaseline(comp).search(list(truth.query_genes))
        # every dataset contains all genes in this synthetic setup
        assert all(d.weight == len(truth.query_genes) for d in result.datasets)

    def test_baseline_validation(self, spell_setup_module):
        comp, _ = spell_setup_module
        baseline = TextSearchBaseline(comp)
        with pytest.raises(SearchError):
            baseline.search([])
        with pytest.raises(SearchError):
            TextSearchBaseline(Compendium())
