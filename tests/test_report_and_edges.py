"""Tests for session reports plus edge cases across the stack."""

import numpy as np
import pytest

from repro.core import ForestView, GolemAdapter, SpellAdapter, session_report
from repro.data import Compendium, Dataset, ExpressionMatrix
from repro.ontology import Golem
from repro.synth import make_annotated_ontology, make_case_study
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def reporting_setup():
    comp, truth = make_case_study(n_genes=120, n_conditions=10, n_knockouts=8, seed=71)
    app = ForestView.from_compendium(comp)
    genes = comp.gene_universe()
    onto, store, otruth = make_annotated_ontology(
        genes, n_terms=80, planted={"stress response": list(truth.esr_induced)}, seed=72
    )
    return app, truth, Golem(onto, store)


class TestSessionReport:
    def test_report_without_selection(self, reporting_setup):
        app, truth, _ = reporting_setup
        app.clear_selection()
        text = session_report(app)
        assert "FORESTVIEW SESSION REPORT" in text
        assert "(none)" in text
        for name in app.compendium.names:
            assert name in text

    def test_report_with_full_pipeline(self, reporting_setup):
        app, truth, golem = reporting_setup
        spell = SpellAdapter(app)
        result = spell.query(list(truth.esr_induced[:4]), top_n=10)
        golem_adapter = GolemAdapter(app, golem)
        app.select_genes(list(truth.esr_induced), source="refined")
        report = golem_adapter.enrich_selection()
        text = session_report(
            app, spell_result=result, enrichment=report, coherence_permutations=50
        )
        assert "SPELL SEARCH" in text
        assert "GO ENRICHMENT" in text
        assert "SELECTION ACROSS DATASETS" in text
        # coherence column shows permutation p-values
        assert "(p=" in text
        # deterministic given the seed
        again = session_report(
            app, spell_result=result, enrichment=report, coherence_permutations=50
        )
        assert text == again

    def test_gene_list_truncation(self, reporting_setup):
        app, truth, _ = reporting_setup
        app.select_genes(app.compendium[0].gene_ids[:30], source="many")
        text = session_report(app, coherence_permutations=0, max_genes_listed=10)
        assert "(+20 more)" in text

    def test_validation(self, reporting_setup):
        app, _, _ = reporting_setup
        with pytest.raises(ValidationError):
            session_report(app, coherence_permutations=-1)


class TestAssortedEdgeCases:
    def test_single_dataset_single_gene_selection(self):
        m = ExpressionMatrix(np.array([[1.0, 2.0, 3.0]]), ["G1"], ["a", "b", "c"])
        app = ForestView.from_compendium(Compendium([Dataset(name="one", matrix=m)]))
        app.select_genes(["G1"], source="t")
        views = app.zoom_views()
        assert views[0].n_rows == 1
        px = app.render(400, 200)
        assert px.shape == (200, 400, 3)

    def test_selection_of_gene_absent_everywhere_renders(self, reporting_setup):
        app, truth, _ = reporting_setup
        app.select_genes([app.compendium[0].gene_ids[0], "ZZZ999"], source="t")
        views = app.zoom_views()
        # absent row present in aligned views, all-NaN
        for view in views:
            assert view.gene_ids[-1] == "ZZZ999"
            assert not view.present[-1]

    def test_export_whole_universe_merged(self, reporting_setup):
        app, truth, _ = reporting_setup
        app.select_genes(list(truth.esr_induced[:3]), source="t")
        text = app.export_merged_text(selection_only=False)
        from repro.data import parse_pcl

        matrix = parse_pcl(text)
        assert matrix.n_genes == len(app.compendium.gene_universe())

    def test_spell_page_past_end_is_empty(self, reporting_setup):
        # the deprecated shim keeps its historical empty-page contract
        app, truth, _ = reporting_setup
        service = SpellAdapter(app).service
        with pytest.warns(DeprecationWarning, match="search_page is deprecated"):
            page = service.search_page(
                list(truth.esr_induced[:4]), page=10_000, page_size=50
            )
        assert page.gene_rows == ()
        assert page.total_genes > 0

    def test_golem_map_zero_radius(self, reporting_setup):
        app, truth, golem = reporting_setup
        focus = golem.ontology.term_ids()[0]
        lm = golem.local_map(focus, up=0, down=0)
        assert lm.term_ids() == [focus]

    def test_comm_send_to_self(self):
        from repro.parallel import run_ranks

        def fn(comm):
            comm.send("hello-self", dest=comm.rank, tag=1)
            return comm.recv(source=comm.rank, tag=1)

        assert run_ranks(fn, 2) == ["hello-self", "hello-self"]

    def test_viewport_column_scrolling(self):
        from repro.core import Viewport

        vp = Viewport(10, 100, visible_cols=20)
        vp.scroll_to(0, 95)
        assert vp.scroll_col == 80
        assert list(vp.col_range) == list(range(80, 100))

    def test_wall_single_tile_single_node(self):
        from repro.viz import DisplayList, RectCmd
        from repro.wall import DisplayWall, WallGeometry

        geo = WallGeometry(rows=1, cols=1, tile_width=50, tile_height=40)
        dl = DisplayList(50, 40)
        dl.add(RectCmd(10, 10, 20, 20, (200, 100, 50)))
        wall = DisplayWall(geo, n_nodes=1, schedule="static")
        frame = wall.render(dl)
        assert np.array_equal(frame.pixels, dl.render_full())

    def test_compendium_dataset_added_after_app_creation(self, reporting_setup):
        app, truth, _ = reporting_setup
        from repro.synth import make_simple_dataset

        before = len(app.panes)
        app.add_dataset(
            make_simple_dataset(name=f"late_{before}", n_genes=20, n_conditions=5,
                                n_module_genes=5, seed=99)
        )
        assert len(app.panes) == before + 1
        # new pane participates in synchronized views immediately
        app.select_genes(list(truth.esr_induced[:3]), source="t")
        assert len(app.zoom_views()) == before + 1
