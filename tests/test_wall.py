"""Tests for the simulated display wall: geometry, compositor, schedulers,
the full cluster render loop and fault injection."""

import numpy as np
import pytest

from repro.viz import Box, DisplayList, HeatmapCmd, LineCmd, RectCmd, TextCmd, get_colormap
from repro.wall import (
    DESKTOP_2MPIXEL,
    DisplayWall,
    FrameMetrics,
    WallGeometry,
    compose_tiles,
    cost_balanced_assignment,
    static_assignment,
)
from repro.util.errors import RenderError, ValidationError


def make_scene(geo: WallGeometry, seed: int = 0) -> DisplayList:
    rng = np.random.default_rng(seed)
    dl = DisplayList(geo.canvas_width, geo.canvas_height, background=(8, 8, 8))
    dl.add(RectCmd(5, 5, geo.canvas_width // 2, geo.canvas_height // 2, (30, 30, 60)))
    dl.add(
        HeatmapCmd(
            10, 10, geo.canvas_width // 3, geo.canvas_height - 20,
            rng.normal(size=(50, 12)), get_colormap("red-green"),
        )
    )
    dl.add(LineCmd(0, 0, geo.canvas_width - 1, geo.canvas_height - 1, (255, 255, 0)))
    dl.add(TextCmd(geo.canvas_width // 2, 12, "WALL TEST", (255, 255, 255)))
    return dl


class TestGeometry:
    def test_canvas_arithmetic_no_bezel(self):
        geo = WallGeometry(rows=2, cols=4, tile_width=100, tile_height=80)
        assert geo.canvas_width == 400 and geo.canvas_height == 160
        assert geo.n_tiles == 8
        assert geo.displayed_pixels == 8 * 100 * 80
        assert geo.canvas_pixels == geo.displayed_pixels

    def test_canvas_arithmetic_with_bezel(self):
        geo = WallGeometry(rows=2, cols=2, tile_width=100, tile_height=80, bezel_px=10)
        assert geo.canvas_width == 210 and geo.canvas_height == 170
        assert geo.displayed_pixels < geo.canvas_pixels

    def test_tile_regions_disjoint_cover(self):
        geo = WallGeometry(rows=2, cols=3, tile_width=50, tile_height=40)
        tiles = geo.tiles()
        assert len(tiles) == 6
        assert [t.tile_id for t in tiles] == list(range(6))
        covered = np.zeros((geo.canvas_height, geo.canvas_width), dtype=int)
        for t in tiles:
            covered[t.region.y : t.region.y1, t.region.x : t.region.x1] += 1
        assert (covered == 1).all()

    def test_tile_at_with_bezel(self):
        geo = WallGeometry(rows=1, cols=2, tile_width=100, tile_height=80, bezel_px=10)
        assert geo.tile_at(50, 40).tile_id == 0
        assert geo.tile_at(105, 40) is None  # bezel gap
        assert geo.tile_at(115, 40).tile_id == 1
        with pytest.raises(ValidationError):
            geo.tile_at(500, 0)

    def test_capability_ratio_vs_desktop(self):
        """§1: a wall gives ~two orders of magnitude over a 2-Mpixel desktop."""
        wall = WallGeometry(rows=3, cols=8, tile_width=2560, tile_height=1600)
        ratio = wall.capability_ratio(DESKTOP_2MPIXEL.displayed_pixels)
        assert ratio > 50  # order-of-magnitude claim territory

    def test_validation(self):
        with pytest.raises(ValidationError):
            WallGeometry(rows=0, cols=1, tile_width=10, tile_height=10)
        with pytest.raises(ValidationError):
            WallGeometry(rows=1, cols=1, tile_width=0, tile_height=10)
        with pytest.raises(ValidationError):
            WallGeometry(rows=1, cols=1, tile_width=10, tile_height=10, bezel_px=-1)
        geo = WallGeometry(rows=1, cols=1, tile_width=10, tile_height=10)
        with pytest.raises(ValidationError):
            geo.tile_region(1, 0)
        with pytest.raises(ValidationError):
            geo.capability_ratio(0)


class TestCompositor:
    def test_compose_reassembles(self):
        rng = np.random.default_rng(3)
        full = rng.integers(0, 256, size=(40, 60, 3), dtype=np.uint8)
        tiles = []
        for y in (0, 20):
            for x in (0, 30):
                tiles.append((Box(x, y, 30, 20), full[y : y + 20, x : x + 30].copy()))
        out = compose_tiles(60, 40, tiles, require_full_coverage=True)
        assert np.array_equal(out, full)

    def test_overlap_rejected(self):
        t = np.zeros((10, 10, 3), dtype=np.uint8)
        with pytest.raises(RenderError, match="overlap"):
            compose_tiles(20, 20, [(Box(0, 0, 10, 10), t), (Box(5, 5, 10, 10), t)])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RenderError, match="match region"):
            compose_tiles(20, 20, [(Box(0, 0, 10, 10), np.zeros((5, 5, 3), dtype=np.uint8))])

    def test_out_of_canvas_rejected(self):
        t = np.zeros((10, 10, 3), dtype=np.uint8)
        with pytest.raises(RenderError, match="exceeds"):
            compose_tiles(15, 15, [(Box(10, 10, 10, 10), t)])

    def test_coverage_enforcement(self):
        t = np.zeros((10, 10, 3), dtype=np.uint8)
        with pytest.raises(RenderError, match="uncovered"):
            compose_tiles(20, 20, [(Box(0, 0, 10, 10), t)], require_full_coverage=True)
        out = compose_tiles(20, 20, [(Box(0, 0, 10, 10), t)], background=(9, 9, 9))
        assert tuple(out[15, 15]) == (9, 9, 9)


class TestSchedulers:
    def _tiles(self):
        return WallGeometry(rows=3, cols=4, tile_width=20, tile_height=20).tiles()

    def test_static_assignment_covers_all(self):
        tiles = self._tiles()
        assignment = static_assignment(tiles, 5)
        ids = sorted(t.tile_id for ts in assignment.values() for t in ts)
        assert ids == list(range(12))
        sizes = [len(ts) for ts in assignment.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_cost_balanced_assignment_weights_content(self):
        geo = WallGeometry(rows=1, cols=4, tile_width=50, tile_height=50)
        dl = DisplayList(geo.canvas_width, geo.canvas_height)
        # pile many commands onto tile 0 only
        for i in range(30):
            dl.add(RectCmd(2, 2, 10, 1 + i % 5, (1, 1, 1)))
        assignment = cost_balanced_assignment(geo.tiles(), 2, dl)
        ids = sorted(t.tile_id for ts in assignment.values() for t in ts)
        assert ids == [0, 1, 2, 3]
        # the node holding tile 0 should get fewer other tiles
        for node_tiles in assignment.values():
            if any(t.tile_id == 0 for t in node_tiles):
                assert len(node_tiles) <= 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            static_assignment(self._tiles(), 0)


class TestDisplayWallRendering:
    @pytest.fixture
    def geo(self):
        return WallGeometry(rows=2, cols=3, tile_width=60, tile_height=50)

    @pytest.mark.parametrize(
        "schedule", ["static", "balanced", "dynamic", "workstealing", "rpc"]
    )
    def test_tiled_equals_serial(self, geo, schedule):
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=3, schedule=schedule)
        frame = wall.render(dl)
        ref = wall.render_serial(dl)
        assert np.array_equal(frame.pixels, ref.pixels)

    def test_metrics_populated(self, geo):
        wall = DisplayWall(geo, n_nodes=2, schedule="dynamic")
        frame = wall.render(make_scene(geo))
        m = frame.metrics
        assert m.n_tiles == 6 and m.n_nodes == 2
        assert sum(m.tiles_per_node.values()) == 6
        assert m.frame_seconds > 0
        assert m.parallel_speedup() > 0
        row = m.summary_row()
        assert row["n_tiles"] == 6.0

    def test_dynamic_survives_node_failure(self, geo):
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=3, schedule="dynamic")
        frame = wall.render(dl, fail_nodes={1})
        assert np.array_equal(frame.pixels, wall.render_serial(dl).pixels)
        assert frame.metrics.tiles_per_node[1] == 0
        assert frame.metrics.failed_nodes == (1,)

    def test_rpc_survives_node_failure(self, geo):
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=3, schedule="rpc")
        frame = wall.render(dl, fail_nodes={1})
        assert np.array_equal(frame.pixels, wall.render_serial(dl).pixels)
        assert frame.metrics.tiles_per_node[1] == 0
        assert frame.metrics.failed_nodes == (1,)
        assert sum(frame.metrics.tiles_per_node.values()) == 6

    def test_rpc_cannot_fail_all_nodes(self, geo):
        wall = DisplayWall(geo, n_nodes=2, schedule="rpc")
        with pytest.raises(ValidationError):
            wall.render(make_scene(geo), fail_nodes={0, 1})

    def test_workstealing_survives_multiple_failures(self, geo):
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=4, schedule="workstealing")
        frame = wall.render(dl, fail_nodes={0, 2})
        assert np.array_equal(frame.pixels, wall.render_serial(dl).pixels)

    def test_static_cannot_survive_failure(self, geo):
        wall = DisplayWall(geo, n_nodes=2, schedule="static")
        with pytest.raises(ValidationError, match="cannot survive"):
            wall.render(make_scene(geo), fail_nodes={0})

    def test_cannot_fail_all_nodes(self, geo):
        wall = DisplayWall(geo, n_nodes=2, schedule="dynamic")
        with pytest.raises(ValidationError):
            wall.render(make_scene(geo), fail_nodes={0, 1})

    def test_canvas_size_mismatch_rejected(self, geo):
        wall = DisplayWall(geo, n_nodes=2)
        wrong = DisplayList(10, 10)
        with pytest.raises(RenderError, match="does not match"):
            wall.render(wrong)

    def test_bezel_geometry_renders(self):
        geo = WallGeometry(rows=1, cols=2, tile_width=50, tile_height=40, bezel_px=8)
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=2, schedule="dynamic")
        frame = wall.render(dl)
        # composited canvas keeps the bezel region at background
        bezel_column = frame.pixels[:, 52, :]
        assert (bezel_column == 8).all()

    def test_frame_counter_increments(self, geo):
        wall = DisplayWall(geo, n_nodes=2)
        f1 = wall.render(make_scene(geo))
        f2 = wall.render(make_scene(geo))
        assert f2.metrics.frame_id == f1.metrics.frame_id + 1

    def test_unknown_schedule_rejected(self, geo):
        with pytest.raises(ValidationError):
            DisplayWall(geo, n_nodes=2, schedule="random")

    def test_more_nodes_than_tiles(self):
        geo = WallGeometry(rows=1, cols=2, tile_width=30, tile_height=30)
        dl = make_scene(geo)
        wall = DisplayWall(geo, n_nodes=5, schedule="dynamic")
        frame = wall.render(dl)
        assert np.array_equal(frame.pixels, wall.render_serial(dl).pixels)


class TestFrameMetrics:
    def _metrics(self):
        return FrameMetrics(
            frame_id=1, n_tiles=8, n_nodes=4, frame_seconds=2.0,
            busy_seconds={0: 1.5, 1: 1.5, 2: 1.5, 3: 1.5},
            tiles_per_node={0: 2, 1: 2, 2: 2, 3: 2},
        )

    def test_speedup_and_efficiency(self):
        m = self._metrics()
        assert m.total_busy() == 6.0
        assert m.parallel_speedup() == 3.0
        assert m.efficiency() == 0.75

    def test_imbalance(self):
        m = self._metrics()
        assert m.load_imbalance() == 1.0
        m.busy_seconds = {0: 3.0, 1: 1.0, 2: 1.0, 3: 1.0}
        assert m.load_imbalance() == 2.0

    def test_efficiency_with_failures(self):
        m = self._metrics()
        m.failed_nodes = (3,)
        assert m.efficiency() == 1.0  # 3.0 speedup over 3 live nodes
