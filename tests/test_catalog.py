"""The multi-tenant compendium catalog: residency, isolation, oracle.

The tentpole claim under test: a tenant served through
:class:`CompendiumCatalog` + :class:`ApiApp` answers **bit-identical**
(modulo timing fields) to a dedicated single-tenant ``SpellService``
built over the same datasets — multi-tenancy is routing, never a
different answer.  Around that oracle sit the catalog's own contracts:
lazy loads, the bounded LRU with the default tenant pinned, eviction
through the idempotent ``close()`` drain contract, filesystem-safe
tenant grammar, and the per-tenant stats rollup that feeds
``/v1/health``.
"""

from __future__ import annotations

import pytest

from repro.api.app import DEFAULT_TENANT as APP_DEFAULT_TENANT
from repro.api.app import ApiApp
from repro.api.errors import ApiError
from repro.data.compendium import Compendium
from repro.data.pcl import write_pcl
from repro.spell.catalog import DEFAULT_TENANT, CompendiumCatalog
from repro.spell.service import SpellService
from repro.synth import make_spell_compendium

COMPENDIUM_KWARGS = dict(
    n_datasets=6,
    n_relevant=2,
    n_genes=80,
    n_conditions=8,
    module_size=10,
    query_size=3,
    seed=7,
)


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(**COMPENDIUM_KWARGS)


def pcl_text(tmp_path, dataset) -> str:
    """The dataset as PCL text, exactly as a client would submit it."""
    path = tmp_path / f"{dataset.name}.pcl.src"
    write_pcl(dataset.matrix, path)
    return path.read_text(encoding="utf-8")


def ingest_all(catalog, tmp_path, tenant, datasets) -> None:
    for ds in datasets:
        catalog.ingest(tenant, ds.name, "pcl", pcl_text(tmp_path, ds))


def scrub(obj):
    """Drop the timing fields the oracle explicitly excludes."""
    if isinstance(obj, dict):
        return {
            k: scrub(v)
            for k, v in obj.items()
            if k not in ("elapsed_seconds", "total_seconds")
        }
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


class TestDefaultTenant:
    def test_app_and_catalog_agree_on_the_default_name(self):
        # app.py deliberately does not import the catalog (single-tenant
        # deployments never load it); this pin keeps the two constants
        # from drifting apart.
        assert APP_DEFAULT_TENANT == DEFAULT_TENANT == "default"

    def test_external_default_is_pinned_and_never_closed(self, setup, tmp_path):
        compendium, truth = setup
        with SpellService(compendium, n_workers=1) as svc:
            catalog = CompendiumCatalog(
                tmp_path, default_service=svc, max_resident=1
            )
            ingest_all(catalog, tmp_path, "t1", list(compendium)[:1])
            ingest_all(catalog, tmp_path, "t2", list(compendium)[:1])
            # two loads past the budget of 1: the default survives both
            tenant, service = catalog.resolve(None)
            assert tenant == DEFAULT_TENANT and service is svc
            catalog.close()
            # close() left the external default to its owner
            result = svc.search(truth.query_genes)
            assert result.genes


class TestResidency:
    def test_lazy_load_and_lru_eviction(self, setup, tmp_path):
        compendium, _ = setup
        catalog = CompendiumCatalog(tmp_path, max_resident=2)
        try:
            ingest_all(catalog, tmp_path, "alpha", list(compendium)[:2])
            ingest_all(catalog, tmp_path, "beta", list(compendium)[2:3])
            stats = catalog.stats()
            assert stats["alpha"]["resident"] and stats["beta"]["resident"]

            # a third tenant pushes the least-recently-used one out
            ingest_all(catalog, tmp_path, "gamma", list(compendium)[3:4])
            stats = catalog.stats()
            assert not stats["alpha"]["resident"]
            assert stats["alpha"]["evictions"] == 1
            assert stats["beta"]["resident"] and stats["gamma"]["resident"]
            assert stats["_catalog"]["resident"] == 2

            # touching the evicted tenant reloads it from its store
            # (mmap cold start) and evicts the new LRU victim instead
            _, service = catalog.resolve("alpha")
            assert sorted(ds.name for ds in service.compendium) == sorted(
                ds.name for ds in list(compendium)[:2]
            )
            stats = catalog.stats()
            assert stats["alpha"]["resident"]
            assert stats["alpha"]["loads"] == 2  # initial + reload
            assert not stats["beta"]["resident"]
        finally:
            catalog.close()

    def test_reload_after_eviction_serves_identical_rankings(
        self, setup, tmp_path
    ):
        compendium, truth = setup
        query = list(truth.query_genes)
        catalog = CompendiumCatalog(tmp_path, max_resident=1)
        try:
            ingest_all(catalog, tmp_path, "alpha", list(compendium)[:3])
            _, warm = catalog.resolve("alpha")
            baseline = [
                (g.gene_id, g.score) for g in warm.search(query).genes
            ]
            ingest_all(catalog, tmp_path, "other", list(compendium)[3:4])
            assert not catalog.stats()["alpha"]["resident"]
            _, cold = catalog.resolve("alpha")
            assert cold is not warm  # a genuinely new service instance
            again = [(g.gene_id, g.score) for g in cold.search(query).genes]
            assert again == baseline  # scores bit-identical across reload
        finally:
            catalog.close()

    def test_eviction_is_safe_mid_request(self, setup, tmp_path):
        """The drain contract: a closed (evicted) service still answers
        the in-flight request it was serving."""
        compendium, truth = setup
        catalog = CompendiumCatalog(tmp_path, max_resident=1)
        try:
            ingest_all(catalog, tmp_path, "alpha", list(compendium)[:2])
            _, victim = catalog.resolve("alpha")
            ingest_all(catalog, tmp_path, "other", list(compendium)[2:3])
            # victim has been evicted (closed) — but a caller holding the
            # reference finishes its request in-process
            result = victim.search(list(truth.query_genes))
            assert result.genes
        finally:
            catalog.close()


class TestGrammar:
    @pytest.mark.parametrize(
        "hostile",
        ["../evil", "a/b", ".hidden", "", "x" * 65, "a\x00b", "a b"],
    )
    def test_hostile_tenant_names_are_routing_errors(self, tmp_path, hostile):
        catalog = CompendiumCatalog(tmp_path)
        with pytest.raises(ApiError) as exc:
            catalog.resolve(hostile)
        assert exc.value.code == "UNKNOWN_COMPENDIUM"
        # nothing escaped the root: the only entry is the root itself
        assert list(tmp_path.parent.glob("evil")) == []

    def test_unknown_tenant_lists_known_names(self, setup, tmp_path):
        compendium, _ = setup
        catalog = CompendiumCatalog(tmp_path)
        ingest_all(catalog, tmp_path, "alpha", list(compendium)[:1])
        with pytest.raises(ApiError) as exc:
            catalog.resolve("nope")
        assert exc.value.code == "UNKNOWN_COMPENDIUM"
        assert exc.value.details["known"] == ["alpha"]
        catalog.close()


class TestOracle:
    """Tenant-scoped answers == a dedicated single-tenant service."""

    def test_search_and_batch_bit_identical_to_dedicated_service(
        self, setup, tmp_path
    ):
        compendium, truth = setup
        query = list(truth.query_genes)
        subset = list(compendium)[:3]

        catalog = CompendiumCatalog(tmp_path)
        ingest_all(catalog, tmp_path, "acme", subset)
        app = ApiApp(SpellService(compendium, n_workers=1), catalog=catalog)

        # the dedicated service is built over the *same submissions* the
        # tenant serves — the PCL text round-trip, not the in-memory
        # synthetic objects (PCL carries no free-form metadata)
        from repro.data.loader import parse_dataset

        submitted = [
            parse_dataset(pcl_text(tmp_path, ds), "pcl", name=ds.name)
            for ds in subset
        ]
        oracle = ApiApp(SpellService(Compendium(submitted), n_workers=1))
        try:
            for endpoint, payload in [
                ("search", {"genes": query, "page_size": 25}),
                (
                    "search/batch",
                    {"searches": [{"genes": query, "page_size": 10}] * 2},
                ),
                ("datasets", {}),
            ]:
                tenant_payload = dict(payload, compendium="acme")
                status, got = app.handle_wire(endpoint, tenant_payload)
                assert status == 200, got
                status, want = oracle.handle_wire(endpoint, payload)
                assert status == 200, want
                assert scrub(got) == scrub(want), endpoint
        finally:
            app.service.close()
            oracle.service.close()
            catalog.close()

    def test_tenants_are_isolated(self, setup, tmp_path):
        """A query routed to tenant A can never see tenant B's data."""
        compendium, truth = setup
        query = list(truth.query_genes)
        catalog = CompendiumCatalog(tmp_path)
        try:
            ingest_all(catalog, tmp_path, "a", list(compendium)[:2])
            ingest_all(catalog, tmp_path, "b", list(compendium)[2:5])
            _, svc_a = catalog.resolve("a")
            _, svc_b = catalog.resolve("b")
            names_a = {ds.name for ds in svc_a.compendium}
            names_b = {ds.name for ds in svc_b.compendium}
            assert not names_a & names_b
            result = svc_a.search(query)
            assert {d.name for d in result.datasets} <= names_a
        finally:
            catalog.close()


class TestIngest:
    def test_ingest_creates_tenant_and_bumps_fingerprint(self, setup, tmp_path):
        compendium, _ = setup
        catalog = CompendiumCatalog(tmp_path)
        try:
            ds0, ds1 = list(compendium)[:2]
            tenant, service, dataset = catalog.ingest(
                "fresh", ds0.name, "pcl", pcl_text(tmp_path, ds0)
            )
            assert tenant == "fresh" and dataset.name == ds0.name
            first = service.compendium.fingerprint
            _, service, _ = catalog.ingest(
                "fresh", ds1.name, "pcl", pcl_text(tmp_path, ds1)
            )
            assert service.compendium.fingerprint != first
            assert catalog.stats()["fresh"]["ingests"] == 2
            # the sources are durable: a brand-new catalog over the same
            # root serves both datasets without any in-memory state
            reopened = CompendiumCatalog(tmp_path)
            _, reloaded = reopened.resolve("fresh")
            assert sorted(d.name for d in reloaded.compendium) == sorted(
                [ds0.name, ds1.name]
            )
            reopened.close()
        finally:
            catalog.close()

    def test_duplicate_is_structured_409_and_store_untouched(
        self, setup, tmp_path
    ):
        compendium, _ = setup
        catalog = CompendiumCatalog(tmp_path)
        try:
            ds = list(compendium)[0]
            text = pcl_text(tmp_path, ds)
            _, service, _ = catalog.ingest("t", ds.name, "pcl", text)
            before = service.compendium.fingerprint
            with pytest.raises(ApiError) as exc:
                catalog.ingest("t", ds.name, "pcl", text)
            assert exc.value.code == "DATASET_EXISTS"
            assert exc.value.details == {"compendium": "t", "dataset": ds.name}
            assert service.compendium.fingerprint == before
        finally:
            catalog.close()
