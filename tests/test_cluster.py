"""Tests for repro.cluster: distances, hierarchical linkage, trees, k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import linkage as scipy_linkage
from scipy.spatial.distance import pdist, squareform

from repro.cluster import (
    DendrogramTree,
    cityblock_distance,
    correlation_distance,
    distance_matrix,
    euclidean_distance,
    hierarchical_cluster,
    kmeans,
    linkage_merges,
)
from repro.util.errors import ValidationError


def random_data(seed: int, n: int = 10, d: int = 8, missing: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if missing:
        X[rng.random(X.shape) < missing] = np.nan
    return X


# ---------------------------------------------------------------------------
# distances
# ---------------------------------------------------------------------------
class TestDistances:
    def test_correlation_distance_range_and_diag(self):
        D = correlation_distance(random_data(0, missing=0.1))
        assert np.allclose(np.diag(D), 0.0)
        assert (D >= -1e-12).all() and (D <= 2.0 + 1e-12).all()
        assert np.allclose(D, D.T)

    def test_correlation_distance_perfect_pairs(self):
        X = np.array([[1.0, 2.0, 3.0, 4.0], [2.0, 4.0, 6.0, 8.0], [4.0, 3.0, 2.0, 1.0]])
        D = correlation_distance(X)
        assert D[0, 1] == pytest.approx(0.0, abs=1e-12)  # r = +1
        assert D[0, 2] == pytest.approx(2.0, abs=1e-12)  # r = -1

    def test_euclidean_matches_scipy_complete(self):
        X = random_data(1)
        D = euclidean_distance(X)
        ref = squareform(pdist(X, metric="euclidean"))
        assert np.allclose(D, ref, atol=1e-9)

    def test_cityblock_matches_scipy_complete(self):
        X = random_data(2)
        D = cityblock_distance(X)
        ref = squareform(pdist(X, metric="cityblock"))
        assert np.allclose(D, ref, atol=1e-9)

    def test_missing_data_still_total(self):
        for metric in ("correlation", "euclidean", "cityblock"):
            D = distance_matrix(random_data(3, missing=0.3), metric=metric)
            assert not np.isnan(D).any(), metric
            assert np.allclose(np.diag(D), 0.0), metric

    def test_unknown_metric(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            distance_matrix(random_data(0), metric="cosine")


# ---------------------------------------------------------------------------
# hierarchical clustering
# ---------------------------------------------------------------------------
class TestLinkage:
    @pytest.mark.parametrize("method", ["single", "complete", "average"])
    def test_matches_scipy_heights(self, method):
        X = random_data(4, n=12)
        D = squareform(pdist(X))
        mine = linkage_merges(D, linkage=method)
        ref = scipy_linkage(pdist(X), method=method)
        # merge heights (sorted) must agree even if tie-broken differently
        assert np.allclose(np.sort(mine[:, 2]), np.sort(ref[:, 2]), atol=1e-9)

    def test_ward_matches_scipy_heights(self):
        X = random_data(5, n=10)
        D = squareform(pdist(X))
        mine = linkage_merges(D, linkage="ward")
        ref = scipy_linkage(pdist(X), method="ward")
        assert np.allclose(np.sort(mine[:, 2]), np.sort(ref[:, 2]), atol=1e-8)

    @given(seed=st.integers(0, 5000), n=st.integers(2, 15))
    @settings(max_examples=30, deadline=None)
    def test_monotone_heights_property(self, seed, n):
        """single/complete/average linkage produce non-decreasing merge heights."""
        X = random_data(seed, n=n)
        D = euclidean_distance(X)
        for method in ("single", "complete", "average"):
            merges = linkage_merges(D, linkage=method)
            heights = merges[:, 2]
            assert (np.diff(heights) >= -1e-9).all(), method

    def test_merge_structure_invariants(self):
        D = euclidean_distance(random_data(6, n=9))
        merges = linkage_merges(D)
        n = 9
        assert merges.shape == (n - 1, 4)
        used: set[int] = set()
        for step, (li, ri, _h, size) in enumerate(merges):
            li, ri = int(li), int(ri)
            assert li not in used and ri not in used  # each cluster merged once
            used.update((li, ri))
            assert li < n + step and ri < n + step  # children precede parent
        assert merges[-1, 3] == n  # final cluster holds everything

    def test_validation(self):
        with pytest.raises(ValidationError):
            linkage_merges(np.zeros((2, 3)))
        with pytest.raises(ValidationError):
            linkage_merges(np.zeros((1, 1)))
        asym = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError, match="symmetric"):
            linkage_merges(asym)
        nan_d = np.array([[0.0, np.nan], [np.nan, 0.0]])
        with pytest.raises(ValidationError, match="NaN"):
            linkage_merges(nan_d)
        with pytest.raises(ValidationError, match="unknown linkage"):
            linkage_merges(np.zeros((3, 3)), linkage="median")

    def test_two_separated_groups_recovered(self):
        rng = np.random.default_rng(7)
        group_a = rng.normal(0, 0.1, size=(5, 4))
        group_b = rng.normal(10, 0.1, size=(5, 4))
        X = np.vstack([group_a, group_b])
        tree = hierarchical_cluster(X, metric="euclidean", linkage="average")
        clusters = tree.cut_k(2)
        sets = [frozenset(c) for c in clusters]
        assert frozenset(range(5)) in sets and frozenset(range(5, 10)) in sets


# ---------------------------------------------------------------------------
# dendrogram tree
# ---------------------------------------------------------------------------
class TestDendrogramTree:
    def _tree(self, seed=8, n=10):
        return hierarchical_cluster(random_data(seed, n=n))

    def test_leaf_order_is_permutation(self):
        tree = self._tree()
        assert sorted(tree.leaf_order()) == list(range(10))

    def test_node_lookup(self):
        tree = self._tree()
        root = tree.root
        assert tree.node(root.node_id) is root
        assert root.node_id in tree
        with pytest.raises(KeyError):
            tree.node("NOPE")

    def test_internal_count(self):
        tree = self._tree(n=7)
        assert len(tree.internal_nodes()) == 6

    def test_cut_at_height_extremes(self):
        tree = self._tree()
        assert len(tree.cut_at_height(tree.max_height() + 1)) == 1
        leaves = tree.cut_at_height(-1.0)
        assert len(leaves) == 10 and all(len(c) == 1 for c in leaves)

    def test_cut_k(self):
        tree = self._tree()
        for k in (1, 3, 10):
            clusters = tree.cut_k(k)
            assert len(clusters) == k
            flat = sorted(i for c in clusters for i in c)
            assert flat == list(range(10))
        with pytest.raises(ValidationError):
            tree.cut_k(0)
        with pytest.raises(ValidationError):
            tree.cut_k(11)

    @given(seed=st.integers(0, 3000), n=st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_merges_round_trip_property(self, seed, n):
        tree = hierarchical_cluster(random_data(seed, n=n))
        again = DendrogramTree.from_merges(tree.to_merges())
        assert again.n_leaves == tree.n_leaves
        assert again.leaf_order() == tree.leaf_order()
        h1 = [node.height for node in tree.internal_nodes()]
        h2 = [node.height for node in again.internal_nodes()]
        assert np.allclose(sorted(h1), sorted(h2))

    def test_from_merges_validation(self):
        with pytest.raises(ValidationError):
            DendrogramTree.from_merges(np.empty((0, 4)))
        bad = np.array([[0.0, 5.0, 1.0, 2.0]])  # node 5 does not exist
        with pytest.raises(ValidationError):
            DendrogramTree.from_merges(bad)


# ---------------------------------------------------------------------------
# k-means
# ---------------------------------------------------------------------------
class TestKMeans:
    def test_separated_clusters_found(self):
        rng = np.random.default_rng(11)
        X = np.vstack(
            [rng.normal(0, 0.2, (10, 3)), rng.normal(8, 0.2, (10, 3))]
        )
        result = kmeans(X, 2, seed=1)
        labels_a = set(result.labels[:10].tolist())
        labels_b = set(result.labels[10:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b
        assert result.converged

    def test_inertia_decreases_with_more_clusters(self):
        X = random_data(12, n=30, d=4)
        i2 = kmeans(X, 2, seed=2).inertia
        i8 = kmeans(X, 8, seed=2).inertia
        assert i8 < i2

    def test_handles_missing_values(self):
        X = random_data(13, n=15, d=5, missing=0.2)
        result = kmeans(X, 3, seed=3)
        assert result.labels.shape == (15,)
        assert np.isfinite(result.inertia)

    def test_k_equals_n(self):
        X = random_data(14, n=5, d=3)
        result = kmeans(X, 5, seed=4)
        assert len(set(result.labels.tolist())) == 5
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        X = random_data(15, n=4)
        with pytest.raises(ValidationError):
            kmeans(X, 0)
        with pytest.raises(ValidationError):
            kmeans(X, 5)

    def test_deterministic_given_seed(self):
        X = random_data(16, n=20, d=4)
        a = kmeans(X, 3, seed=7)
        b = kmeans(X, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_cluster_members(self):
        X = random_data(17, n=10, d=3)
        result = kmeans(X, 2, seed=5)
        members = result.cluster_members(0)
        assert (result.labels[members] == 0).all()
