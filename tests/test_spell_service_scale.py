"""Tests for the serving-grade SPELL subsystem: result cache, batched
queries, and incremental index maintenance."""

import threading

import numpy as np
import pytest

from repro.api.protocol import BatchSearchRequest, SearchRequest
from repro.data import Compendium, Dataset, ExpressionMatrix
from repro.spell import (
    QueryCache,
    SpellIndex,
    SpellService,
    canonical_query,
    query_key,
)
from repro.synth import make_spell_compendium
from repro.util import LruCache
from repro.util.errors import SearchError, ValidationError


@pytest.fixture()
def small_setup():
    """A compendium small enough to mutate freely in every test."""
    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=80,
        n_conditions=10,
        module_size=10,
        query_size=3,
        seed=99,
    )


# ---------------------------------------------------------------------- LRU
class TestLruCache:
    def test_put_get_and_stats(self):
        lru = LruCache(max_entries=2)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("b") is None
        assert lru.stats() == {
            "entries": 1, "max_entries": 2, "hits": 1, "misses": 1, "evictions": 0,
            "hot_entry_hits": 1,
        }

    def test_eviction_order_respects_recency(self):
        lru = LruCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b is now oldest
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.evictions == 1

    def test_put_existing_key_updates_without_eviction(self):
        lru = LruCache(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)
        assert lru.get("a") == 10
        assert len(lru) == 2
        assert lru.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValidationError):
            LruCache(max_entries=0)

    def test_concurrent_access_is_safe(self):
        lru = LruCache(max_entries=64)

        def worker(base):
            for i in range(200):
                lru.put((base, i % 80), i)
                lru.get((base, (i * 7) % 80))

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(lru) <= 64


# ------------------------------------------------------------------- keying
class TestQueryKeys:
    def test_canonical_query_sorts_and_dedupes(self):
        assert canonical_query(["B", "A", "B"]) == ("A", "B")

    def test_query_key_order_insensitive(self):
        assert query_key(3, ["X", "Y"]) == query_key(3, ["Y", "X"])

    def test_query_key_version_sensitive(self):
        assert query_key(3, ["X"]) != query_key(4, ["X"])

    def test_query_key_extra_params(self):
        assert query_key(1, ["X"], extra=(0, 20)) != query_key(1, ["X"], extra=(1, 20))

    def test_query_cache_round_trip(self):
        cache = QueryCache(max_entries=4)
        cache.store(7, ["b", "a"], "answer")
        assert cache.lookup(7, ["a", "b"]) == "answer"
        assert cache.lookup(8, ["a", "b"]) is None  # version invalidates
        assert cache.hits == 1 and cache.misses == 1


# ------------------------------------------------------------ version token
class TestCompendiumVersion:
    def test_version_bumps_on_every_mutation(self, small_setup):
        comp, _ = small_setup
        v0 = comp.version
        ds = comp[0]
        comp.remove(ds.name)
        assert comp.version == v0 + 1
        comp.add(ds)
        assert comp.version == v0 + 2
        comp.reorder(list(reversed(comp.names)))
        assert comp.version == v0 + 3

    def test_fresh_compendium_counts_constructor_adds(self):
        comp, _ = make_spell_compendium(
            n_datasets=3, n_relevant=2, n_genes=40, module_size=6, query_size=2, seed=1
        )
        assert comp.version == 3


# ------------------------------------------------------------- result cache
class TestServiceCache:
    def test_repeat_query_hits_cache_with_identical_result(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp)
        first = service.search(list(truth.query_genes))
        second = service.search(list(truth.query_genes))
        assert service.cache_stats()["hits"] == 1
        assert first.gene_ranking() == second.gene_ranking()
        assert first.dataset_ranking() == second.dataset_ranking()

    def test_permuted_query_shares_cache_entry(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp)
        q = list(truth.query_genes)
        a = service.search(q)
        b = service.search(list(reversed(q)))
        assert service.cache_stats()["hits"] == 1
        assert a.gene_ranking() == b.gene_ranking()
        # attribution fields follow the caller's order, not the cached one
        assert b.query == tuple(reversed(q))

    def test_mutation_invalidates_cache(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp)
        q = list(truth.query_genes)
        service.search(q)
        removed = comp[comp.names[-1]]
        comp.remove(removed.name)
        stale_free = service.search(q)
        assert service.cache_stats()["hits"] == 0  # version changed => miss
        assert removed.name not in stale_free.dataset_ranking()

    def test_cached_result_matches_fresh_service_after_mutation(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp)
        q = list(truth.query_genes)
        service.search(q)
        comp.remove(comp.names[-1])
        incremental = service.search(q)
        fresh = SpellService(comp, cache_size=0).search(q)
        assert incremental.dataset_ranking() == fresh.dataset_ranking()
        assert [(g.gene_id, g.score) for g in incremental.genes] == [
            (g.gene_id, g.score) for g in fresh.genes
        ]

    def test_cache_disabled(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp, cache_size=0)
        service.search(list(truth.query_genes))
        service.search(list(truth.query_genes))
        assert service.cache_stats() == {
            "entries": 0, "max_entries": 0, "hits": 0, "misses": 0, "evictions": 0,
        }  # disabled cache: bare counters, no admission/hot-entry fields

    def test_validation_still_applies_with_cache(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp)
        service.search(list(truth.query_genes))
        with pytest.raises(SearchError):
            service.search([])
        with pytest.raises(SearchError):
            service.search([truth.query_genes[0], truth.query_genes[0]])

    def test_engine_mode_caches_too(self, small_setup):
        comp, truth = small_setup
        service = SpellService(comp, use_index=False)
        a = service.search(list(truth.query_genes))
        b = service.search(list(truth.query_genes))
        assert service.cache_stats()["hits"] == 1
        assert a.gene_ranking() == b.gene_ranking()


# ---------------------------------------------------------- batched queries
class TestSearchMany:
    def _queries(self, comp, truth, n=6):
        universe = comp.gene_universe()
        qs = [list(truth.query_genes)]
        for i in range(n - 1):
            qs.append([universe[(3 * i) % len(universe)], universe[(3 * i + 1) % len(universe)]])
        return qs

    @staticmethod
    def _batch_request(queries, *, page_size=20, scheduler="map"):
        return BatchSearchRequest(
            searches=tuple(
                SearchRequest(genes=tuple(q), page_size=page_size) for q in queries
            ),
            scheduler=scheduler,
        )

    @pytest.mark.parametrize("scheduler", ["map", "steal"])
    def test_batch_matches_serial_search(self, small_setup, scheduler):
        comp, truth = small_setup
        queries = self._queries(comp, truth)
        batched = SpellService(comp, n_workers=3, cache_size=0).respond_batch(
            self._batch_request(queries, page_size=10, scheduler=scheduler)
        )
        serial = SpellService(comp, cache_size=0)
        assert len(batched.results) == len(queries)
        for query, page in zip(queries, batched.results):
            expect = serial.respond(
                SearchRequest(genes=tuple(query), page_size=10)
            )
            assert page.gene_rows == expect.gene_rows
            assert page.dataset_rows == expect.dataset_rows
            assert page.query == expect.query

    def test_batch_timing_and_counters(self, small_setup):
        comp, truth = small_setup
        queries = self._queries(comp, truth)
        service = SpellService(comp, n_workers=2)
        batch = service.respond_batch(self._batch_request(queries))
        assert batch.total_seconds > 0
        assert batch.queries_per_second > 0
        assert batch.n_workers == 2
        assert batch.cache_misses == len(queries)
        again = service.respond_batch(self._batch_request(queries))
        assert again.cache_hits == len(queries)

    def test_empty_batch_rejected(self, small_setup):
        # the deprecated shim keeps its historical SearchError contract
        comp, _ = small_setup
        with pytest.warns(DeprecationWarning, match="search_many is deprecated"):
            with pytest.raises(SearchError):
                SpellService(comp).search_many([])

    def test_unknown_scheduler_rejected(self, small_setup):
        comp, truth = small_setup
        with pytest.warns(DeprecationWarning, match="search_many is deprecated"):
            with pytest.raises(SearchError):
                SpellService(comp).search_many(
                    [list(truth.query_genes)], scheduler="magic"
                )


# ------------------------------------------------------- incremental index
class TestIncrementalIndex:
    def test_add_dataset_matches_fresh_build(self, small_setup):
        comp, truth = small_setup
        datasets = list(comp)
        grown = SpellIndex.build(Compendium(datasets[:-1]))
        grown.add_dataset(datasets[-1])
        fresh = SpellIndex.build(comp)
        q = list(truth.query_genes)
        a, b = grown.search(q), fresh.search(q)
        assert a.dataset_ranking() == b.dataset_ranking()
        assert [(g.gene_id, g.score) for g in a.genes] == [
            (g.gene_id, g.score) for g in b.genes
        ]

    def test_remove_dataset_matches_fresh_build(self, small_setup):
        comp, truth = small_setup
        datasets = list(comp)
        shrunk = SpellIndex.build(comp)
        shrunk.remove_dataset(datasets[-1].name)
        fresh = SpellIndex.build(Compendium(datasets[:-1]))
        q = list(truth.query_genes)
        a, b = shrunk.search(q), fresh.search(q)
        assert a.dataset_ranking() == b.dataset_ranking()
        assert [(g.gene_id, g.score) for g in a.genes] == [
            (g.gene_id, g.score) for g in b.genes
        ]

    def test_duplicate_add_and_missing_remove_rejected(self, small_setup):
        comp, _ = small_setup
        index = SpellIndex.build(comp)
        with pytest.raises(ValidationError):
            index.add_dataset(comp[0])
        with pytest.raises(ValidationError):
            index.remove_dataset("no-such-dataset")

    def test_parallel_build_matches_serial(self, small_setup):
        comp, truth = small_setup
        q = list(truth.query_genes)
        a = SpellIndex.build(comp, n_workers=1).search(q)
        b = SpellIndex.build(comp, n_workers=4).search(q)
        assert a.dataset_ranking() == b.dataset_ranking()
        assert [(g.gene_id, g.score) for g in a.genes] == [
            (g.gene_id, g.score) for g in b.genes
        ]

    def test_same_name_replacement_is_reindexed(self, small_setup):
        """Swapping a dataset for new data under the *same name* must not
        serve shards normalized from the old values."""
        comp, truth = small_setup
        q = list(truth.query_genes)
        service = SpellService(comp)
        service_result_before = service.search(q)
        name = comp.names[0]
        old = comp.remove(name)
        values = np.array(old.matrix.values)
        flip_row = next(
            i for i, g in enumerate(old.matrix.gene_ids) if g not in set(q)
        )
        values[flip_row] = -values[flip_row]  # flipped gene: correlations invert
        replacement = Dataset(
            name=name,
            matrix=ExpressionMatrix(
                values,
                list(old.matrix.gene_ids),
                list(old.matrix.condition_names),
            ),
        )
        comp.add(replacement)
        swapped = service.search(q)
        fresh = SpellService(comp, cache_size=0).search(q)
        assert [(d.name, d.weight) for d in swapped.datasets] == [
            (d.name, d.weight) for d in fresh.datasets
        ]
        assert [(g.gene_id, g.score) for g in swapped.genes] == [
            (g.gene_id, g.score) for g in fresh.genes
        ]
        # the scenario must actually discriminate: the flipped gene's score
        # changed, so a stale shard would have produced different rankings
        pre = {g.gene_id: g.score for g in service_result_before.genes}
        post = {g.gene_id: g.score for g in swapped.genes}
        flipped = old.matrix.gene_ids[flip_row]
        assert flipped in pre and flipped in post and pre[flipped] != post[flipped]

    def test_updated_is_copy_on_write(self, small_setup):
        """updated() leaves the receiver untouched for in-flight readers."""
        comp, truth = small_setup
        q = list(truth.query_genes)
        index = SpellIndex.build(comp)
        before = index.search(q)
        shrunk = Compendium(list(comp)[:-1])
        new_index = index.updated(shrunk)
        assert new_index.n_datasets == len(comp) - 1
        assert index.n_datasets == len(comp)
        after = index.search(q)
        assert before.dataset_ranking() == after.dataset_ranking()
        assert [(g.gene_id, g.score) for g in before.genes] == [
            (g.gene_id, g.score) for g in after.genes
        ]

    def test_service_syncs_index_on_compendium_growth(self, small_setup):
        comp, truth = small_setup
        datasets = list(comp)
        base = Compendium(datasets[:-1])
        service = SpellService(base)
        q = list(truth.query_genes)
        before = service.search(q)
        assert datasets[-1].name not in before.dataset_ranking()
        base.add(datasets[-1])
        after = service.search(q)
        assert datasets[-1].name in after.dataset_ranking()
        fresh = SpellService(Compendium(datasets), cache_size=0).search(q)
        assert after.dataset_ranking() == fresh.dataset_ranking()
