"""Tests for ExpressionMatrix and GeneAnnotations."""

import numpy as np
import pytest

from repro.data import ExpressionMatrix, GeneAnnotations
from repro.util.errors import ValidationError


class TestExpressionMatrixConstruction:
    def test_basic_shape_and_metadata(self, small_matrix):
        assert small_matrix.shape == (4, 3)
        assert small_matrix.n_genes == 4
        assert small_matrix.n_conditions == 3
        assert small_matrix.gene_names == ["ALPHA", "BETA", "GAMMA", "DELTA"]

    def test_default_names_and_weights(self):
        m = ExpressionMatrix(np.zeros((2, 2)), ["A", "B"], ["c1", "c2"])
        assert m.gene_names == ["A", "B"]
        assert np.array_equal(m.gene_weights, [1.0, 1.0])
        assert np.array_equal(m.condition_weights, [1.0, 1.0])

    def test_duplicate_gene_ids_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ExpressionMatrix(np.zeros((2, 1)), ["A", "A"], ["c"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            ExpressionMatrix(np.zeros((2, 1)), ["A"], ["c"])
        with pytest.raises(ValidationError):
            ExpressionMatrix(np.zeros((2, 1)), ["A", "B"], ["c", "d"])
        with pytest.raises(ValidationError):
            ExpressionMatrix(np.zeros((2, 1)), ["A", "B"], ["c"], gene_names=["X"])
        with pytest.raises(ValidationError):
            ExpressionMatrix(
                np.zeros((2, 1)), ["A", "B"], ["c"], gene_weights=np.ones(3)
            )

    def test_non_2d_rejected(self):
        with pytest.raises(ValidationError):
            ExpressionMatrix(np.zeros(4), ["A"], ["c"])


class TestExpressionMatrixLookup:
    def test_contains_and_index(self, small_matrix):
        assert "G2" in small_matrix
        assert "NOPE" not in small_matrix
        assert small_matrix.index_of("G3") == 2
        with pytest.raises(KeyError):
            small_matrix.index_of("NOPE")

    def test_indices_of_missing_modes(self, small_matrix):
        assert small_matrix.indices_of(["G4", "G1"]) == [3, 0]
        assert small_matrix.indices_of(["G4", "ZZ", "G1"], missing="skip") == [3, 0]
        with pytest.raises(KeyError):
            small_matrix.indices_of(["ZZ"], missing="raise")
        with pytest.raises(ValidationError):
            small_matrix.indices_of(["G1"], missing="bogus")

    def test_row_is_view(self, small_matrix):
        row = small_matrix.row("G1")
        assert row.base is not None  # a view, not a copy
        assert row.tolist() == [1.0, -1.0, 0.5]


class TestExpressionMatrixSubset:
    def test_subset_genes_order_preserved(self, small_matrix):
        sub = small_matrix.subset_genes(["G4", "G2"])
        assert sub.gene_ids == ["G4", "G2"]
        assert np.allclose(sub.values[0], small_matrix.row("G4"), equal_nan=True)
        assert sub.gene_names == ["DELTA", "BETA"]

    def test_subset_rows_bounds(self, small_matrix):
        sub = small_matrix.subset_rows([2, 0])
        assert sub.gene_ids == ["G3", "G1"]
        with pytest.raises(ValidationError):
            small_matrix.subset_rows([5])

    def test_subset_conditions(self, small_matrix):
        sub = small_matrix.subset_conditions([2, 0])
        assert sub.condition_names == ["c3", "c1"]
        assert sub.values[0].tolist() == [0.5, 1.0]
        with pytest.raises(ValidationError):
            small_matrix.subset_conditions([7])

    def test_reorder_requires_permutation(self, small_matrix):
        re = small_matrix.reorder_genes([3, 2, 1, 0])
        assert re.gene_ids == ["G4", "G3", "G2", "G1"]
        with pytest.raises(ValidationError):
            small_matrix.reorder_genes([0, 0, 1, 2])

    def test_with_values_shape_checked(self, small_matrix):
        replaced = small_matrix.with_values(np.zeros((4, 3)))
        assert replaced.gene_ids == small_matrix.gene_ids
        with pytest.raises(ValidationError):
            small_matrix.with_values(np.zeros((3, 3)))

    def test_equals(self, small_matrix):
        assert small_matrix.equals(small_matrix.subset_rows([0, 1, 2, 3]))
        other = small_matrix.with_values(small_matrix.values + 1.0)
        assert not small_matrix.equals(other)

    def test_missing_fraction(self, small_matrix):
        assert small_matrix.missing_fraction() == pytest.approx(1 / 12)


class TestGeneAnnotations:
    def test_set_get_record(self):
        ann = GeneAnnotations()
        ann.set("G1", "NAME", "HSP104")
        ann.set("G1", "DESCRIPTION", "heat shock protein")
        assert ann.get("G1", "NAME") == "HSP104"
        assert ann.get("G1", "MISSING", "dflt") == "dflt"
        assert ann.record("G1")["DESCRIPTION"] == "heat shock protein"
        assert ann.record("ZZ") == {}
        assert "G1" in ann and len(ann) == 1

    def test_new_field_registered(self):
        ann = GeneAnnotations(["NAME"])
        ann.set("G1", "PROCESS", "transport")
        assert "PROCESS" in ann.fields

    def test_empty_fields_rejected(self):
        with pytest.raises(ValidationError):
            GeneAnnotations([])

    def test_search_substring_case_insensitive(self):
        ann = GeneAnnotations()
        ann.set("G1", "DESCRIPTION", "Heat Shock Protein")
        ann.set("G2", "DESCRIPTION", "ribosomal subunit")
        assert ann.search(["heat shock"]) == ["G1"]
        assert set(ann.search(["heat", "ribosomal"])) == {"G1", "G2"}

    def test_search_matches_gene_id_itself(self):
        ann = GeneAnnotations()
        ann.set("YAL001C", "NAME", "TFC3")
        assert ann.search(["yal001"]) == ["YAL001C"]

    def test_search_exact_mode(self):
        ann = GeneAnnotations()
        ann.set("G1", "NAME", "HSP104")
        assert ann.search(["HSP104"], match="exact") == ["G1"]
        assert ann.search(["HSP"], match="exact") == []
        with pytest.raises(ValidationError):
            ann.search(["x"], match="fuzzy")

    def test_search_restricted_fields(self):
        ann = GeneAnnotations()
        ann.set("G1", "NAME", "ALPHA")
        ann.set("G2", "DESCRIPTION", "alpha factor response")
        hits = ann.search(["alpha"], fields=["NAME"])
        assert hits == ["G1"]

    def test_search_blank_criteria_empty(self):
        ann = GeneAnnotations()
        ann.set("G1", "NAME", "X")
        assert ann.search(["", "  "]) == []

    def test_merged_with_conflict_resolution(self):
        a = GeneAnnotations()
        a.set("G1", "NAME", "OLD")
        b = GeneAnnotations()
        b.set("G1", "NAME", "NEW")
        b.set("G2", "NAME", "OTHER")
        merged = a.merged_with(b)
        assert merged.get("G1", "NAME") == "NEW"
        assert merged.get("G2", "NAME") == "OTHER"
        assert a.get("G1", "NAME") == "OLD"  # originals untouched
