"""Tests for PCL/CDT/GTR-ATR file formats and the dataset loader."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import hierarchical_cluster
from repro.data import (
    CdtTable,
    ExpressionMatrix,
    format_cdt,
    format_pcl,
    format_tree_file,
    load_dataset,
    parse_cdt,
    parse_pcl,
    parse_tree_file,
    read_pcl,
    save_dataset,
    write_pcl,
)
from repro.util.errors import DataFormatError

PCL_SAMPLE = (
    "YORF\tNAME\tGWEIGHT\theat_0\theat_15\n"
    "EWEIGHT\t\t\t1\t0.5\n"
    "YAL001C\tTFC3\t1\t0.5\t-1.25\n"
    "YAL002W\tVPS8\t1\t\t2\n"
)


class TestPcl:
    def test_parse_sample(self):
        m = parse_pcl(PCL_SAMPLE)
        assert m.gene_ids == ["YAL001C", "YAL002W"]
        assert m.gene_names == ["TFC3", "VPS8"]
        assert m.condition_names == ["heat_0", "heat_15"]
        assert m.condition_weights.tolist() == [1.0, 0.5]
        assert m.values[0].tolist() == [0.5, -1.25]
        assert math.isnan(m.values[1, 0]) and m.values[1, 1] == 2.0

    def test_parse_without_eweight(self):
        text = "ID\tNAME\tGWEIGHT\tc1\nG1\tN1\t1\t3.5\n"
        m = parse_pcl(text)
        assert m.condition_weights.tolist() == [1.0]
        assert m.values[0, 0] == 3.5

    def test_missing_tokens(self):
        text = "ID\tNAME\tGWEIGHT\tc1\tc2\tc3\nG1\tN1\t1\tNA\tnull\tn/a\n"
        m = parse_pcl(text)
        assert np.isnan(m.values).all()

    @pytest.mark.parametrize(
        "bad,match",
        [
            ("", "empty"),
            ("ID\tNAME\tGWEIGHT\n", "condition"),
            ("ID\tNAME\tWRONG\tc1\nG1\tN\t1\t1\n", "GWEIGHT"),
            ("ID\tNAME\tGWEIGHT\tc1\nG1\tN\t1\t1\t9\n", "cells"),
            ("ID\tNAME\tGWEIGHT\tc1\nG1\tN\t1\tabc\n", "non-numeric"),
            ("ID\tNAME\tGWEIGHT\tc1\n\tN\t1\t1\n", "empty gene id"),
            ("ID\tNAME\tGWEIGHT\tc1\nEWEIGHT\t\t\t1\t2\n", "EWEIGHT"),
        ],
    )
    def test_malformed_inputs_raise(self, bad, match):
        with pytest.raises(DataFormatError, match=match):
            parse_pcl(bad)

    def test_error_carries_line_number(self):
        bad = "ID\tNAME\tGWEIGHT\tc1\nG1\tN\t1\tbad\n"
        with pytest.raises(DataFormatError) as exc_info:
            parse_pcl(bad, path="x.pcl")
        assert exc_info.value.path == "x.pcl"
        assert exc_info.value.line == 2

    def test_round_trip_with_nan_and_weights(self, small_matrix):
        again = parse_pcl(format_pcl(small_matrix))
        assert again.equals(small_matrix)

    def test_file_round_trip(self, tmp_path, small_matrix):
        path = tmp_path / "m.pcl"
        write_pcl(small_matrix, path)
        assert read_pcl(path).equals(small_matrix)

    @given(
        n_genes=st.integers(1, 8),
        n_cond=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        missing=st.floats(0.0, 0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, n_genes, n_cond, seed, missing):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n_genes, n_cond)) * 10
        values[rng.random(values.shape) < missing] = np.nan
        m = ExpressionMatrix(
            values,
            [f"G{i}" for i in range(n_genes)],
            [f"c{i}" for i in range(n_cond)],
            gene_weights=rng.uniform(0.5, 2.0, n_genes),
            condition_weights=rng.uniform(0.5, 2.0, n_cond),
        )
        assert parse_pcl(format_pcl(m)).equals(m)


class TestCdt:
    def _table(self, small_matrix):
        return CdtTable(
            matrix=small_matrix,
            gene_node_ids=[f"GENE{i}X" for i in range(4)],
            array_node_ids=[f"ARRY{i}X" for i in range(3)],
        )

    def test_round_trip_with_aid(self, small_matrix):
        table = self._table(small_matrix)
        again = parse_cdt(format_cdt(table))
        assert again.matrix.equals(small_matrix)
        assert again.gene_node_ids == table.gene_node_ids
        assert again.array_node_ids == table.array_node_ids

    def test_round_trip_without_aid(self, small_matrix):
        table = CdtTable(small_matrix, [f"GENE{i}X" for i in range(4)], None)
        again = parse_cdt(format_cdt(table))
        assert again.array_node_ids is None
        assert again.matrix.equals(small_matrix)

    def test_header_must_start_with_gid(self):
        with pytest.raises(DataFormatError, match="GID"):
            parse_cdt("ID\tNAME\tGWEIGHT\tc1\nG\tA\tB\t1\t2\n")

    def test_mismatched_gid_count_raises_on_format(self, small_matrix):
        bad = CdtTable(small_matrix, ["GENE0X"], None)
        with pytest.raises(DataFormatError, match="GIDs"):
            format_cdt(bad)


class TestTreeFiles:
    def test_parse_simple_tree(self):
        text = "NODE1X\tGENE0X\tGENE1X\t0.9\nNODE2X\tNODE1X\tGENE2X\t0.4\n"
        tree = parse_tree_file(text)
        assert tree.n_leaves == 3
        assert tree.root.node_id == "NODE2X"
        assert tree.root.height == pytest.approx(0.6)
        assert tree.leaf_order() == [0, 1, 2]

    @pytest.mark.parametrize(
        "bad,match",
        [
            ("", "empty"),
            ("NODE1X\tGENE0X\tGENE1X\n", "4 tab-separated"),
            ("NODE1X\tGENE0X\tGENE1X\tx\n", "non-numeric"),
            ("NODE1X\tGENE0X\tNODE9X\t0.5\n", "unknown child"),
            (
                "NODE1X\tGENE0X\tGENE1X\t0.5\nNODE2X\tGENE0X\tGENE2X\t0.2\n",
                "child twice",
            ),
            (
                "NODE1X\tGENE0X\tGENE1X\t0.5\nNODE1X\tGENE2X\tGENE3X\t0.2\n",
                "duplicate node id",
            ),
            (
                "NODE1X\tGENE0X\tGENE1X\t0.5\nNODE2X\tGENE2X\tGENE3X\t0.2\n",
                "exactly one root",
            ),
        ],
    )
    def test_malformed_trees_raise(self, bad, match):
        with pytest.raises(DataFormatError, match=match):
            parse_tree_file(bad)

    def test_format_parse_round_trip_from_clustering(self):
        rng = np.random.default_rng(5)
        tree = hierarchical_cluster(rng.normal(size=(9, 6)))
        again = parse_tree_file(format_tree_file(tree))
        assert again.n_leaves == tree.n_leaves
        assert again.leaf_order() == tree.leaf_order()
        heights = sorted(n.height for n in tree.internal_nodes())
        heights2 = sorted(n.height for n in again.internal_nodes())
        assert np.allclose(heights, heights2)


class TestLoader:
    def test_pcl_load(self, tmp_path, small_matrix):
        path = tmp_path / "demo.pcl"
        write_pcl(small_matrix, path)
        ds = load_dataset(path)
        assert ds.name == "demo"
        assert ds.matrix.equals(small_matrix)
        assert ds.gene_tree is None

    def test_cdt_save_load_round_trip(self, tmp_path, clustered_dataset):
        primary = save_dataset(clustered_dataset, tmp_path)
        assert primary.suffix == ".cdt"
        assert (tmp_path / f"{primary.stem}.gtr").exists()
        back = load_dataset(primary)
        assert back.gene_tree is not None
        order = clustered_dataset.gene_tree.leaf_order()
        expected_ids = [clustered_dataset.matrix.gene_ids[i] for i in order]
        assert back.matrix.gene_ids == expected_ids
        assert np.allclose(
            back.matrix.values,
            clustered_dataset.matrix.values[order],
            equal_nan=True,
        )
        # display order of the reloaded dataset equals file order
        assert back.display_order() == list(range(back.n_genes))

    def test_save_unclustered_is_pcl(self, tmp_path, simple_dataset):
        primary = save_dataset(simple_dataset, tmp_path)
        assert primary.suffix == ".pcl"

    def test_unknown_extension_raises(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("nope")
        with pytest.raises(DataFormatError, match="unsupported"):
            load_dataset(path)

    def test_loader_name_override(self, tmp_path, small_matrix):
        path = tmp_path / "demo.pcl"
        write_pcl(small_matrix, path)
        assert load_dataset(path, name="custom").name == "custom"

    def test_double_round_trip_stable(self, tmp_path, clustered_dataset):
        """Saving a loaded dataset again must produce identical files."""
        p1 = save_dataset(clustered_dataset, tmp_path / "a")
        first = load_dataset(p1)
        p2 = save_dataset(first, tmp_path / "b")
        second = load_dataset(p2)
        assert second.matrix.equals(first.matrix)
        assert second.gene_tree.leaf_order() == first.gene_tree.leaf_order()
