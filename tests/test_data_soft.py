"""Tests for the GEO SOFT series-matrix ingestion path."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    ExpressionMatrix,
    format_series_matrix,
    parse_series_matrix,
    read_series_matrix,
    write_series_matrix,
)
from repro.util.errors import DataFormatError

SAMPLE = """!Series_title\t"Yeast heat shock time course"
!Series_geo_accession\t"GSE0001"
!Sample_title\t"heat_05"\t"heat_15"
!series_matrix_table_begin
"ID_REF"\t"GSM1"\t"GSM2"
"YAL001C"\t0.5\t-1.25
"YAL002W"\t\t2.0
!series_matrix_table_end
"""


class TestParseSeriesMatrix:
    def test_parse_sample(self):
        ds = parse_series_matrix(SAMPLE)
        assert ds.name == "GSE0001"
        assert ds.metadata["Series_title"] == "Yeast heat shock time course"
        # sample titles override GSM ids (counts match)
        assert ds.matrix.condition_names == ["heat_05", "heat_15"]
        assert ds.matrix.gene_ids == ["YAL001C", "YAL002W"]
        assert ds.matrix.values[0].tolist() == [0.5, -1.25]
        assert np.isnan(ds.matrix.values[1, 0])

    def test_gsm_ids_kept_when_titles_mismatch(self):
        text = SAMPLE.replace('!Sample_title\t"heat_05"\t"heat_15"\n', "")
        ds = parse_series_matrix(text)
        assert ds.matrix.condition_names == ["GSM1", "GSM2"]

    @pytest.mark.parametrize(
        "mutation,match",
        [
            (lambda t: t.replace("!series_matrix_table_begin\n", ""), "before begin"),
            (lambda t: t.replace("!series_matrix_table_end\n", ""), "markers"),
            (lambda t: t.replace("\t-1.25", "\t-1.25\t9"), "cells"),
            (lambda t: t.replace("0.5", "abc"), "non-numeric"),
        ],
    )
    def test_malformed_rejected(self, mutation, match):
        with pytest.raises(DataFormatError, match=match):
            parse_series_matrix(mutation(SAMPLE))

    def test_empty_table_rejected(self):
        text = "!series_matrix_table_begin\n!series_matrix_table_end\n"
        with pytest.raises(DataFormatError):
            parse_series_matrix(text)


class TestRoundTrip:
    def _dataset(self):
        values = np.array([[1.0, np.nan], [0.25, -3.5]])
        return Dataset(
            name="GSE0042",
            matrix=ExpressionMatrix(values, ["G1", "G2"], ["condA", "condB"]),
            metadata={"Series_title": "demo series"},
        )

    def test_text_round_trip(self):
        ds = self._dataset()
        again = parse_series_matrix(format_series_matrix(ds))
        assert again.name == "GSE0042"
        assert again.matrix.equals(ds.matrix)
        assert again.metadata["Series_title"] == "demo series"

    def test_file_round_trip(self, tmp_path):
        ds = self._dataset()
        path = tmp_path / "GSE0042_series_matrix.txt"
        write_series_matrix(ds, path)
        again = read_series_matrix(path)
        assert again.matrix.equals(ds.matrix)

    def test_ingested_dataset_usable_in_forestview(self):
        from repro.core import ForestView
        from repro.data import Compendium

        ds = parse_series_matrix(SAMPLE)
        app = ForestView.from_compendium(Compendium([ds]))
        app.select_genes(["YAL001C"], source="soft")
        assert app.zoom_views()[0].n_rows == 1
