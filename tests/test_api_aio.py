"""End-to-end tests of the asyncio serving tier (`repro.api.aio`).

The acceptance bar is **transport equivalence**: every v1 endpoint
served through the event-loop facade must be byte-identical to the
threaded facade and to direct ``ApiApp`` calls — same JSON bodies, same
status codes, same structured errors on the 401/413/429 limit paths,
same ``partial``/``shards`` fields when a ``RouterService`` sits behind
the app.  On top of parity, the tier's own behaviors are pinned:
keep-alive reuse, request pipelining (including a mid-pipeline error),
the body cap enforced before the body is read, and the graceful-drain
contract (zero dropped in-flight responses).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.api.app import ApiApp
from repro.api.aio.server import serve as aio_bind
from repro.api.aio.server import serve_background as aio_serve
from repro.api.http import serve_background as threaded_serve
from repro.api.limits import RequestGate
from repro.spell import SpellService
from repro.synth import make_spell_compendium


@pytest.fixture(scope="module")
def setup():
    """Small (compendium, truth) pair private to this module — read-only."""
    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=120,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=11,
    )


@pytest.fixture(scope="module")
def service(setup):
    compendium, _ = setup
    with SpellService(compendium, n_workers=2) as svc:
        yield svc


@pytest.fixture(scope="module")
def app(service):
    return ApiApp(service)


@pytest.fixture(scope="module")
def aio_addr(app):
    server, thread = aio_serve(app)
    yield server.server_address[:2], server
    server.close(timeout=5)
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def threaded_addr(app):
    server, thread = threaded_serve(app)
    yield server.server_address[:2]
    server.close(timeout=5)
    thread.join(timeout=10)


def request_raw(addr, method, path, payload=None, headers=None):
    """One request over a fresh keep-alive connection; returns
    (status, raw body bytes, response headers)."""
    conn = http.client.HTTPConnection(*addr, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


_VOLATILE_FIELDS = {"elapsed_seconds", "total_seconds"}


def scrub(obj):
    """Strip the wall-clock stamps recursively.

    Everything else in a v1 body — rankings, scores, weights, totals,
    checksums — is deterministic and must match across transports.
    """
    if isinstance(obj, dict):
        return {k: scrub(v) for k, v in obj.items() if k not in _VOLATILE_FIELDS}
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


#: (method, path, payload) cases covering every v1 endpoint plus the
#: error paths whose codes must be transport-invariant.
def parity_cases(truth):
    query = list(truth.query_genes)
    return [
        ("GET", "/v1/datasets", None),
        ("POST", "/v1/search", {"genes": query, "page_size": 20}),
        ("POST", "/v1/search", {"genes": query, "page": 1, "page_size": 7}),
        ("POST", "/v1/search/batch",
         {"searches": [{"genes": query, "page_size": 5}] * 3}),
        ("POST", "/v1/cluster", {"search": {"genes": query}, "top_genes": 12}),
        ("POST", "/v1/render/heatmap",
         {"search": {"genes": query}, "top_genes": 10}),
        # error paths: codes and bodies must match across transports
        ("POST", "/v1/search", {"genes": ["NO-SUCH-GENE"]}),
        ("POST", "/v1/search", {"genes": []}),
        ("POST", "/v1/search", {"genes": query, "page_size": -4}),
        ("POST", "/v1/cluster", {"search": {"genes": query}, "top_genes": 0}),
    ]


class TestOracleParity:
    def test_every_endpoint_bit_identical_to_threaded_and_direct(
        self, setup, app, aio_addr, threaded_addr
    ):
        _, truth = setup
        (aio_host_port, _server) = aio_addr
        for method, path, payload in parity_cases(truth):
            a_status, a_body, _ = request_raw(aio_host_port, method, path, payload)
            t_status, t_body, _ = request_raw(threaded_addr, method, path, payload)
            assert a_status == t_status, (path, payload)
            # identical modulo the elapsed-time stamp; error bodies carry
            # no timing, so those must match byte for byte
            assert scrub(json.loads(a_body)) == scrub(json.loads(t_body)), \
                (path, payload)
            if a_status >= 400:
                assert a_body == t_body, (path, payload)
            endpoint = path[len("/v1/"):]
            d_status, d_payload = app.handle_wire(
                endpoint, dict(payload) if payload else {}
            )
            assert a_status == d_status, (path, payload)
            assert scrub(json.loads(a_body)) == scrub(d_payload), (path, payload)

    def test_health_parity_stable_fields(self, aio_addr, threaded_addr, service):
        (aio_host_port, _server) = aio_addr
        a_status, a_body, _ = request_raw(aio_host_port, "GET", "/v1/health")
        t_status, t_body, _ = request_raw(threaded_addr, "GET", "/v1/health")
        a, t = json.loads(a_body), json.loads(t_body)
        assert a_status == t_status == 200
        for field in ("status", "api_version", "datasets", "genes"):
            assert a[field] == t[field]
        # both facades front the same service, so each health answer
        # reports both transports side by side
        assert set(a["serving"]["transport"]) >= {"aio", "http"}
        assert set(t["serving"]["transport"]) >= {"aio", "http"}

    def test_export_stream_bit_identical_with_checksum(
        self, setup, aio_addr, threaded_addr
    ):
        _, truth = setup
        (aio_host_port, _server) = aio_addr
        payload = {"genes": list(truth.query_genes), "chunk_size": 40}
        a_status, a_body, a_headers = request_raw(
            aio_host_port, "POST", "/v1/search/export", payload
        )
        t_status, t_body, t_headers = request_raw(
            threaded_addr, "POST", "/v1/search/export", payload
        )
        assert a_status == t_status == 200
        assert a_headers.get("Transfer-Encoding") == "chunked"
        assert t_headers.get("Transfer-Encoding") == "chunked"
        a_lines = a_body.strip().split(b"\n")
        t_lines = t_body.strip().split(b"\n")
        # every data line byte-identical; the trailer identical modulo
        # its elapsed stamp — which pins the checksums equal too
        assert a_lines[:-1] == t_lines[:-1]
        a_trailer = json.loads(a_lines[-1])
        t_trailer = json.loads(t_lines[-1])
        assert scrub(a_trailer) == scrub(t_trailer)
        assert a_trailer["checksum"].startswith("sha256:")
        assert a_trailer["checksum"] == t_trailer["checksum"]

    def test_unknown_endpoint_and_method_errors_match(
        self, aio_addr, threaded_addr
    ):
        (aio_host_port, _server) = aio_addr
        for method, path in [
            ("GET", "/v1/no-such-endpoint"),
            ("GET", "/not-even-v1"),
            ("GET", "/v1/search"),   # search is POST-only
            ("POST", "/v1/health"),  # health is GET-only
            ("PUT", "/v1/search"),   # verb outside GET/POST
        ]:
            a_status, a_body, a_headers = request_raw(aio_host_port, method, path, None)
            t_status, t_body, t_headers = request_raw(threaded_addr, method, path, None)
            assert a_status == t_status, (method, path)
            assert json.loads(a_body)["error"]["code"] == \
                json.loads(t_body)["error"]["code"], (method, path)
            # pre-dispatch rejections close on both facades (the body,
            # if any, was never drained)
            assert a_headers.get("Connection") == "close", (method, path)
            assert t_headers.get("Connection") == "close", (method, path)

    def test_malformed_json_body_matches(self, aio_addr, threaded_addr):
        (aio_host_port, _server) = aio_addr
        for addr in (aio_host_port, threaded_addr):
            conn = http.client.HTTPConnection(*addr, timeout=10)
            try:
                conn.request("POST", "/v1/search", body=b"{not json",
                             headers={"Content-Length": "9"})
                resp = conn.getresponse()
                assert resp.status == 400
                assert json.loads(resp.read())["error"]["code"] == "MALFORMED_BODY"
            finally:
                conn.close()


class TestRouterParity:
    def test_partial_and_shards_fields_served_through_aio(self, setup):
        """A RouterService behind the async facade keeps the sharded wire
        contract: ``partial`` in search bodies, ``shards`` in health."""
        from repro.cluster_serving import build_local_topology

        compendium, truth = setup
        with build_local_topology(compendium, n_shards=2, replication=1,
                                  cache_size=0) as topo:
            router_app = ApiApp(topo.router)
            server, thread = aio_serve(router_app)
            try:
                addr = server.server_address[:2]
                payload = {"genes": list(truth.query_genes), "page_size": 15}
                status, body, _ = request_raw(addr, "POST", "/v1/search", payload)
                assert status == 200
                wire = json.loads(body)
                assert wire["partial"] is False
                d_status, direct = router_app.handle_wire("search", dict(payload))
                assert (status, scrub(wire)) == (d_status, scrub(direct))

                h_status, h_body, _ = request_raw(addr, "GET", "/v1/health")
                shards = json.loads(h_body)["shards"]
                assert h_status == 200 and shards is not None
                assert len(shards["nodes"]) == 2
            finally:
                server.close(timeout=5)
                thread.join(timeout=10)


class TestLimitsParity:
    """The RequestGate suite over the async facade: 401/413/429 behave
    exactly like the threaded facade — including no double token spend
    and the body cap judged before any body byte is read."""

    @pytest.fixture()
    def gated(self, service):
        def boot(**gate_kwargs):
            # one app (and gate) per facade: the gates are configured
            # identically, but each facade spends its own tokens — the
            # parity claim is about behavior, not a shared bucket
            aio_server, aio_thread = aio_serve(
                ApiApp(service, gate=RequestGate(**gate_kwargs)),
                transport_label="aio-gated",
            )
            thr_server, thr_thread = threaded_serve(
                ApiApp(service, gate=RequestGate(**gate_kwargs)),
                transport_label="http-gated",
            )
            cleanups.append((aio_server, aio_thread, thr_server, thr_thread))
            return aio_server.server_address[:2], thr_server.server_address[:2]

        cleanups = []
        yield boot
        for aio_server, aio_thread, thr_server, thr_thread in cleanups:
            aio_server.close(timeout=5)
            thr_server.close(timeout=5)
            aio_thread.join(timeout=10)
            thr_thread.join(timeout=10)
        service.unregister_transport_stats("aio-gated")
        service.unregister_transport_stats("http-gated")

    def test_auth_401_parity(self, gated, setup):
        _, truth = setup
        aio_addr, thr_addr = gated(auth_token="s3cret")
        payload = {"genes": list(truth.query_genes)}
        results = {}
        for name, addr in (("aio", aio_addr), ("thr", thr_addr)):
            anon = request_raw(addr, "POST", "/v1/search", payload)
            authed = request_raw(
                addr, "POST", "/v1/search", payload,
                headers={"Authorization": "Bearer s3cret"},
            )
            health = request_raw(addr, "GET", "/v1/health")
            results[name] = (anon, authed, health)
        for name in results:
            anon, authed, health = results[name]
            assert anon[0] == 401
            assert json.loads(anon[1])["error"]["code"] == "UNAUTHORIZED"
            assert authed[0] == 200
            assert health[0] == 200  # health stays exempt
        assert results["aio"][0][1] == results["thr"][0][1]  # 401 bodies, raw
        assert scrub(json.loads(results["aio"][1][1])) == \
            scrub(json.loads(results["thr"][1][1]))

    def test_body_cap_413_before_body_is_read(self, gated):
        """A huge *declared* Content-Length is rejected without the server
        waiting for (or reading) a single body byte — on a raw socket we
        never send the body, and the 413 must still arrive promptly."""
        aio_addr, thr_addr = gated(max_body_bytes=1024)
        for addr in (aio_addr, thr_addr):
            with socket.create_connection(addr, timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/search HTTP/1.1\r\n"
                    b"Host: x\r\n"
                    b"Content-Length: 1000000000\r\n\r\n"
                )  # 1 GB declared, zero bytes sent
                sock.settimeout(10)
                data = sock.makefile("rb").read()
            head, _, body = data.partition(b"\r\n\r\n")
            assert b"413" in head.split(b"\r\n")[0]
            assert json.loads(body)["error"]["code"] == "BODY_TOO_LARGE"
            assert b"Connection: close" in head

    def test_rate_limit_429_retry_after_parity_no_double_spend(
        self, gated, setup
    ):
        """With burst=2, exactly two requests pass before the 429 — a
        facade that spent a token at admission *and* again in the app
        layer would 429 on the second request already."""
        _, truth = setup
        payload = {"genes": list(truth.query_genes), "page_size": 5}
        aio_addr, thr_addr = gated(rate_limit=0.001, rate_burst=2)
        headers_by_facade = {}
        for name, addr in (("aio", aio_addr), ("thr", thr_addr)):
            client = {"X-Client-Id": name}  # separate buckets per facade
            statuses = []
            for _ in range(3):
                status, body, headers = request_raw(
                    addr, "POST", "/v1/search", payload, headers=client
                )
                statuses.append(status)
            assert statuses == [200, 200, 429], name
            assert json.loads(body)["error"]["code"] == "RATE_LIMITED"
            assert "retry_after_ms" in json.loads(body)["error"]["details"]
            headers_by_facade[name] = headers
        # Retry-After header parity: both facades emit it, whole seconds
        for name, headers in headers_by_facade.items():
            assert int(headers["Retry-After"]) >= 1, name


class TestPipelining:
    def _read_one_response(self, reader):
        """Parse one fixed-length HTTP response off a raw-socket reader."""
        status_line = reader.readline()
        if not status_line:
            return None
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = reader.readline().strip()
            if not line:
                break
            name, _, value = line.partition(b":")
            headers[name.decode().lower()] = value.strip().decode()
        body = reader.read(int(headers.get("content-length", 0)))
        return status, headers, body

    def test_pipelined_requests_answered_in_order(self, aio_addr):
        (addr, server) = aio_addr
        before = server.stats.snapshot()["pipelined_max_depth"]
        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n" * 4)
            reader = sock.makefile("rb")
            for _ in range(4):
                status, headers, body = self._read_one_response(reader)
                assert status == 200
                assert json.loads(body)["status"] == "ok"
        assert server.stats.snapshot()["pipelined_max_depth"] >= max(before, 2)

    def test_mid_pipeline_framing_error_answers_earlier_then_closes(
        self, aio_addr
    ):
        """health → unknown endpoint → health, pipelined: the first gets
        its 200, the second a structured 404 with ``Connection: close``,
        and the third is never answered (its body would be unframed)."""
        (addr, _server) = aio_addr
        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(
                b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
                b"GET /v1/bogus HTTP/1.1\r\nHost: x\r\n\r\n"
                b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            reader = sock.makefile("rb")
            first = self._read_one_response(reader)
            assert first[0] == 200
            second = self._read_one_response(reader)
            assert second[0] == 404
            assert json.loads(second[2])["error"]["code"] == "UNKNOWN_ENDPOINT"
            assert second[1].get("connection") == "close"
            assert self._read_one_response(reader) is None  # EOF, no 3rd

    def test_mid_pipeline_app_error_keeps_connection(self, setup, aio_addr):
        """An *app-level* error (unknown gene) has a fully-read body, so
        the pipeline continues: all three answers arrive in order."""
        _, truth = setup
        (addr, _server) = aio_addr
        good = json.dumps({"genes": list(truth.query_genes), "page_size": 3}).encode()
        bad = json.dumps({"genes": ["NO-SUCH-GENE"]}).encode()

        def post(body):
            return (
                b"POST /v1/search HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )

        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(post(good) + post(bad) + post(good))
            reader = sock.makefile("rb")
            statuses = [self._read_one_response(reader)[0] for _ in range(3)]
        assert statuses == [200, 404, 200]

    def test_get_with_declared_body_drained_keeps_stream_synced(self, aio_addr):
        """A GET that declares a body must have that body drained before
        the next poll — left buffered, its bytes would be parsed as the
        *next* request on the keep-alive connection (the stream desync /
        request-smuggling shape behind a body-forwarding proxy)."""
        (addr, _server) = aio_addr
        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(
                b"GET /v1/health HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 5\r\n\r\nhello"
                b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            reader = sock.makefile("rb")
            for _ in range(2):
                status, _headers, body = self._read_one_response(reader)
                assert status == 200
                assert json.loads(body)["status"] == "ok"

    def test_deep_pipeline_with_early_close_frees_the_connection(self, setup):
        """A client that pipelines far past the window and has the first
        request answer ``Connection: close`` must not strand the reader:
        with the responder gone, a blocking put on the full queue would
        leak the connection task and its ``max_connections`` slot
        forever (a remotely repeatable slot-exhaustion DoS)."""
        compendium, _ = setup
        with SpellService(compendium, n_workers=1) as inner:
            server, thread = aio_serve(ApiApp(inner), pipeline_depth=1)
            try:
                addr = server.server_address[:2]
                with socket.create_connection(addr, timeout=10) as sock:
                    sock.sendall(
                        b"GET /v1/health HTTP/1.1\r\nHost: x\r\n"
                        b"Connection: close\r\n\r\n"
                        + b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n" * 8
                    )
                    data = sock.makefile("rb").read()  # one response, then EOF
                assert data.split(b"\r\n")[0] == b"HTTP/1.1 200 OK"
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    snap = server.stats.snapshot()
                    if snap["open_connections"] == 0 and snap["in_flight"] == 0:
                        break
                    time.sleep(0.05)
                snap = server.stats.snapshot()
                assert snap["open_connections"] == 0  # slot released
                assert snap["in_flight"] == 0  # abandoned pipeline balanced
            finally:
                server.close(timeout=5)
                thread.join(timeout=10)

    def test_malformed_request_line_structured_400(self, aio_addr):
        (addr, _server) = aio_addr
        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(b"TOTAL GARBAGE NOT HTTP AT ALL\r\n\r\n")
            data = sock.makefile("rb").read()
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.split(b"\r\n")[0] == b"HTTP/1.1 400 Bad Request"
        assert json.loads(body)["error"]["code"] == "MALFORMED_BODY"


class TestKeepAliveAndCounters:
    def test_keepalive_reuse_visible_in_health(self, aio_addr):
        (addr, server) = aio_addr
        before = server.stats.snapshot()
        conn = http.client.HTTPConnection(*addr, timeout=10)
        try:
            for _ in range(5):
                conn.request("GET", "/v1/health")
                resp = conn.getresponse()
                body = json.loads(resp.read())
                assert resp.status == 200
        finally:
            conn.close()
        after = server.stats.snapshot()
        assert after["keepalive_reuses"] >= before["keepalive_reuses"] + 4
        assert after["requests_total"] >= before["requests_total"] + 5
        # the last health body itself carries the counters
        assert body["serving"]["transport"]["aio"]["requests_total"] >= 5

    def test_http10_connection_closes_after_response(self, aio_addr):
        (addr, _server) = aio_addr
        with socket.create_connection(addr, timeout=10) as sock:
            sock.sendall(b"GET /v1/health HTTP/1.0\r\nHost: x\r\n\r\n")
            data = sock.makefile("rb").read()  # EOF proves the close
        assert data.split(b"\r\n")[0] == b"HTTP/1.1 200 OK"
        assert b"Connection: close" in data.partition(b"\r\n\r\n")[0]


class _SlowSearch:
    """Service proxy that stretches ``respond`` so a request is reliably
    in flight when the drain starts."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def respond(self, *args, **kwargs):
        time.sleep(self._delay)
        return self._inner.respond(*args, **kwargs)


class TestGracefulDrain:
    def test_zero_dropped_in_flight_responses(self, setup):
        """The kill/drain bar: requests already being served when the
        drain begins complete with full responses; the server only then
        tears down, and reports a clean (fully drained) shutdown."""
        compendium, truth = setup
        with SpellService(compendium, n_workers=2) as inner:
            app = ApiApp(_SlowSearch(inner, delay=0.6))
            server, thread = aio_serve(app)
            addr = server.server_address[:2]
            payload = {"genes": list(truth.query_genes), "page_size": 10}
            results = []

            def issue():
                results.append(request_raw(addr, "POST", "/v1/search", payload))

            clients = [threading.Thread(target=issue) for _ in range(3)]
            for t in clients:
                t.start()
            time.sleep(0.25)  # all three now inside the slow respond()
            assert server.stats.snapshot()["in_flight"] >= 1
            drained = server.close(timeout=10)
            for t in clients:
                t.join(timeout=15)
            thread.join(timeout=10)

            assert drained is True
            assert len(results) == 3  # zero dropped responses
            oracle = None
            for status, body, _headers in results:
                assert status == 200
                parsed = scrub(json.loads(body))
                oracle = oracle or parsed
                assert parsed == oracle  # drained responses are real answers
            snap = server.stats.snapshot()
            assert snap["drained_requests"] >= 1
            assert snap["in_flight"] == 0

    def test_new_connections_refused_after_drain(self, setup):
        compendium, _ = setup
        with SpellService(compendium, n_workers=1) as inner:
            server, thread = aio_serve(ApiApp(inner))
            addr = server.server_address[:2]
            assert server.close(timeout=5) is True
            thread.join(timeout=10)
            with pytest.raises(OSError):
                socket.create_connection(addr, timeout=2)

    def test_close_stops_a_directly_run_serve_forever(self, setup):
        """``serve()`` + ``asyncio.run(server.serve_forever())`` — the
        documented manual launch — must still be stoppable via
        ``close()``: the serving task is recorded by ``serve_forever``
        itself, not planted by a launcher helper."""
        compendium, _ = setup
        with SpellService(compendium, n_workers=1) as inner:
            server = aio_bind(ApiApp(inner))
            thread = threading.Thread(
                target=lambda: asyncio.run(server.serve_forever()), daemon=True
            )
            thread.start()
            assert server._started.wait(10)
            status, _body, _headers = request_raw(
                server.server_address[:2], "GET", "/v1/health"
            )
            assert status == 200
            assert server.close(timeout=5) is True
            thread.join(timeout=10)
            assert not thread.is_alive()


class TestLoopGroupWorkers:
    def test_workers_not_daemonic_so_procpool_can_spawn(self):
        """Loop-group workers must be able to have children: with
        ``n_procs > 1`` the app lazily spawns an ``IndexWorkerPool`` on
        the first batch, which multiprocessing forbids under a daemonic
        parent — the pool would silently fall back to the single-core
        thread path, crippling the multi-loop topology."""
        from repro.api.aio.supervisor import LoopGroup

        synth = dict(n_datasets=4, n_relevant=1, n_genes=80, n_conditions=6,
                     module_size=8, query_size=3, seed=9)
        _compendium, truth = make_spell_compendium(**synth)
        group = LoopGroup(
            n_loops=1,
            factory_kwargs={
                "synth_datasets": 4, "synth_genes": 80, "synth_conditions": 6,
                "n_relevant": 1, "module_size": 8, "query_size": 3, "seed": 9,
                "n_workers": 1, "n_procs": 2, "cache_size": 8,
            },
        )
        with group:
            assert all(proc.daemon is False for proc in group._procs)
            addr = (group.host, group.port)
            query = list(truth.query_genes)
            status, _body, _headers = request_raw(
                addr, "POST", "/v1/search/batch",
                {"searches": [{"genes": query, "page_size": 5}] * 3},
            )
            assert status == 200
            h_status, h_body, _ = request_raw(addr, "GET", "/v1/health")
            assert h_status == 200
            serving = json.loads(h_body)["serving"]
            assert serving["n_procs"] == 2
            # the pool actually spawned — impossible for a daemonic worker
            assert serving["procpool"] is not None
