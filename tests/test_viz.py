"""Tests for the rendering substrate: framebuffer, colormaps, text, heatmaps,
display list, layout, PPM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import hierarchical_cluster
from repro.viz import (
    Box,
    COLORMAPS,
    DisplayList,
    Framebuffer,
    GLYPH_HEIGHT,
    HeatmapCmd,
    LineCmd,
    RectCmd,
    TextCmd,
    cell_indices,
    decode_ppm,
    dendrogram_segments,
    draw_heatmap,
    draw_text,
    encode_ppm,
    get_colormap,
    grid_boxes,
    hsplit,
    render_heatmap_block,
    render_text_array,
    text_width,
    vsplit,
)
from repro.util.errors import DataFormatError, RenderError


class TestFramebuffer:
    def test_init_and_background(self):
        fb = Framebuffer(10, 5, background=(1, 2, 3))
        assert fb.shape == (5, 10, 3)
        assert fb.get(0, 0) == (1, 2, 3)

    def test_invalid_size(self):
        with pytest.raises(RenderError):
            Framebuffer(0, 5)

    def test_fill_rect_clips(self):
        fb = Framebuffer(10, 10)
        fb.fill_rect(-5, -5, 8, 8, (255, 0, 0))  # clipped at top-left
        assert fb.get(2, 2) == (255, 0, 0)
        assert fb.get(3, 3) == (0, 0, 0)
        fb.fill_rect(8, 8, 100, 100, (0, 255, 0))  # clipped at bottom-right
        assert fb.get(9, 9) == (0, 255, 0)

    def test_bad_color_rejected(self):
        fb = Framebuffer(4, 4)
        with pytest.raises(RenderError):
            fb.fill_rect(0, 0, 2, 2, (300, 0, 0))

    def test_line_endpoints_and_diagonal(self):
        fb = Framebuffer(10, 10)
        fb.line(0, 0, 9, 9, (255, 255, 255))
        for i in range(10):
            assert fb.get(i, i) == (255, 255, 255)

    def test_line_clips_out_of_bounds(self):
        fb = Framebuffer(5, 5)
        fb.line(-3, 2, 8, 2, (9, 9, 9))  # horizontal crossing the buffer
        assert fb.get(0, 2) == (9, 9, 9) and fb.get(4, 2) == (9, 9, 9)

    def test_blit_and_crop_round_trip(self):
        fb = Framebuffer(20, 20)
        block = np.full((4, 6, 3), 77, dtype=np.uint8)
        fb.blit_array(3, 5, block)
        assert np.array_equal(fb.crop(3, 5, 6, 4), block)

    def test_crop_out_of_bounds_raises(self):
        with pytest.raises(RenderError):
            Framebuffer(5, 5).crop(0, 0, 6, 5)

    def test_get_out_of_bounds(self):
        with pytest.raises(RenderError):
            Framebuffer(5, 5).get(5, 0)

    def test_nonbackground_fraction(self):
        fb = Framebuffer(10, 10)
        fb.fill_rect(0, 0, 5, 10, (255, 255, 255))
        assert fb.nonbackground_fraction() == pytest.approx(0.5)


class TestColormap:
    def test_zero_maps_to_zero_color(self):
        cm = get_colormap("red-green")
        assert cm.map_scalar(0.0) == (0, 0, 0)

    def test_saturation_extremes(self):
        cm = get_colormap("red-green")
        assert cm.map_scalar(cm.saturation) == (255, 0, 0)
        assert cm.map_scalar(-cm.saturation) == (0, 255, 0)
        assert cm.map_scalar(99.0) == (255, 0, 0)  # clipped

    def test_nan_maps_to_missing(self):
        cm = get_colormap("red-green")
        out = cm.map(np.array([np.nan, 0.5]))
        assert tuple(out[0]) == cm.missing

    def test_midpoint_interpolation(self):
        cm = get_colormap("red-green").with_saturation(2.0)
        r, g, b = cm.map_scalar(1.0)  # halfway to full red
        assert r == 128 and g == 0 and b == 0

    def test_map_shape_preserved(self):
        cm = get_colormap("red-blue")
        out = cm.map(np.zeros((3, 4)))
        assert out.shape == (3, 4, 3) and out.dtype == np.uint8

    def test_all_registered_colormaps_work(self):
        for name in COLORMAPS:
            cm = get_colormap(name)
            out = cm.map(np.array([-1.0, np.nan, 1.0]))
            assert out.shape == (3, 3)

    def test_unknown_name(self):
        with pytest.raises(RenderError):
            get_colormap("viridis")

    def test_invalid_saturation(self):
        with pytest.raises(RenderError):
            get_colormap("red-green").with_saturation(0.0)


class TestText:
    def test_width(self):
        assert text_width("") == 0
        assert text_width("A") == 5
        assert text_width("AB") == 11  # 5 + 1 + 5
        assert text_width("AB", scale=2) == 22

    def test_render_mask_shape(self):
        mask = render_text_array("HI")
        assert mask.shape == (GLYPH_HEIGHT, 11)
        assert mask.any()

    def test_lowercase_same_as_upper(self):
        assert np.array_equal(render_text_array("gene"), render_text_array("GENE"))

    def test_unknown_char_draws_box(self):
        mask = render_text_array("~")
        assert mask[0].all()  # top row fully inked (the fallback box)

    def test_scale(self):
        m1 = render_text_array("A", scale=1)
        m2 = render_text_array("A", scale=2)
        assert m2.shape == (m1.shape[0] * 2, m1.shape[1] * 2)
        assert np.array_equal(m2[::2, ::2], m1)

    def test_draw_text_clips(self):
        fb = Framebuffer(10, 10)
        draw_text(fb, -3, -3, "AAAA", (255, 255, 255))  # partially outside
        assert fb.pixels.any()

    def test_scale_validation(self):
        with pytest.raises(RenderError):
            render_text_array("A", scale=0)


class TestHeatmap:
    def test_cell_indices_monotone_cover(self):
        idx = cell_indices(0, 100, 0, 100, 10)
        assert idx.min() == 0 and idx.max() == 9
        assert (np.diff(idx) >= 0).all()
        assert len(set(idx.tolist())) == 10

    def test_cell_indices_absolute_offset(self):
        """Index mapping must depend only on absolute pixel positions."""
        full = cell_indices(0, 100, 0, 100, 7)
        part = cell_indices(30, 60, 0, 100, 7)
        assert np.array_equal(part, full[30:60])

    def test_cell_indices_validation(self):
        with pytest.raises(RenderError):
            cell_indices(0, 101, 0, 100, 5)  # beyond block
        with pytest.raises(RenderError):
            cell_indices(0, 5, 0, 0, 5)

    def test_block_colors_match_colormap(self):
        values = np.array([[2.0, -2.0]])
        cm = get_colormap("red-green")
        block = render_heatmap_block(values, cm, x=0, y=0, w=10, h=4, rx=0, ry=0, rw=10, rh=4)
        assert tuple(block[0, 0]) == (255, 0, 0)
        assert tuple(block[0, 9]) == (0, 255, 0)

    def test_region_subset_equals_full_crop(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(13, 9))
        cm = get_colormap("red-green")
        full = render_heatmap_block(values, cm, x=5, y=7, w=50, h=40, rx=5, ry=7, rw=50, rh=40)
        sub = render_heatmap_block(values, cm, x=5, y=7, w=50, h=40, rx=20, ry=15, rw=12, rh=10)
        assert np.array_equal(sub, full[15 - 7 : 25 - 7, 20 - 5 : 32 - 5])

    def test_no_overlap_returns_empty(self):
        block = render_heatmap_block(
            np.ones((2, 2)), get_colormap("red-green"),
            x=0, y=0, w=10, h=10, rx=50, ry=50, rw=5, rh=5,
        )
        assert block.size == 0

    def test_draw_heatmap_onto_framebuffer(self):
        fb = Framebuffer(20, 20)
        draw_heatmap(fb, 2, 2, 10, 10, np.full((2, 2), 5.0), get_colormap("red-green"))
        assert fb.get(5, 5) == (255, 0, 0)
        assert fb.get(15, 15) == (0, 0, 0)

    def test_empty_values_rejected(self):
        with pytest.raises(RenderError):
            render_heatmap_block(
                np.empty((0, 3)), get_colormap("red-green"),
                x=0, y=0, w=5, h=5, rx=0, ry=0, rw=5, rh=5,
            )


class TestDendrogramSegments:
    def _tree(self):
        rng = np.random.default_rng(4)
        return hierarchical_cluster(rng.normal(size=(8, 6)))

    def test_segments_stay_in_box(self):
        tree = self._tree()
        for orientation, (w, h) in (("left", (40, 80)), ("top", (80, 40))):
            segs = dendrogram_segments(tree, x=10, y=20, w=w, h=h, orientation=orientation)
            for s in segs:
                assert 10 <= s.x0 <= 10 + w and 10 <= s.x1 <= 10 + w
                assert 20 <= s.y0 <= 20 + h and 20 <= s.y1 <= 20 + h

    def test_segment_count(self):
        # 7 internal nodes x 3 segments + 1 root stem
        segs = dendrogram_segments(self._tree(), x=0, y=0, w=30, h=60)
        assert len(segs) == 7 * 3 + 1

    def test_bad_orientation_and_size(self):
        tree = self._tree()
        with pytest.raises(RenderError):
            dendrogram_segments(tree, x=0, y=0, w=30, h=60, orientation="diagonal")
        with pytest.raises(RenderError):
            dendrogram_segments(tree, x=0, y=0, w=1, h=60)


class TestDisplayList:
    def _scene(self, w=120, h=90):
        rng = np.random.default_rng(1)
        dl = DisplayList(w, h, background=(5, 5, 5))
        dl.add(RectCmd(10, 10, 40, 30, (50, 60, 70)))
        dl.add(HeatmapCmd(55, 15, 50, 60, rng.normal(size=(12, 8)), get_colormap("red-green")))
        dl.add(LineCmd(0, 0, w - 1, h - 1, (200, 200, 0)))
        dl.add(TextCmd(12, 70, "PANE 1", (255, 255, 255)))
        return dl

    def test_render_full_shape(self):
        dl = self._scene()
        px = dl.render_full()
        assert px.shape == (90, 120, 3)

    @given(
        rx=st.integers(0, 100),
        ry=st.integers(0, 70),
        rw=st.integers(1, 20),
        rh=st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_region_equals_full_crop_property(self, rx, ry, rw, rh):
        """THE tiling invariant: any region render == crop of the full render."""
        dl = self._scene()
        rw = min(rw, dl.width - rx)
        rh = min(rh, dl.height - ry)
        region = dl.render_region(rx, ry, rw, rh)
        full = dl.render_full()
        assert np.array_equal(region, full[ry : ry + rh, rx : rx + rw])

    def test_region_bounds_validation(self):
        dl = self._scene()
        with pytest.raises(RenderError):
            dl.render_region(0, 0, 200, 10)
        with pytest.raises(RenderError):
            dl.render_region(0, 0, 0, 10)

    def test_command_cost_counts_intersections(self):
        dl = DisplayList(100, 100)
        dl.add(RectCmd(0, 0, 10, 10, (1, 1, 1)))
        dl.add(RectCmd(50, 50, 10, 10, (1, 1, 1)))
        assert dl.command_cost(0, 0, 20, 20) == 1
        assert dl.command_cost(0, 0, 100, 100) == 2
        assert dl.command_cost(80, 80, 10, 10) == 0

    def test_len_and_extend(self):
        dl = DisplayList(10, 10)
        dl.extend([RectCmd(0, 0, 1, 1, (1, 1, 1)), LineCmd(0, 0, 1, 1, (1, 1, 1))])
        assert len(dl) == 2


class TestLayout:
    def test_box_properties(self):
        b = Box(2, 3, 10, 20)
        assert b.x1 == 12 and b.y1 == 23 and b.area == 200
        assert b.contains(2, 3) and not b.contains(12, 3)
        assert b.intersects(Box(11, 22, 5, 5))
        assert not b.intersects(Box(12, 3, 5, 5))

    def test_inset(self):
        assert Box(0, 0, 10, 10).inset(2) == Box(2, 2, 6, 6)
        assert Box(0, 0, 3, 3).inset(2).area == 0  # clamped, not negative
        with pytest.raises(RenderError):
            Box(0, 0, 10, 10).inset(-1)

    def test_hsplit_exact_cover(self):
        boxes = hsplit(Box(0, 0, 100, 10), [1, 2, 1])
        assert [b.w for b in boxes] == [25, 50, 25]
        assert boxes[0].x == 0 and boxes[1].x == 25 and boxes[2].x == 75

    def test_hsplit_with_gap_and_remainder(self):
        boxes = hsplit(Box(0, 0, 100, 10), [1, 1, 1], gap=2)
        assert sum(b.w for b in boxes) == 100 - 4
        assert boxes[1].x == boxes[0].x1 + 2

    def test_vsplit(self):
        boxes = vsplit(Box(0, 0, 10, 60), [1, 2])
        assert [b.h for b in boxes] == [20, 40]

    def test_grid(self):
        grid = grid_boxes(Box(0, 0, 100, 60), 2, 3, gap=1)
        assert len(grid) == 2 and len(grid[0]) == 3
        assert grid[1][2].x1 <= 100 and grid[1][2].y1 <= 60

    def test_split_validation(self):
        with pytest.raises(RenderError):
            hsplit(Box(0, 0, 10, 10), [])
        with pytest.raises(RenderError):
            hsplit(Box(0, 0, 10, 10), [-1, 2])
        with pytest.raises(RenderError):
            hsplit(Box(0, 0, 3, 10), [1, 1, 1, 1], gap=2)


class TestPpm:
    def test_round_trip(self):
        rng = np.random.default_rng(2)
        pixels = rng.integers(0, 256, size=(7, 11, 3), dtype=np.uint8)
        assert np.array_equal(decode_ppm(encode_ppm(pixels)), pixels)

    @given(h=st.integers(1, 12), w=st.integers(1, 12), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, h, w, seed):
        rng = np.random.default_rng(seed)
        pixels = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        assert np.array_equal(decode_ppm(encode_ppm(pixels)), pixels)

    def test_file_round_trip(self, tmp_path):
        from repro.viz import read_ppm, write_ppm

        pixels = np.zeros((4, 4, 3), dtype=np.uint8)
        pixels[1, 2] = (9, 8, 7)
        path = tmp_path / "x.ppm"
        write_ppm(pixels, path)
        assert np.array_equal(read_ppm(path), pixels)

    def test_decode_rejects_garbage(self):
        with pytest.raises(DataFormatError):
            decode_ppm(b"P3\n1 1\n255\n0 0 0")  # ascii PPM unsupported
        with pytest.raises(DataFormatError):
            decode_ppm(b"P6\n2 2\n255\n\x00")  # truncated body

    def test_encode_rejects_wrong_dtype(self):
        with pytest.raises(DataFormatError):
            encode_ppm(np.zeros((2, 2, 3), dtype=np.float64))
