"""Tests for the ForestView application facade, rendering, adapters, sessions."""

import numpy as np
import pytest

from repro.core import (
    DatasetsReordered,
    ForestView,
    GolemAdapter,
    SpellAdapter,
    SynchronizationLayer,
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)
from repro.ontology import Golem
from repro.synth import make_annotated_ontology, make_case_study, make_simple_dataset
from repro.util.errors import RenderError, SearchError, ValidationError
from repro.wall import DisplayWall, WallGeometry

from tests.conftest import fresh_compendium


@pytest.fixture
def app():
    comp, _ = make_case_study(n_genes=120, n_conditions=10, n_knockouts=10, seed=21)
    return ForestView.from_compendium(comp)


@pytest.fixture
def truth_and_app():
    comp, truth = make_case_study(n_genes=120, n_conditions=10, n_knockouts=10, seed=21)
    return truth, ForestView.from_compendium(comp)


class TestAppBasics:
    def test_pane_per_dataset(self, app):
        assert len(app.panes) == len(app.compendium)
        assert app.pane(app.compendium.names[0]).name == app.compendium.names[0]
        with pytest.raises(KeyError):
            app.pane("nope")

    def test_empty_compendium_rejected(self):
        from repro.data import Compendium

        with pytest.raises(ValidationError):
            ForestView(Compendium())

    def test_merged_interface_cached_and_invalidated(self, app):
        m1 = app.merged_interface
        assert app.merged_interface is m1
        app.add_dataset(make_simple_dataset(name="extra", n_genes=20,
                                            n_conditions=6, n_module_genes=5, seed=3))
        assert app.merged_interface is not m1
        assert len(app.panes) == len(app.compendium)

    def test_cluster_genes_on_construction(self):
        comp = fresh_compendium(2)
        app = ForestView.from_compendium(comp, cluster_genes=True)
        assert all(p.dataset.gene_tree is not None for p in app.panes)


class TestAppSelection:
    def test_select_genes_and_viewport_resize(self, app):
        genes = app.compendium[0].gene_ids[:7]
        app.select_genes(genes, source="t")
        assert app.selection.genes == tuple(genes)
        assert app.sync_layer.shared_viewport.total_rows == 7

    def test_select_region(self, app):
        sel = app.select_region(app.compendium.names[0], 0, 5)
        assert len(sel) == 5
        assert sel.source.startswith("region:")

    def test_select_by_search(self, truth_and_app):
        truth, app = truth_and_app
        sel = app.select_by_search(["heat shock"])
        assert set(sel.genes) & set(truth.esr_induced)

    def test_search_no_match_raises(self, app):
        with pytest.raises(ValidationError):
            app.select_by_search(["xyzzy-not-a-keyword"])

    def test_extend_and_clear(self, app):
        app.select_genes(app.compendium[0].gene_ids[:2], source="a")
        app.extend_selection(app.compendium[0].gene_ids[2:4], source="b")
        assert len(app.selection) == 4
        app.clear_selection()
        assert app.selection is None

    def test_zoom_views_require_selection(self, app):
        with pytest.raises(ValidationError):
            app.zoom_views()

    def test_zoom_views_aligned(self, app):
        app.select_genes(app.compendium[0].gene_ids[:5], source="t")
        views = app.zoom_views()
        assert len(views) == len(app.panes)
        assert SynchronizationLayer.rows_aligned(views)

    def test_load_selection_as_dataset(self, app):
        genes = app.compendium[0].gene_ids[:6]
        app.select_genes(genes, source="t")
        before = len(app.panes)
        subset = app.load_selection_as_dataset(app.compendium.names[0], name="my_subset")
        assert len(app.panes) == before + 1
        assert subset.gene_ids == list(genes)
        assert "my_subset" in app.compendium


class TestAppOrdering:
    def test_order_datasets_moves_panes(self, app):
        names = list(app.compendium.names)
        new_order = names[::-1]
        app.order_datasets(new_order)
        assert app.compendium.names == new_order
        assert [p.name for p in app.panes] == new_order
        assert app.bus.events_of(DatasetsReordered)

    def test_order_by_scores(self, app):
        names = app.compendium.names
        scores = {n: float(i) for i, n in enumerate(names)}
        app.order_datasets_by_scores(scores)
        assert app.compendium.names == names[::-1]

    def test_order_by_coverage_requires_selection(self, app):
        with pytest.raises(ValidationError):
            app.order_datasets_by_selection_coverage()


class TestAppPreferences:
    def test_set_for_one_dataset(self, app):
        name = app.compendium.names[0]
        app.set_preferences(name, saturation=1.25)
        assert app.pane(name).preferences.saturation == 1.25
        other = app.compendium.names[1]
        assert app.pane(other).preferences.saturation != 1.25

    def test_apply_to_all(self, app):
        app.set_preferences(None, colormap_name="yellow-blue")
        assert all(p.preferences.colormap_name == "yellow-blue" for p in app.panes)


class TestAppRendering:
    def test_render_shape_and_content(self, app):
        app.select_genes(app.compendium[0].gene_ids[:8], source="t")
        px = app.render(800, 400)
        assert px.shape == (400, 800, 3)
        assert (px != 0).any()

    def test_render_no_selection_shows_placeholder(self, app):
        px = app.render(800, 400)
        assert px.shape == (400, 800, 3)

    def test_render_too_small_raises(self, app):
        with pytest.raises(RenderError):
            app.render(100, 50)

    def test_wall_render_matches_serial(self, app):
        app.select_genes(app.compendium[0].gene_ids[:10], source="t")
        geo = WallGeometry(rows=2, cols=2, tile_width=250, tile_height=150)
        wall = DisplayWall(geo, n_nodes=3, schedule="dynamic")
        frame = app.render_on_wall(wall)
        ref = app.display_list(geo.canvas_width, geo.canvas_height).render_full()
        assert np.array_equal(frame.pixels, ref)

    def test_sync_mode_changes_rendered_frame(self, truth_and_app):
        """Synced vs unsynced zoom views must actually draw differently
        when the dataset orders diverge."""
        truth, app = truth_and_app
        comp2, _ = make_case_study(n_genes=120, n_conditions=10, n_knockouts=10, seed=21)
        clustered = ForestView.from_compendium(comp2, cluster_genes=True)
        clustered.select_genes(list(truth.esr_induced[:8]), source="t")
        clustered.set_synchronized(True)
        synced = clustered.render(700, 400)
        clustered.set_synchronized(False)
        unsynced = clustered.render(700, 400)
        assert not np.array_equal(synced, unsynced)


class TestSpellAdapter:
    def test_query_reorders_and_selects(self, truth_and_app):
        truth, app = truth_and_app
        adapter = SpellAdapter(app)
        result = adapter.query(list(truth.esr_induced[:4]), top_n=10)
        assert app.compendium.names == list(result.dataset_ranking())
        assert app.selection is not None
        assert set(truth.esr_induced[:4]) <= set(app.selection.genes)
        assert app.selection.source.startswith("spell:")

    def test_query_from_selection(self, truth_and_app):
        truth, app = truth_and_app
        app.select_genes(list(truth.esr_induced[:4]), source="manual")
        adapter = SpellAdapter(app)
        result = adapter.query_from_selection(top_n=5)
        assert adapter.last_result is result

    def test_query_from_empty_selection_raises(self, app):
        adapter = SpellAdapter(app)
        with pytest.raises(SearchError):
            adapter.query_from_selection()

    def test_spell_finds_esr_module_in_case_study(self, truth_and_app):
        """§4-adjacent check: querying induced ESR genes retrieves the
        held-out induced genes at the top (repressed genes are
        anti-correlated and must rank at the bottom)."""
        truth, app = truth_and_app
        adapter = SpellAdapter(app)
        result = adapter.query(list(truth.esr_induced[:4]), top_n=10)
        expected = set(truth.esr_induced) - set(truth.esr_induced[:4])
        retrieved = set(result.top_genes(len(expected) + 2))
        assert expected <= retrieved
        # anti-correlated repressed genes sit at the very bottom
        ranking = result.gene_ranking()
        tail = set(ranking[-len(truth.esr_repressed) * 2 :])
        assert len(set(truth.esr_repressed) & tail) >= len(truth.esr_repressed) // 2


class TestGolemAdapter:
    @pytest.fixture
    def golem_app(self, truth_and_app):
        truth, app = truth_and_app
        genes = app.compendium.gene_universe()
        onto, store, otruth = make_annotated_ontology(
            genes, n_terms=90, planted={"stress response": list(truth.esr_induced)}, seed=31
        )
        return truth, app, GolemAdapter(app, Golem(onto, store)), otruth

    def test_enrich_selection_finds_planted_term(self, golem_app):
        truth, app, adapter, otruth = golem_app
        app.select_genes(list(truth.esr_induced), source="t")
        report = adapter.enrich_selection()
        planted_id = next(iter(otruth.planted_terms))
        assert report.term(planted_id).significant
        assert report.results[0].term_id == planted_id

    def test_requires_selection(self, golem_app):
        _, app, adapter, _ = golem_app
        app.clear_selection()
        with pytest.raises(ValidationError):
            adapter.enrich_selection()

    def test_map_for_top_term(self, golem_app):
        truth, app, adapter, _ = golem_app
        app.select_genes(list(truth.esr_induced), source="t")
        adapter.enrich_selection()
        lm = adapter.map_for_top_term()
        assert len(lm) >= 2

    def test_map_requires_report(self, golem_app):
        _, _, adapter, _ = golem_app
        with pytest.raises(ValidationError):
            adapter.map_for_top_term()

    def test_select_term_genes_round_trip(self, golem_app):
        truth, app, adapter, otruth = golem_app
        planted_id = next(iter(otruth.planted_terms))
        adapter.select_term_genes(planted_id)
        assert set(app.selection.genes) == set(truth.esr_induced)
        assert app.selection.source == f"golem:{planted_id}"


class TestSession:
    def test_round_trip(self, app, tmp_path):
        app.select_genes(app.compendium[0].gene_ids[:6], source="orig")
        app.set_synchronized(False)
        app.set_preferences(app.compendium.names[0], saturation=1.2)
        app.order_datasets(list(reversed(app.compendium.names)))
        path = save_session(app, tmp_path / "s.json")

        comp2, _ = make_case_study(n_genes=120, n_conditions=10, n_knockouts=10, seed=21)
        app2 = ForestView.from_compendium(comp2)
        load_session(app2, path)
        assert app2.selection.genes == app.selection.genes
        assert app2.synchronized == app.synchronized
        assert app2.compendium.names == app.compendium.names
        assert (
            app2.pane(app.compendium.names[0]).preferences
            == app.pane(app.compendium.names[0]).preferences
        )

    def test_session_without_selection(self, app, tmp_path):
        path = save_session(app, tmp_path / "s.json")
        load_session(app, path)
        assert app.selection is None

    def test_dataset_mismatch_rejected(self, app):
        data = session_to_dict(app)
        data["dataset_order"] = ["other"]
        with pytest.raises(ValidationError, match="do not match"):
            session_from_dict(app, data)

    def test_bad_version_rejected(self, app):
        data = session_to_dict(app)
        data["version"] = 99
        with pytest.raises(ValidationError, match="version"):
            session_from_dict(app, data)

    def test_corrupt_json_rejected(self, app, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            load_session(app, path)
