"""Tests for the generic RPC layer: framing, server/client, membership.

These pin the transport contracts the sharded serving tier leans on:
length-prefixed frames reject garbage before allocating, handler
exceptions travel back as data (never killing the server), ``close()``
models node death by dropping live connections, and ``scatter`` accounts
for every addressed node — degradation is structured, never silent.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.rpc.client import RpcClient
from repro.rpc.framing import (
    MAGIC,
    MAX_FRAME_BYTES,
    FrameError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.rpc.faults import FaultPlan
from repro.rpc.membership import Membership
from repro.rpc.server import RpcHandlerError, RpcServer
from repro.util.errors import RpcError, ValidationError


def echo_server(**kwargs) -> RpcServer:
    handlers = {
        "echo": lambda payload: payload,
        "boom": lambda payload: (_ for _ in ()).throw(ValueError("bad input")),
        "slow": lambda payload: time.sleep(payload) or "done",
    }
    return RpcServer(handlers, **kwargs).serve_background()


class TestFraming:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            {"a": 1, "b": [1.5, "x"]},
            ("tuple", 3, None),
            b"\x00\xff" * 100,
        ],
    )
    def test_round_trip(self, obj):
        assert decode_message(encode_message(obj)[8:]) == obj

    def test_numpy_round_trip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = decode_message(encode_message({"scores": arr})[8:])["scores"]
        assert out.dtype == np.float64
        assert np.array_equal(out, arr)

    def test_header_layout(self):
        frame = encode_message("hi")
        magic, length = struct.unpack("<4sI", frame[:8])
        assert magic == MAGIC
        assert length == len(frame) - 8

    def test_undecodable_payload_rejected(self):
        with pytest.raises(FrameError, match="undecodable"):
            decode_message(b"not a pickle")

    def test_socket_round_trip_and_bad_magic(self):
        a, b = socket.socketpair()
        try:
            write_frame(a, {"n": 7})
            assert read_frame(b) == {"n": 7}
            # cross-protocol garbage (say an HTTP client) is refused on
            # the magic word, before any payload allocation
            a.sendall(b"GET / HTTP/1.1\r\n\r\n")
            with pytest.raises(FrameError, match="bad frame magic"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversize_length_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("<4sI", MAGIC, MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="exceeds cap"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            frame = encode_message({"x": list(range(100))})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                read_frame(b)
        finally:
            b.close()


class TestServerClient:
    def test_call_round_trip(self):
        with echo_server(node_id="n0") as server:
            with RpcClient(*server.address) as client:
                assert client.call("echo", {"k": [1, 2]}) == {"k": [1, 2]}
                # one connection pipelines sequential calls
                assert client.call("echo", "again") == "again"
        assert server.requests == 2

    def test_numpy_payloads_over_the_wire(self):
        arr = np.linspace(0.0, 1.0, 257)
        with echo_server() as server, RpcClient(*server.address) as client:
            out = client.call("echo", arr)
        assert out.dtype == arr.dtype and np.array_equal(out, arr)

    def test_handler_exception_is_data(self):
        """A raising handler answers with a structured error; the server
        and even the same connection keep working."""
        with echo_server() as server, RpcClient(*server.address) as client:
            with pytest.raises(RpcHandlerError, match="remote ValueError: bad input"):
                client.call("boom", 1)
            assert client.call("echo", "still alive") == "still alive"
            assert server.errors == 1

    def test_unknown_method_is_error_reply(self):
        with echo_server() as server, RpcClient(*server.address) as client:
            with pytest.raises(RpcHandlerError, match="no handler for 'nope'"):
                client.call("nope")

    def test_ping_reports_identity_and_info(self):
        server = RpcServer(
            {"echo": lambda p: p}, node_id="shard-9", info=lambda: {"extra": 42}
        ).serve_background()
        with server, RpcClient(*server.address) as client:
            payload = client.ping()
        assert payload["node_id"] == "shard-9"
        assert payload["methods"] == ["echo"]
        assert payload["extra"] == 42

    def test_unreachable_port_raises_rpc_error(self):
        # grab a port and close it so nothing listens there
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with RpcClient("127.0.0.1", port, timeout=2.0) as client:
            with pytest.raises(RpcError, match="cannot reach"):
                client.call("echo", 1)

    def test_call_timeout_then_redial(self):
        with echo_server() as server, RpcClient(*server.address) as client:
            with pytest.raises(RpcError, match="timed out"):
                client.call("slow", 5.0, timeout=0.2)
            # the timed-out connection was dropped; the next call redials
            assert client.call("echo", "back", timeout=5.0) == "back"

    def test_close_kills_live_connections(self):
        """Node death drops established connections, not just the listener.

        A router holding a pooled connection must see the transport fail
        *now* — a half-dead server still answering old connections would
        defeat every failover test built on ``close()``.
        """
        server = echo_server(node_id="victim")
        client = RpcClient(*server.address)
        assert client.call("echo", "warm") == "warm"  # connection established
        server.close()
        with pytest.raises(RpcError):
            client.call("echo", "after death", timeout=2.0)
        client.close()

    def test_close_is_idempotent(self):
        server = echo_server()
        server.close()
        server.close()


class TestClientReconnect:
    """A broken reply — however it broke — must drop the connection so
    the next call redials clean; the failed call itself stays a
    structured error.  These pin the client half of the chaos story."""

    def test_mid_frame_server_death_then_redial(self):
        plan = FaultPlan(seed=1, reset_mid_frame=1.0, max_faults=1)
        server = RpcServer(
            {"echo": lambda p: p}, fault_plan=plan
        ).serve_background()
        with server, RpcClient(*server.address, timeout=5.0) as client:
            with pytest.raises(RpcError):
                client.call("echo", "doomed")
            assert client._sock is None  # dropped, not poisoned
            # the plan's budget is spent: the redial succeeds
            assert client.call("echo", "back") == "back"

    def test_garbage_reply_bytes_then_redial(self):
        plan = FaultPlan(seed=2, garbage=1.0, max_faults=1)
        server = RpcServer(
            {"echo": lambda p: p}, fault_plan=plan
        ).serve_background()
        with server, RpcClient(*server.address, timeout=5.0) as client:
            with pytest.raises(RpcError):  # bad magic, surfaced as transport
                client.call("echo", "doomed")
            assert client._sock is None
            assert client.call("echo", "back") == "back"

    def test_sequence_mismatch_then_redial(self):
        """A desynced reply stream is detected, refused, and recovered
        from — never silently attributed to the wrong request."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        host, port = listener.getsockname()

        def serve():
            # first connection: answer with the wrong sequence number
            conn, _ = listener.accept()
            with conn:
                seq, _method, payload = read_frame(conn)
                write_frame(conn, ("ok", seq + 13, payload))
            # second connection (the redial): behave
            conn, _ = listener.accept()
            with conn:
                seq, _method, payload = read_frame(conn)
                write_frame(conn, ("ok", seq, payload))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            with RpcClient(host, port, timeout=5.0) as client:
                with pytest.raises(RpcError, match="sequence mismatch"):
                    client.call("echo", "first")
                assert client._sock is None
                assert client.call("echo", "second") == "second"
            thread.join(timeout=5)
        finally:
            listener.close()

    def test_unserializable_payload_leaves_connection_clean(self):
        """A payload that cannot be pickled fails the *call*, not the
        connection: the next call over the same client still works."""
        import pickle

        with echo_server() as server, RpcClient(*server.address) as client:
            assert client.call("echo", "warm") == "warm"
            with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
                client.call("echo", lambda: None)
            assert client._sock is None
            assert client.call("echo", "clean") == "clean"

    def test_any_exception_mid_call_drops_connection(self, monkeypatch):
        """The drop-on-failure path is exception-agnostic: even an error
        the transport never anticipated cannot leave a half-read reply
        to desync the following call."""
        with echo_server() as server, RpcClient(*server.address) as client:
            assert client.call("echo", "warm") == "warm"
            with monkeypatch.context() as patch:

                def explode(sock):
                    raise RuntimeError("interrupted mid-read")

                patch.setattr("repro.rpc.client.read_frame", explode)
                with pytest.raises(RuntimeError, match="interrupted mid-read"):
                    client.call("echo", "during")
            assert client._sock is None
            assert client.call("echo", "after") == "after"


class TestServerClose:
    def test_leaked_accept_thread_is_flagged_and_logged(self, caplog):
        server = echo_server(join_timeout=0.05)
        # simulate a teardown that fails to unblock accept(): close()
        # must flag and log the zombie, not pretend shutdown succeeded
        stuck = threading.Thread(target=time.sleep, args=(1.0,), daemon=True)
        stuck.start()
        real = server._accept_thread
        server._accept_thread = stuck
        with caplog.at_level("WARNING", logger="repro.rpc.server"):
            server.close()
        assert server.leaked is True
        assert any("still alive" in r.message for r in caplog.records)
        real.join(timeout=5)  # the real loop exits once the listener dies

    def test_strict_join_raises_on_leak(self):
        server = echo_server(join_timeout=0.05, strict_join=True)
        stuck = threading.Thread(target=time.sleep, args=(1.0,), daemon=True)
        stuck.start()
        real = server._accept_thread
        server._accept_thread = stuck
        with pytest.raises(RpcError, match="still alive"):
            server.close()
        real.join(timeout=5)

    def test_clean_close_never_flags(self):
        server = echo_server(join_timeout=5.0)
        server.close()
        assert server.leaked is False


class TestMembership:
    def test_validation(self):
        with pytest.raises(ValidationError, match="at least one node"):
            Membership({})
        with pytest.raises(ValidationError, match="duplicate node id"):
            Membership([("a", "127.0.0.1", 1), ("a", "127.0.0.1", 2)])

    def test_scatter_accounts_for_every_node(self):
        """One dead node: its error lands in ``failed``; the rest answer."""
        s0, s1 = echo_server(node_id="n0"), echo_server(node_id="n1")
        try:
            members = Membership(
                {"n0": s0.address, "n1": s1.address}, timeout=3.0
            )
            with members:
                s1.close()  # dies before the fan-out
                result = members.scatter(
                    {"n0": ("echo", "a"), "n1": ("echo", "b")}
                )
                assert result.ok == {"n0": "a"}
                assert set(result.failed) == {"n1"}
                assert not result.complete
                # liveness reflects the transport outcome
                assert members.state("n0").alive
                assert not members.state("n1").alive
                assert members.alive_ids() == ["n0"]
                # each transport *try* counts: the default retry policy
                # re-dials once, so a dead node records max_tries failures
                assert (
                    members.state("n1").consecutive_failures
                    == members.retry.max_tries
                )
                assert members.state("n1").last_error
        finally:
            s0.close()
            s1.close()

    def test_handler_error_keeps_node_alive(self):
        """A node whose handler raised *answered* — only transport
        failures mark a node down."""
        with echo_server(node_id="n0") as server:
            with Membership({"n0": server.address}, timeout=3.0) as members:
                result = members.scatter({"n0": ("boom", None)})
                assert "n0" in result.failed
                assert members.state("n0").alive

    def test_heartbeat_refreshes_info(self):
        counter = {"beats": 0}

        def info():
            counter["beats"] += 1
            return {"index_bytes": 1234}

        server = RpcServer({}, node_id="n0", info=info).serve_background()
        with server, Membership({"n0": server.address}, timeout=3.0) as members:
            result = members.heartbeat()
            assert result.complete
            assert members.state("n0").info["index_bytes"] == 1234
            assert members.state("n0").info["node_id"] == "n0"
        assert counter["beats"] >= 1

    def test_per_call_liveness_and_unknown_node(self):
        with echo_server(node_id="n0") as server:
            with Membership({"n0": server.address}, timeout=3.0) as members:
                assert members.call("n0", "echo", 9) == 9
                with pytest.raises(ValidationError, match="unknown node"):
                    members.call("ghost", "echo", 1)
                snapshot = members.stats()["n0"]
                assert snapshot["alive"] is True
                assert snapshot["address"].startswith("127.0.0.1:")

    def test_scatter_concurrency(self):
        """Scatter overlaps per-node calls: two 0.3 s handlers finish in
        well under 0.6 s of wall time."""
        s0, s1 = echo_server(node_id="n0"), echo_server(node_id="n1")
        try:
            with Membership(
                {"n0": s0.address, "n1": s1.address}, timeout=5.0
            ) as members:
                start = time.perf_counter()
                result = members.scatter(
                    {"n0": ("slow", 0.3), "n1": ("slow", 0.3)}
                )
                elapsed = time.perf_counter() - start
            assert result.complete
            assert elapsed < 0.55
        finally:
            s0.close()
            s1.close()


class _Mailbox:
    """Tiny helper proving a client survives interleaved reuse from
    multiple threads (the lock serializes calls on one connection)."""

    def __init__(self, client: RpcClient):
        self.client = client
        self.out: list = []
        self.lock = threading.Lock()

    def call(self, i: int) -> None:
        reply = self.client.call("echo", i)
        with self.lock:
            self.out.append(reply)


def test_client_thread_safe_reuse():
    with echo_server() as server, RpcClient(*server.address) as client:
        box = _Mailbox(client)
        threads = [
            threading.Thread(target=box.call, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert sorted(box.out) == list(range(8))
