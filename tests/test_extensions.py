"""Tests for the extension modules: wall input routing, command scripts,
GAF/GMT formats, leaf ordering, legends, frame sequences, coexpression."""

import numpy as np
import pytest

from repro.cluster import hierarchical_cluster, order_leaves_by_weight, reorder_tree
from repro.core import (
    ClearSelection,
    CommandScript,
    ForestView,
    OrderDatasets,
    SearchSelect,
    SelectGenes,
    SelectRegion,
    SetPreferences,
    SetSynchronized,
    record_script,
)
from repro.data import GeneSet, format_gmt, parse_gmt
from repro.ontology import Term, GeneOntology, TermAnnotations, format_gaf, parse_gaf
from repro.spell import coexpression_graph, consensus_graph, extract_modules
from repro.synth import make_case_study, make_spell_compendium
from repro.util.errors import DataFormatError, RenderError, ValidationError
from repro.viz import Box, DisplayList, get_colormap, legend_commands
from repro.wall import (
    DisplayWall,
    FrameSequenceDriver,
    PointerEvent,
    WallGeometry,
    WallInputRouter,
)


@pytest.fixture(scope="module")
def wall_app():
    comp, truth = make_case_study(n_genes=120, n_conditions=10, n_knockouts=10, seed=61)
    app = ForestView.from_compendium(comp)
    geo = WallGeometry(rows=2, cols=3, tile_width=250, tile_height=200)
    return app, truth, geo


# ---------------------------------------------------------------------------
# wall input routing
# ---------------------------------------------------------------------------
class TestWallInput:
    def test_hit_test_finds_panes_and_views(self, wall_app):
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        # probe a grid of points; every pane and the global view must be hit
        panes_seen = set()
        views_seen = set()
        for x in range(10, geo.canvas_width - 10, 37):
            for y in range(10, geo.canvas_height - 10, 29):
                hit = router.hit_test(x, y)
                if hit.pane_name:
                    panes_seen.add(hit.pane_name)
                if hit.view:
                    views_seen.add(hit.view)
        assert panes_seen == set(app.compendium.names)
        assert {"global", "zoom", "title"} <= views_seen

    def test_hit_agrees_with_tile_geometry(self, wall_app):
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        hit = router.hit_test(0, 0)
        assert hit.tile_id == 0
        hit = router.hit_test(geo.canvas_width - 1, geo.canvas_height - 1)
        assert hit.tile_id == geo.n_tiles - 1

    def test_out_of_canvas_rejected(self, wall_app):
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        with pytest.raises(ValidationError):
            router.hit_test(-1, 0)
        with pytest.raises(ValidationError):
            router.hit_test(0, geo.canvas_height)

    def test_drag_selects_region(self, wall_app):
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        # find a column inside pane 0's global view
        target = None
        for x in range(10, geo.canvas_width, 5):
            for y in range(10, geo.canvas_height, 5):
                hit = router.hit_test(x, y)
                if hit.pane_name == app.compendium.names[0] and hit.view == "global":
                    target = (x, y)
                    break
            if target:
                break
        assert target is not None
        x, y0 = target
        selection = router.drag_select(app.compendium.names[0], x, y0, y0 + 30)
        assert selection is app.selection
        assert len(selection) >= 1
        assert selection.source == f"region:{app.compendium.names[0]}"

    def test_press_outside_global_view_is_inert(self, wall_app):
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        router.handle(PointerEvent(1, 1, "press"))  # margin area
        assert router.handle(PointerEvent(1, 1, "release")) is None

    def test_row_mapping_monotone(self, wall_app):
        """Dragging further down the global view must select later rows."""
        app, truth, geo = wall_app
        router = WallInputRouter(app, geo)
        pane_name = app.compendium.names[0]
        hits = []
        for y in range(0, geo.canvas_height, 3):
            hit = router.hit_test(30, y)
            if hit.pane_name == pane_name and hit.view == "global":
                hits.append(hit.data_row)
        assert len(hits) > 3
        assert hits == sorted(hits)


# ---------------------------------------------------------------------------
# command scripts
# ---------------------------------------------------------------------------
class TestCommands:
    def _app(self):
        comp, truth = make_case_study(n_genes=100, n_conditions=8, n_knockouts=8, seed=62)
        return ForestView.from_compendium(comp), truth

    def test_script_runs_in_order(self):
        app, truth = self._app()
        script = CommandScript(
            [
                SelectGenes(genes=tuple(truth.esr_induced[:4]), source="s"),
                SetSynchronized(synchronized=False),
                OrderDatasets(order=tuple(reversed(app.compendium.names))),
            ]
        )
        script.run(app)
        assert app.selection.genes == tuple(truth.esr_induced[:4])
        assert not app.synchronized
        assert app.compendium.names[0] == "knockout_compendium"

    def test_json_round_trip(self):
        app, truth = self._app()
        script = CommandScript(
            [
                SearchSelect(criteria=("heat shock",)),
                SelectRegion(dataset=app.compendium.names[0], start_row=0, end_row=5),
                SetPreferences(dataset=None, changes={"saturation": 1.5}),
                ClearSelection(),
            ]
        )
        again = CommandScript.from_json(script.to_json())
        assert len(again) == 4
        assert again.commands[0] == script.commands[0]
        again.run(app)
        assert app.selection is None
        assert all(p.preferences.saturation == 1.5 for p in app.panes)

    def test_file_round_trip(self, tmp_path):
        script = CommandScript([SetSynchronized(synchronized=True)])
        path = script.save(tmp_path / "script.json")
        assert len(CommandScript.load(path)) == 1

    def test_bad_json_rejected(self):
        with pytest.raises(ValidationError):
            CommandScript.from_json("{not json")
        with pytest.raises(ValidationError):
            CommandScript.from_json('{"op": "SelectGenes"}')  # not a list
        with pytest.raises(ValidationError):
            CommandScript.from_json('[{"op": "Explode"}]')
        with pytest.raises(ValidationError):
            CommandScript.from_json('[{"op": "SelectGenes", "bogus": 1}]')

    def test_record_and_replay(self):
        app, truth = self._app()
        script, stop = record_script(app)
        app.select_genes(list(truth.esr_induced[:3]), source="live")
        app.set_synchronized(False)
        app.order_datasets(list(reversed(app.compendium.names)))
        stop()
        app.select_genes(["ignored-after-stop"] + list(truth.esr_induced[:1]), source="x")
        assert len(script) == 3

        # replay onto a fresh app reproduces the state
        comp2, _ = make_case_study(n_genes=100, n_conditions=8, n_knockouts=8, seed=62)
        app2 = ForestView.from_compendium(comp2)
        script.run(app2)
        assert app2.selection.genes == tuple(truth.esr_induced[:3])
        assert not app2.synchronized
        assert app2.compendium.names == app.compendium.names


# ---------------------------------------------------------------------------
# GAF
# ---------------------------------------------------------------------------
class TestGaf:
    def _store(self):
        onto = GeneOntology(
            [
                Term("GO:0000001", "root"),
                Term("GO:0000002", "stress", parents=("GO:0000001",)),
            ]
        )
        store = TermAnnotations(onto)
        store.annotate("YAL001C", "GO:0000002")
        store.annotate("YAL002W", "GO:0000001")
        return onto, store

    def test_round_trip(self):
        onto, store = self._store()
        again = parse_gaf(format_gaf(store), onto)
        assert again.terms_for("YAL001C") == store.terms_for("YAL001C")
        assert again.terms_for("YAL002W") == store.terms_for("YAL002W")

    def test_not_qualifier_skipped(self):
        onto, _ = self._store()
        line = "\t".join(
            ["DB", "G1", "G1", "NOT|involved_in", "GO:0000002", "REF", "IEA", "", "P",
             "", "", "gene", "taxon:4932", "20070101", "DB", "", ""]
        )
        store = parse_gaf("!gaf-version: 2.2\n" + line + "\n" + _plain_line("G2"), onto)
        assert "G1" not in store.genes()
        assert "G2" in store.genes()

    def test_unknown_term_behaviour(self):
        onto, _ = self._store()
        bad = _plain_line("G1", term="GO:9999999")
        with pytest.raises(DataFormatError, match="unknown GO term"):
            parse_gaf(bad + _plain_line("G2"), onto)
        store = parse_gaf(bad + _plain_line("G2"), onto, skip_unknown_terms=True)
        assert store.genes() == ["G2"]

    def test_malformed_line_rejected(self):
        onto, _ = self._store()
        with pytest.raises(DataFormatError, match="columns"):
            parse_gaf("A\tB\tC\n", onto)
        with pytest.raises(DataFormatError, match="no association"):
            parse_gaf("!only comments\n", onto)


def _plain_line(gene: str, term: str = "GO:0000002") -> str:
    return (
        "\t".join(
            ["DB", gene, gene, "involved_in", term, "REF", "IEA", "", "P",
             "", "", "gene", "taxon:4932", "20070101", "DB", "", ""]
        )
        + "\n"
    )


# ---------------------------------------------------------------------------
# GMT
# ---------------------------------------------------------------------------
class TestGmt:
    def test_round_trip(self):
        sets = [
            GeneSet("esr_induced", "planted stress genes", ("YAL001C", "YAL002W")),
            GeneSet("ribosome", "", ("YBR001C",)),
        ]
        again = parse_gmt(format_gmt(sets))
        assert again == sets

    def test_parse_skips_comments_and_dedups(self):
        text = "# header\nset1\tdesc\tA\tB\tA\t\n"
        sets = parse_gmt(text)
        assert sets[0].genes == ("A", "B")

    def test_malformed_rejected(self):
        with pytest.raises(DataFormatError):
            parse_gmt("name_only\tdesc\n")
        with pytest.raises(DataFormatError, match="duplicate"):
            parse_gmt("s\td\tA\ns\td\tB\n")
        with pytest.raises(DataFormatError, match="no gene sets"):
            parse_gmt("# nothing\n")

    def test_geneset_validation(self):
        with pytest.raises(ValidationError):
            GeneSet("", "d", ("A",))
        with pytest.raises(ValidationError):
            GeneSet("s", "d", ())
        with pytest.raises(ValidationError):
            GeneSet("s", "d", ("A", "A"))

    def test_file_round_trip(self, tmp_path):
        from repro.data import read_gmt, write_gmt

        sets = [GeneSet("s", "d", ("A", "B"))]
        write_gmt(sets, tmp_path / "x.gmt")
        assert read_gmt(tmp_path / "x.gmt") == sets


# ---------------------------------------------------------------------------
# leaf ordering
# ---------------------------------------------------------------------------
class TestLeafOrder:
    def test_ordering_preserves_tree_structure(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(12, 8))
        tree = hierarchical_cluster(data)
        ordered = order_leaves_by_weight(tree, data)
        assert ordered.n_leaves == tree.n_leaves
        assert sorted(ordered.leaf_order()) == list(range(12))
        # same merge heights (structure unchanged, only orientation)
        h1 = sorted(n.height for n in tree.internal_nodes())
        h2 = sorted(n.height for n in ordered.internal_nodes())
        assert np.allclose(h1, h2)
        # original untouched
        assert tree.leaf_order() != ordered.leaf_order() or True

    def test_sibling_weights_sorted(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(10, 6))
        tree = hierarchical_cluster(data)
        ordered = order_leaves_by_weight(tree, data)
        means = np.nanmean(data, axis=1)
        for node in ordered.internal_nodes():
            left_mean = means[node.left.leaf_indices()].mean()
            right_mean = means[node.right.leaf_indices()].mean()
            assert left_mean <= right_mean + 1e-12

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        tree = hierarchical_cluster(rng.normal(size=(6, 4)))
        with pytest.raises(ValidationError):
            order_leaves_by_weight(tree, rng.normal(size=(5, 4)))

    def test_reorder_tree_bijection(self):
        rng = np.random.default_rng(8)
        tree = hierarchical_cluster(rng.normal(size=(5, 4)))
        mapping = {0: 4, 1: 3, 2: 2, 3: 1, 4: 0}
        re = reorder_tree(tree, mapping)
        assert sorted(re.leaf_order()) == list(range(5))
        with pytest.raises(ValidationError):
            reorder_tree(tree, {0: 0, 1: 0, 2: 2, 3: 3, 4: 4})


# ---------------------------------------------------------------------------
# legends
# ---------------------------------------------------------------------------
class TestLegend:
    def test_horizontal_legend_renders(self):
        cm = get_colormap("red-green")
        dl = DisplayList(200, 40, background=(0, 0, 0))
        dl.extend(legend_commands(cm, Box(5, 5, 190, 30)))
        px = dl.render_full()
        # leftmost ramp pixels green-ish, rightmost red-ish
        left = px[10, 6]
        right = px[10, 193]
        assert left[1] > left[0]  # G > R
        assert right[0] > right[1]  # R > G

    def test_vertical_legend_renders(self):
        cm = get_colormap("red-green")
        dl = DisplayList(80, 200)
        dl.extend(legend_commands(cm, Box(5, 5, 70, 190), orientation="vertical"))
        px = dl.render_full()
        top = px[6, 10]
        bottom = px[193, 10]
        assert top[0] > top[1]  # + on top = red
        assert bottom[1] > bottom[0]

    def test_validation(self):
        cm = get_colormap("red-green")
        with pytest.raises(RenderError):
            legend_commands(cm, Box(0, 0, 100, 20), orientation="diagonal")
        with pytest.raises(RenderError):
            legend_commands(cm, Box(0, 0, 100, 20), n_ticks=1)
        with pytest.raises(RenderError):
            legend_commands(cm, Box(0, 0, 5, 5))


# ---------------------------------------------------------------------------
# frame sequences
# ---------------------------------------------------------------------------
class TestFrameSequence:
    def test_scroll_sequence_runs_with_verification(self, wall_app):
        app, truth, _ = wall_app
        geo = WallGeometry(rows=1, cols=2, tile_width=220, tile_height=180)
        wall = DisplayWall(geo, n_nodes=2, schedule="dynamic")
        app.select_genes(list(truth.esr_induced), source="seq")
        app.sync_layer.shared_viewport.set_zoom(4)

        driver = FrameSequenceDriver(
            wall, lambda: app.display_list(geo.canvas_width, geo.canvas_height)
        )
        steps = FrameSequenceDriver.scroll_steps(app, rows_per_frame=1, n_frames=4)
        stats = driver.run(steps, verify_against_serial=True)
        assert stats.n_frames == 4
        assert stats.fps > 0
        assert len(stats.frame_seconds) == 4
        assert stats.worst_frame_seconds() >= stats.mean_frame_seconds() - 1e-9
        # scrolling actually moved the viewport
        assert app.sync_layer.shared_viewport.scroll_row > 0

    def test_frames_change_as_viewport_scrolls(self, wall_app):
        app, truth, _ = wall_app
        geo = WallGeometry(rows=1, cols=1, tile_width=450, tile_height=240)
        wall = DisplayWall(geo, n_nodes=1)
        app.select_genes(list(truth.esr_induced), source="seq2")
        app.sync_layer.shared_viewport.set_zoom(3)
        driver = FrameSequenceDriver(
            wall, lambda: app.display_list(geo.canvas_width, geo.canvas_height)
        )
        stats = driver.run(
            FrameSequenceDriver.scroll_steps(app, 2, 2), keep_pixels=True
        )
        assert stats.n_frames == 2
        assert not np.array_equal(driver.frames[0].pixels, driver.frames[1].pixels)

    def test_empty_steps_rejected(self, wall_app):
        app, _, _ = wall_app
        geo = WallGeometry(rows=1, cols=1, tile_width=100, tile_height=100)
        wall = DisplayWall(geo, n_nodes=1)
        driver = FrameSequenceDriver(wall, lambda: DisplayList(100, 100))
        with pytest.raises(ValidationError):
            driver.run([])


# ---------------------------------------------------------------------------
# coexpression networks
# ---------------------------------------------------------------------------
class TestCoexpression:
    @pytest.fixture(scope="class")
    def spell_data(self):
        return make_spell_compendium(
            n_datasets=6, n_relevant=3, n_genes=120, module_size=12,
            query_size=4, seed=71,
        )

    def test_module_forms_a_component(self, spell_data):
        comp, truth = spell_data
        ds = comp[truth.relevant_datasets[0]]
        graph = coexpression_graph(ds, threshold=0.6)
        modules = extract_modules(graph, min_size=5)
        assert modules, "planted module should form a dense component"
        best = max(modules, key=lambda m: len(set(m) & set(truth.module_genes)))
        overlap = len(set(best) & set(truth.module_genes)) / len(truth.module_genes)
        assert overlap >= 0.8

    def test_irrelevant_dataset_sparser(self, spell_data):
        comp, truth = spell_data
        dense = coexpression_graph(comp[truth.relevant_datasets[0]], threshold=0.6)
        sparse = coexpression_graph(comp[truth.irrelevant_datasets[0]], threshold=0.6)
        module = set(truth.module_genes)
        dense_edges = sum(1 for u, v in dense.edges if u in module and v in module)
        sparse_edges = sum(1 for u, v in sparse.edges if u in module and v in module)
        assert dense_edges > sparse_edges * 2

    def test_consensus_requires_support(self, spell_data):
        comp, truth = spell_data
        consensus = consensus_graph(comp, threshold=0.6, min_support=3)
        for _, _, data in consensus.edges(data=True):
            assert data["support"] >= 3
        module = set(truth.module_genes)
        module_edges = sum(
            1 for u, v in consensus.edges if u in module and v in module
        )
        assert module_edges > 0  # the planted module persists across datasets

    def test_validation(self, spell_data):
        comp, truth = spell_data
        ds = comp[0]
        with pytest.raises(ValidationError):
            coexpression_graph(ds, threshold=0.0)
        with pytest.raises(ValidationError):
            coexpression_graph(ds, genes=["ONLY_ONE"])
        with pytest.raises(ValidationError):
            extract_modules(coexpression_graph(ds), min_size=0)
