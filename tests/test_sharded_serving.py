"""Tests for the sharded serving tier: ring, shards, router, degradation.

The acceptance bar is the oracle property: a query through the sharded
scatter-gather path returns rankings **bit-identical** to a single-node
:class:`SpellService` over the same compendium — including dataset
filters, ``top_k`` caps, float32 shards, pagination, and replica
failover.  The degradation bar: losing a shard yields a structured
partial (``partial=True`` + ``shards`` detail) or a structured
``SHARD_UNAVAILABLE`` — never a hang, a raw 500, or a silent cut.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.api.app import ApiApp
from repro.api.errors import as_api_error
from repro.api.protocol import (
    BatchSearchRequest,
    ExportRequest,
    SearchRequest,
    SearchResponse,
)
from repro.cluster_serving import (
    HashRing,
    build_local_topology,
    plan_assignment,
    shard_compendium,
)
from repro.spell import SpellIndex, SpellService
from repro.spell.partials import GeneUniverse
from repro.synth import make_spell_compendium
from repro.util.errors import RpcError, SearchError, ValidationError

N_SHARDS = 3


@pytest.fixture(scope="module")
def setup():
    """(compendium, truth) shared read-only by the whole module."""
    return make_spell_compendium(
        n_datasets=9,
        n_relevant=3,
        n_genes=150,
        n_conditions=10,
        module_size=12,
        query_size=3,
        seed=7,
    )


@pytest.fixture(scope="module")
def oracle(setup):
    """The single-node reference answers (cache off: every query real)."""
    comp, _ = setup
    with SpellService(comp, cache_size=0) as service:
        yield service


@pytest.fixture(scope="module")
def topo(setup):
    """Healthy 3-shard topology with replication=2 — read-only tests only."""
    comp, _ = setup
    with build_local_topology(
        comp, n_shards=N_SHARDS, replication=2, cache_size=0
    ) as topology:
        yield topology


def fresh_topology(comp, **kwargs):
    """A throwaway topology for tests that kill or corrupt shards."""
    kwargs.setdefault("n_shards", N_SHARDS)
    kwargs.setdefault("cache_size", 0)
    kwargs.setdefault("rpc_timeout", 10.0)
    return build_local_topology(comp, **kwargs)


def assert_bit_identical(sharded, single):
    """Two SpellResults agree to the last bit (scores compared as bytes)."""
    assert sharded.query == single.query
    assert sharded.query_used == single.query_used
    assert sharded.query_missing == single.query_missing
    assert sharded.datasets == single.datasets
    assert sharded.genes.ids.tolist() == single.genes.ids.tolist()
    assert sharded.genes.scores.tobytes() == single.genes.scores.tobytes()
    assert sharded.genes.n_datasets.tolist() == single.genes.n_datasets.tolist()
    assert sharded.genes.total == single.genes.total


class TestHashRing:
    def test_owners_distinct_and_deterministic(self):
        ring = HashRing([f"n{i}" for i in range(5)])
        again = HashRing([f"n{i}" for i in range(5)])
        for key in ("a", "b", "deadbeef", "fingerprint-x"):
            owners = ring.owners(key, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners == again.owners(key, 3)  # pure function of inputs

    def test_replication_clamped_to_node_count(self):
        ring = HashRing(["a", "b"])
        assert len(ring.owners("k", 5)) == 2
        assert len(ring.owners("k", 0)) == 1  # at least the primary

    def test_validation(self):
        with pytest.raises(ValidationError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValidationError, match="duplicate node ids"):
            HashRing(["a", "a"])
        with pytest.raises(ValidationError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_plan_keys_on_fingerprint_not_name(self):
        """Renaming a dataset must not move its data."""
        nodes = [f"n{i}" for i in range(4)]
        plan = plan_assignment(
            [("old_name", "fp-123"), ("new_name", "fp-123")], nodes, replication=2
        )
        assert plan["old_name"] == plan["new_name"]

    def test_rebalance_moves_only_a_minority(self):
        """Consistent hashing: adding one node reassigns a minority of
        keys (vs. ~all for modulo placement)."""
        keys = [f"fp-{i}" for i in range(200)]
        before = HashRing([f"n{i}" for i in range(4)])
        after = HashRing([f"n{i}" for i in range(5)])
        moved = sum(
            before.owners(k, 1) != after.owners(k, 1) for k in keys
        )
        assert 0 < moved < len(keys) / 2


class TestShardCompendium:
    def test_subsets_cover_compendium(self, setup):
        comp, _ = setup
        node_ids = [f"shard-{i}" for i in range(N_SHARDS)]
        held: dict[str, int] = {ds.name: 0 for ds in comp}
        for nid in node_ids:
            for ds in shard_compendium(comp, node_ids, nid):
                held[ds.name] += 1
        # replication=1: every dataset on exactly one shard
        assert all(count == 1 for count in held.values())

    def test_replication_duplicates_ownership(self, setup):
        comp, _ = setup
        node_ids = [f"shard-{i}" for i in range(N_SHARDS)]
        held = {ds.name: 0 for ds in comp}
        for nid in node_ids:
            for ds in shard_compendium(comp, node_ids, nid, replication=2):
                held[ds.name] += 1
        assert all(count == 2 for count in held.values())

    def test_unknown_node_rejected(self, setup):
        comp, _ = setup
        with pytest.raises(ValidationError, match="not in the node set"):
            shard_compendium(comp, ["shard-0"], "ghost")


class TestOracleBitIdentity:
    """Sharded answers == single-node answers, to the last bit."""

    def test_plain_query(self, setup, topo, oracle):
        _, truth = setup
        query = list(truth.query_genes)
        assert_bit_identical(topo.router.search(query), oracle.search(query))

    def test_top_k(self, setup, topo, oracle):
        _, truth = setup
        query = list(truth.query_genes)
        assert_bit_identical(
            topo.router.search(query, top_k=11), oracle.search(query, top_k=11)
        )

    def test_dataset_filter(self, setup, topo, oracle):
        comp, truth = setup
        query = list(truth.query_genes)
        picked = [comp[i].name for i in (0, 3, 7)]
        assert_bit_identical(
            topo.router.search(query, datasets=picked),
            oracle.search(query, datasets=picked),
        )

    def test_missing_query_genes_partition(self, setup, topo, oracle):
        _, truth = setup
        query = list(truth.query_genes) + ["NOSUCHGENE"]
        assert_bit_identical(topo.router.search(query), oracle.search(query))

    def test_respond_pagination_parity(self, setup, topo, oracle):
        _, truth = setup
        for page in (0, 2):
            request = SearchRequest(
                genes=tuple(truth.query_genes), page=page, page_size=7
            )
            sharded = topo.router.respond(request)
            single = oracle.respond(request)
            assert sharded.gene_rows == single.gene_rows
            assert sharded.dataset_rows == single.dataset_rows
            assert sharded.total_genes == single.total_genes
            assert sharded.total_pages == single.total_pages
            # healthy topology: the v1 partiality fields stay quiet
            assert sharded.partial is False
            assert sharded.shards == {}

    def test_batch_parity(self, setup, topo, oracle):
        comp, truth = setup
        queries = [
            tuple(truth.query_genes),
            (comp[0].gene_ids[0], comp[0].gene_ids[1]),
            (comp[4].gene_ids[5],),
        ]
        request = BatchSearchRequest(
            searches=tuple(SearchRequest(genes=q, page_size=15) for q in queries)
        )
        sharded = topo.router.respond_batch(request)
        single = oracle.respond_batch(request)
        assert len(sharded.results) == len(queries)
        for a, b in zip(sharded.results, single.results):
            assert a.gene_rows == b.gene_rows
            assert a.dataset_rows == b.dataset_rows

    def test_export_stream_parity(self, setup, topo, oracle):
        _, truth = setup
        request = ExportRequest(genes=tuple(truth.query_genes), chunk_size=40)
        strip = ("elapsed_seconds",)
        sharded = [
            {k: v for k, v in chunk.to_wire().items() if k not in strip}
            for chunk in topo.router.iter_result(request)
        ]
        single = [
            {k: v for k, v in chunk.to_wire().items() if k not in strip}
            for chunk in oracle.iter_result(request)
        ]
        assert sharded == single  # same chunks, same trailer checksum

    def test_float32_shards_match_float32_single_node(self, setup):
        comp, truth = setup
        query = list(truth.query_genes)
        with SpellService(comp, cache_size=0, dtype=np.float32) as single:
            with fresh_topology(comp, replication=1, dtype=np.float32) as topology:
                assert_bit_identical(
                    topology.router.search(query), single.search(query)
                )


class TestReplicaFailover:
    def test_replicated_dataset_survives_shard_death_bit_identically(
        self, setup, oracle
    ):
        comp, truth = setup
        query = list(truth.query_genes)
        with fresh_topology(comp, replication=2) as topology:
            topology.kill("shard-1")
            result = topology.router.search(query)
            assert_bit_identical(result, oracle.search(query))
            response = topology.router.respond(
                SearchRequest(genes=tuple(query))
            )
            assert response.partial is False
            assert response.shards == {}

    def test_unreplicated_shard_death_yields_structured_partial(self, setup):
        comp, truth = setup
        with fresh_topology(comp, replication=1) as topology:
            lost = sorted(ds.name for ds in topology.shard("shard-1").compendium)
            assert lost  # the plan gave shard-1 something to lose
            topology.kill("shard-1")
            response = topology.router.respond(
                SearchRequest(genes=tuple(truth.query_genes))
            )
            assert response.partial is True
            assert response.shards["missing_datasets"] == lost
            for name in lost:
                assert response.shards["failures"][name]  # per-dataset reasons
            assert "error" in response.shards["nodes"]["shard-1"]
            # surviving datasets still ranked — degraded, not empty
            assert response.gene_rows

    def test_partial_survives_the_wire(self, setup):
        comp, truth = setup
        with fresh_topology(comp, replication=1) as topology:
            topology.kill("shard-0")
            response = topology.router.respond(
                SearchRequest(genes=tuple(truth.query_genes))
            )
            again = SearchResponse.from_wire(response.to_wire())
            assert again.partial is True
            assert again.shards == response.shards

    def test_partial_results_never_cached(self, setup):
        comp, truth = setup
        query = tuple(truth.query_genes)
        with fresh_topology(comp, replication=1, cache_size=8) as topology:
            surviving = sorted(
                ds.name
                for nid in ("shard-0", "shard-2")
                for ds in topology.shard(nid).compendium
            )
            topology.kill("shard-1")
            assert topology.router.respond(SearchRequest(genes=query)).partial
            # the gap was not admitted: an identical query must re-gather
            assert topology.router.cache_stats()["entries"] == 0
            # a complete answer (filtered to reachable datasets) is cached
            complete = SearchRequest(genes=query, datasets=tuple(surviving))
            assert topology.router.respond(complete).partial is False
            assert topology.router.cache_stats()["entries"] == 1

    def test_allow_partial_false_turns_loss_into_hard_error(self, setup):
        comp, truth = setup
        with fresh_topology(comp, replication=1, allow_partial=False) as topology:
            victim = next(
                node.node_id for node in topology.shards if len(node.compendium)
            )
            topology.kill(victim)
            with pytest.raises(RpcError, match="shard\\(s\\) unavailable"):
                topology.router.search(list(truth.query_genes))

    def test_export_refuses_to_truncate(self, setup):
        """The checksummed export stream must never silently omit a lost
        shard's genes: shard loss is SHARD_UNAVAILABLE, not a short file."""
        comp, truth = setup
        with fresh_topology(comp, replication=1) as topology:
            topology.kill("shard-1")
            with pytest.raises(RpcError) as excinfo:
                list(
                    topology.router.iter_result(
                        ExportRequest(genes=tuple(truth.query_genes))
                    )
                )
            assert as_api_error(excinfo.value).code == "SHARD_UNAVAILABLE"

    def test_total_outage_is_shard_unavailable(self, setup):
        comp, truth = setup
        with fresh_topology(comp, replication=1) as topology:
            for i in range(N_SHARDS):
                topology.kill(f"shard-{i}")
            with pytest.raises(RpcError, match="no shard reachable") as excinfo:
                topology.router.search(list(truth.query_genes))
            err = as_api_error(excinfo.value)
            assert err.code == "SHARD_UNAVAILABLE"
            assert err.http_status == 503


class TestStalenessRefusal:
    def test_stale_replica_refused_and_failed_over(self, setup, oracle):
        """A shard holding yesterday's bytes refuses (fingerprint check)
        and the router silently fails over to the fresh replica —
        stale data is never folded into a ranking."""
        comp, truth = setup
        query = list(truth.query_genes)
        with fresh_topology(comp, replication=2) as topology:
            victim_name = comp[0].name
            primary = topology.router._plan[victim_name][0]
            node = topology.shard(primary)
            node._fingerprints[victim_name] = "0" * 40  # simulate stale content
            result = topology.router.search(query)
            assert_bit_identical(result, oracle.search(query))
            assert node._refused >= 1  # the stale copy was asked and said no

    def test_stale_sole_owner_is_skipped_not_served(self, setup):
        comp, truth = setup
        with fresh_topology(comp, replication=1) as topology:
            victim_name = comp[0].name
            owner = topology.router._plan[victim_name][0]
            topology.shard(owner)._fingerprints[victim_name] = "f" * 40
            response = topology.router.respond(
                SearchRequest(genes=tuple(truth.query_genes))
            )
            assert response.partial is True
            assert victim_name in response.shards["missing_datasets"]
            reasons = " ".join(response.shards["failures"][victim_name])
            assert "stale content" in reasons

    def test_duplicate_ownership_never_double_counts(self, setup, topo, oracle):
        """replication=2 puts every dataset on two shards; the router asks
        exactly one owner per dataset, so nothing is counted twice."""
        _, truth = setup
        result = topo.router.search(list(truth.query_genes))
        names = [score.name for score in result.datasets]
        assert len(names) == len(set(names))
        single = oracle.search(list(truth.query_genes))
        assert result.genes.n_datasets.tolist() == single.genes.n_datasets.tolist()


class TestMergeDeterminism:
    def test_merge_invariant_under_reply_reordering(self, setup):
        """The merge is a pure function: contribution dicts built in any
        insertion order (shard replies race) give bit-identical results,
        because only the canonical walk order touches floats."""
        comp, truth = setup
        universe = GeneUniverse([(ds.name, ds.gene_ids) for ds in comp])
        selected = universe.dataset_names
        query = list(truth.query_genes)
        query_used, query_missing, q_slots = universe.resolve_query(
            query, selected, filtered=False
        )
        parts = list(SpellIndex.build(comp).search_partials(query))

        def merged(order):
            return universe.merge(
                query,
                query_used,
                query_missing,
                q_slots,
                selected,
                {p.name: p for p in order},
            )

        baseline = merged(parts)
        shuffled = list(parts)
        for seed in (1, 2, 3):
            random.Random(seed).shuffle(shuffled)
            result = merged(shuffled)
            assert result.genes.ids.tolist() == baseline.genes.ids.tolist()
            assert (
                result.genes.scores.tobytes() == baseline.genes.scores.tobytes()
            )
            assert result.datasets == baseline.datasets

    def test_merge_refuses_missing_contribution(self, setup):
        comp, _ = setup
        universe = GeneUniverse([(ds.name, ds.gene_ids) for ds in comp])
        selected = universe.dataset_names
        query = [comp[0].gene_ids[0]]
        query_used, query_missing, q_slots = universe.resolve_query(
            query, selected, filtered=False
        )
        with pytest.raises(SearchError, match="missing partial"):
            universe.merge(
                query, query_used, query_missing, q_slots, selected, {}
            )


class TestErrorParity:
    """Validation errors are transport-independent: the router raises the
    same message a single-node service would."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query": []},
            {"query": ["G1", "G1"]},
            {"query": ["NOSUCHGENE"]},
            {"query": ["ignored"], "datasets": ["nope"]},
        ],
    )
    def test_same_search_error(self, setup, topo, oracle, kwargs):
        query = kwargs["query"]
        datasets = kwargs.get("datasets")
        with pytest.raises(SearchError) as sharded_err:
            topo.router.search(query, datasets=datasets)
        with pytest.raises(SearchError) as single_err:
            oracle.search(query, datasets=datasets)
        assert str(sharded_err.value) == str(single_err.value)


class TestRouterFacade:
    def test_health_carries_shard_map(self, setup, topo):
        comp, _ = setup
        app = ApiApp(topo.router)
        status, body = app.handle_wire("health", None)
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == len(comp)
        nodes = body["shards"]["nodes"]
        assert set(nodes) == {f"shard-{i}" for i in range(N_SHARDS)}
        for snapshot in nodes.values():
            assert snapshot["alive"] is True
        assert body["shards"]["replication"] == 2

    def test_wire_search_and_structured_degradation(self, setup, oracle):
        """The router behind the unmodified ApiApp: wire parity while
        healthy, structured partial after a kill, 503 after total loss."""
        comp, truth = setup
        query = list(truth.query_genes)
        with fresh_topology(comp, replication=1) as topology:
            app = ApiApp(topology.router)
            status, body = app.handle_wire(
                "search", {"genes": query, "page_size": 25}
            )
            assert status == 200
            _, single_body = ApiApp(oracle).handle_wire(
                "search", {"genes": query, "page_size": 25}
            )
            assert body["gene_rows"] == single_body["gene_rows"]
            assert body["partial"] is False

            topology.kill("shard-0")
            status, body = app.handle_wire("search", {"genes": query})
            assert status == 200
            assert body["partial"] is True
            assert body["shards"]["missing_datasets"]

            topology.kill("shard-1")
            topology.kill("shard-2")
            status, body = app.handle_wire("search", {"genes": query})
            assert status == 503
            assert body["error"]["code"] == "SHARD_UNAVAILABLE"

    def test_router_serving_stats_shape(self, topo):
        stats = topo.router.serving_stats()
        assert stats["router"]["n_shards"] == N_SHARDS
        assert stats["router"]["replication"] == 2
        assert topo.router.shard_stats()["replication"] == 2
        assert topo.router.index_bytes() > 0
