"""Tests for the persistent index store and the array-backed query path:
save→load round trips (mmap and in-memory), stale-shard sync, manifest
validation, and GeneTable / top-k ranking semantics."""

import json

import numpy as np
import pytest

import repro.spell.index as index_mod
from repro.api.protocol import SearchRequest
from repro.data import Compendium, Dataset, ExpressionMatrix
from repro.spell import (
    GeneScore,
    GeneTable,
    IndexStore,
    SpellIndex,
    SpellService,
    ranked_gene_table,
)
from repro.spell.store import FORMAT_VERSION, MANIFEST_NAME
from repro.synth import make_spell_compendium
from repro.util.errors import SearchError, StoreCorruptError, StoreError


@pytest.fixture()
def setup():
    return make_spell_compendium(
        n_datasets=6,
        n_relevant=2,
        n_genes=80,
        n_conditions=10,
        module_size=10,
        query_size=3,
        seed=7,
    )


def _replaced(comp: Compendium, name: str) -> Dataset:
    """A same-name dataset with perturbed values (a genuinely stale shard)."""
    old = comp[name]
    values = np.array(old.matrix.values)
    values[0] = -values[0]
    return Dataset(
        name=name,
        matrix=ExpressionMatrix(
            values, list(old.matrix.gene_ids), list(old.matrix.condition_names)
        ),
    )


def _full_ranking(result):
    return (
        result.dataset_ranking(),
        [(g.gene_id, g.score, g.n_datasets) for g in result.genes],
    )


# ------------------------------------------------------------- fingerprints
class TestFingerprints:
    def test_dataset_fingerprint_tracks_content(self, setup):
        comp, _ = setup
        ds = comp[0]
        assert ds.fingerprint == ds.fingerprint  # stable / cached
        changed = _replaced(comp, ds.name)
        assert changed.fingerprint != ds.fingerprint

    def test_compendium_fingerprint_is_order_sensitive(self, setup):
        comp, _ = setup
        fp = comp.fingerprint
        comp.reorder(list(reversed(comp.names)))
        assert comp.fingerprint != fp
        comp.reorder(list(reversed(comp.names)))
        assert comp.fingerprint == fp  # durable: same content+order, same token


# ------------------------------------------------------------ save and load
class TestSaveLoad:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_load_matches_fresh_build(self, setup, tmp_path, mmap):
        comp, truth = setup
        fresh = SpellIndex.build(comp)
        IndexStore.save(fresh, tmp_path / "store")
        loaded = IndexStore.load(tmp_path / "store", mmap=mmap)
        q = list(truth.query_genes)
        assert _full_ranking(loaded.search(q)) == _full_ranking(fresh.search(q))
        assert loaded.dataset_names == fresh.dataset_names
        assert loaded.dtype == fresh.dtype

    def test_mmap_load_is_zero_copy(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        loaded = IndexStore.load(tmp_path, mmap=True)
        assert all(isinstance(e.normalized, np.memmap) for e in loaded._entries)
        in_memory = IndexStore.load(tmp_path, mmap=False)
        assert not any(isinstance(e.normalized, np.memmap) for e in in_memory._entries)

    def test_float32_round_trip(self, setup, tmp_path):
        comp, truth = setup
        fresh = SpellIndex.build(comp, dtype=np.float32)
        IndexStore.save(fresh, tmp_path)
        loaded = IndexStore.load(tmp_path)
        assert loaded.dtype == np.dtype(np.float32)
        q = list(truth.query_genes)
        assert _full_ranking(loaded.search(q)) == _full_ranking(fresh.search(q))

    def test_matches_checks_content_order_and_dtype(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        assert IndexStore.matches(tmp_path, comp)
        assert IndexStore.matches(tmp_path, comp, dtype=np.float64)
        assert not IndexStore.matches(tmp_path, comp, dtype=np.float32)
        comp.reorder(list(reversed(comp.names)))
        assert not IndexStore.matches(tmp_path, comp)
        assert not IndexStore.matches(tmp_path / "nowhere", comp)


# ----------------------------------------------------------------- syncing
class TestSync:
    def test_sync_rewrites_exactly_the_changed_shards(self, setup, tmp_path):
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        before = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("shard-*.npy")}

        stale_name = comp.names[2]
        replacement = _replaced(comp, stale_name)
        comp.remove(stale_name)
        comp.add(replacement)
        updated = index.updated(comp)
        report = IndexStore.sync(updated, tmp_path)

        assert report.written == (stale_name,)
        assert report.removed == (stale_name,)  # the old shard file retires
        assert set(report.unchanged) == set(comp.names) - {stale_name}
        after = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("shard-*.npy")}
        untouched = set(before) & set(after)
        assert len(untouched) == len(comp) - 1
        assert all(before[f] == after[f] for f in untouched)
        # round trip still matches a fresh build of the mutated compendium
        loaded = IndexStore.load(tmp_path)
        fresh = SpellIndex.build(comp)
        q = comp[0].gene_ids[:2]
        assert _full_ranking(loaded.search(q)) == _full_ranking(fresh.search(q))

    def test_sync_removes_dropped_datasets(self, setup, tmp_path):
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        gone = comp.names[-1]
        index.remove_dataset(gone)
        report = IndexStore.sync(index, tmp_path)
        assert report.written == ()
        assert report.removed == (gone,)
        assert len(list(tmp_path.glob("shard-*.npy"))) == len(comp) - 1
        assert gone not in IndexStore.load(tmp_path).dataset_names

    def test_sync_into_empty_directory_is_a_full_save(self, setup, tmp_path):
        comp, _ = setup
        index = SpellIndex.build(comp)
        report = IndexStore.sync(index, tmp_path / "new")
        assert set(report.written) == set(comp.names)
        assert IndexStore.matches(tmp_path / "new", comp)

    def test_noop_sync_touches_nothing(self, setup, tmp_path):
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        report = IndexStore.sync(index, tmp_path)
        assert not report.dirty
        assert set(report.unchanged) == set(comp.names)

    def test_sync_sweeps_orphan_shard_files(self, setup, tmp_path):
        """Shard files no committed manifest references (a writer crashed
        between np.save and the manifest rename) are reclaimed by the
        next successful sync — a churning store can't grow forever."""
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        live = {p.name for p in tmp_path.glob("shard-*.npy")}
        orphans = {"shard-deadbeefdeadbeef.npy", "shard-0123456789abcdef.npy"}
        for name in orphans:
            np.save(tmp_path / name, np.zeros((3, 3)))
            # np.save appends .npy only when missing; both names end .npy
        assert {p.name for p in tmp_path.glob("shard-*.npy")} == live | orphans

        report = IndexStore.sync(index, tmp_path)
        assert set(report.swept) == orphans
        assert not report.dirty  # sweeping strays rewrites no live shard
        assert {p.name for p in tmp_path.glob("shard-*.npy")} == live

    def test_crash_between_write_and_sweep_loads_cleanly(self, setup, tmp_path):
        """Simulated crash mid-sync: the replacement shard landed on disk
        but the manifest publish (and sweep) never ran.  The store must
        load cleanly (old content — the committed manifest never points
        at missing files), and the next successful sync reclaims every
        unreferenced byte."""
        from repro.spell.store import _shard_filename

        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        old_names = list(comp.names)

        stale_name = comp.names[1]
        replacement = _replaced(comp, stale_name)
        comp.remove(stale_name)
        comp.add(replacement)
        updated = index.updated(comp)
        # the "crashed" writer: np.save of the new shard completed, then
        # the process died before the manifest rename
        entry = next(e for e in updated._entries if e.name == stale_name)
        stray = _shard_filename(
            entry.name, entry.fingerprint, entry.normalized.dtype.name
        )
        np.save(tmp_path / stray, np.ascontiguousarray(entry.normalized))

        loaded = IndexStore.load(tmp_path)  # must not trip over the stray
        assert loaded.dataset_names == old_names

        report = IndexStore.sync(updated, tmp_path)
        assert stale_name in report.written
        assert IndexStore.matches(tmp_path, comp)
        # every remaining file is referenced by the committed manifest
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        referenced = {s["file"] for s in manifest["shards"]}
        assert {p.name for p in tmp_path.glob("shard-*.npy")} == referenced

    def test_from_scratch_sync_sweeps_too(self, setup, tmp_path):
        """A corrupt manifest with stranded shard files: sync rebuilds the
        store *and* clears the strays the new manifest doesn't claim."""
        comp, _ = setup
        index = SpellIndex.build(comp)
        IndexStore.save(index, tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        np.save(tmp_path / "shard-feedfacefeedface.npy", np.ones((2, 2)))

        report = IndexStore.sync(index, tmp_path)
        assert set(report.written) == set(comp.names)
        assert "shard-feedfacefeedface.npy" in report.swept
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        referenced = {s["file"] for s in manifest["shards"]}
        assert {p.name for p in tmp_path.glob("shard-*.npy")} == referenced


# ------------------------------------------------------- manifest validation
class TestManifestValidation:
    def test_missing_store_raises_clear_error(self, tmp_path):
        with pytest.raises(StoreError, match="no index store"):
            IndexStore.load(tmp_path)

    def test_corrupt_json_raises_clear_error(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreError, match="corrupt index-store manifest"):
            IndexStore.load(tmp_path)

    def test_wrong_format_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "parquet"}))
        with pytest.raises(StoreError, match="not a spell-index-store"):
            IndexStore.load(tmp_path)

    def test_old_format_version_rejected(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="format_version"):
            IndexStore.load(tmp_path)

    def test_corrupt_shard_file_rejected(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        shard = next(iter(tmp_path.glob("shard-*.npy")))
        shard.write_bytes(b"definitely not an npy file")
        # no bound compendium -> nothing to rebuild from: the load must
        # refuse (never serve the bytes) and quarantine the damaged file
        with pytest.raises(StoreCorruptError, match="failed integrity verification"):
            IndexStore.load(tmp_path)
        assert not shard.exists()
        assert (tmp_path / "quarantine" / shard.name).exists()

    def test_shard_shape_mismatch_rejected(self, setup, tmp_path):
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["shards"][0]["gene_ids"] = manifest["shards"][0]["gene_ids"][:-1]
        manifest["shards"][0]["n_genes"] -= 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="shape"):
            IndexStore.load(tmp_path)


# ------------------------------------------------------- service integration
class TestServicePersistence:
    def test_second_service_cold_starts_from_store(self, setup, tmp_path, monkeypatch):
        comp, truth = setup
        store = tmp_path / "idx"
        first = SpellService(comp, store_dir=store)
        q = list(truth.query_genes)
        expect = _full_ranking(first.search(q))

        calls = []
        real = index_mod._index_dataset

        def counting(ds, dtype=np.float64):
            calls.append(ds.name)
            return real(ds, dtype)

        monkeypatch.setattr(index_mod, "_index_dataset", counting)
        second = SpellService(comp, store_dir=store)
        assert calls == []  # zero re-normalization: pure store load
        assert _full_ranking(second.search(q)) == expect

    def test_store_syncs_on_compendium_mutation(self, setup, tmp_path, monkeypatch):
        comp, truth = setup
        store = tmp_path / "idx"
        service = SpellService(comp, store_dir=store)
        q = list(truth.query_genes)
        service.search(q)

        stale_name = comp.names[0]
        replacement = _replaced(comp, stale_name)
        comp.remove(stale_name)
        comp.add(replacement)

        calls = []
        real = index_mod._index_dataset

        def counting(ds, dtype=np.float64):
            calls.append(ds.name)
            return real(ds, dtype)

        monkeypatch.setattr(index_mod, "_index_dataset", counting)
        service.search(q)  # triggers _sync_index + IndexStore.sync
        assert calls == [stale_name]  # exactly the changed dataset re-normalized
        # the on-disk store now serves the mutated compendium directly
        monkeypatch.setattr(
            index_mod, "_index_dataset", lambda *a, **k: pytest.fail("rebuilt")
        )
        reopened = SpellService(comp, store_dir=store)
        assert _full_ranking(reopened.search(q)) == _full_ranking(service.search(q))

    def test_stale_store_reuses_surviving_shards(self, setup, tmp_path, monkeypatch):
        """A restart against a mutated compendium re-normalizes only the
        diff; every surviving shard comes off disk."""
        comp, truth = setup
        store = tmp_path / "idx"
        IndexStore.save(SpellIndex.build(comp), store)

        stale_name = comp.names[1]
        replacement = _replaced(comp, stale_name)
        comp.remove(stale_name)
        comp.add(replacement)

        calls = []
        real = index_mod._index_dataset

        def counting(ds, dtype=np.float64):
            calls.append(ds.name)
            return real(ds, dtype)

        monkeypatch.setattr(index_mod, "_index_dataset", counting)
        service = SpellService(comp, store_dir=store)
        assert calls == [stale_name]
        q = list(truth.query_genes)
        fresh = SpellService(comp, cache_size=0, store_dir=None)
        assert _full_ranking(service.search(q)) == _full_ranking(fresh.search(q))
        assert IndexStore.matches(store, comp)  # synced back to current


# --------------------------------------------------- review regression cases
class TestReviewRegressions:
    def _two_datasets(self):
        rng = np.random.default_rng(11)

        def make(name, gene_ids):
            return Dataset(
                name=name,
                matrix=ExpressionMatrix(
                    rng.normal(size=(len(gene_ids), 8)),
                    gene_ids,
                    [f"c{i}" for i in range(8)],
                ),
            )

        shared = [f"G{i:03d}" for i in range(20)]
        return make("A", shared), make("B", shared + ["ONLY_IN_B"])

    def test_removed_datasets_genes_leave_the_universe(self):
        """A gene unique to a removed dataset must read as missing again."""
        a, b = self._two_datasets()
        index = SpellIndex.build(Compendium([a, b]))
        assert "ONLY_IN_B" in index.search(["ONLY_IN_B", "G001"]).query_used
        index.remove_dataset("B")
        result = index.search(["ONLY_IN_B", "G001", "G002"])
        assert "ONLY_IN_B" in result.query_missing
        assert "ONLY_IN_B" not in result.query_used
        with pytest.raises(SearchError, match="no query gene"):
            index.search(["ONLY_IN_B"])
        # re-adding resurrects the slot
        index.add_dataset(b)
        assert "ONLY_IN_B" in index.search(["ONLY_IN_B", "G001"]).query_used

    def test_dtype_switch_lands_in_new_shard_files(self, setup, tmp_path):
        """float32 and float64 shards must never share a file (a live
        mmap reader of one dtype survives a save of the other)."""
        comp, _ = setup
        IndexStore.save(SpellIndex.build(comp), tmp_path)
        f64_files = set(p.name for p in tmp_path.glob("shard-*.npy"))
        IndexStore.save(SpellIndex.build(comp, dtype=np.float32), tmp_path)
        f32_files = set(p.name for p in tmp_path.glob("shard-*.npy")) - f64_files
        assert len(f32_files) == len(comp)  # disjoint addressing
        loaded = IndexStore.load(tmp_path)
        assert loaded.dtype == np.dtype(np.float32)

    def test_service_dtype_switch_retires_old_shards(self, setup, tmp_path):
        """The service rebuild path syncs, so superseded shard files are
        cleaned up instead of stranding a full compendium copy per dtype."""
        comp, truth = setup
        store = tmp_path / "idx"
        SpellService(comp, store_dir=store)
        assert len(list(store.glob("shard-*.npy"))) == len(comp)
        s32 = SpellService(comp, store_dir=store, dtype=np.float32)
        assert len(list(store.glob("shard-*.npy"))) == len(comp)  # no orphans
        assert IndexStore.load(store).dtype == np.dtype(np.float32)
        assert s32.search(list(truth.query_genes)).total_genes > 0

    def test_service_recovers_from_matching_but_corrupt_store(
        self, setup, tmp_path
    ):
        comp, truth = setup
        store = tmp_path / "idx"
        SpellService(comp, store_dir=store)
        next(iter(store.glob("shard-*.npy"))).unlink()  # manifest still matches
        service = SpellService(comp, store_dir=store)  # must not raise
        q = list(truth.query_genes)
        fresh = SpellService(comp, cache_size=0)
        assert _full_ranking(service.search(q)) == _full_ranking(fresh.search(q))
        assert IndexStore.matches(store, comp)  # store healed by the rebuild


# ------------------------------------------------ GeneTable / top-k ranking
class TestGeneTable:
    def test_sequence_protocol(self):
        table = GeneTable(["A", "B"], [2.0, 1.0], [3, 1])
        assert len(table) == 2 and table.total == 2
        assert table[0] == GeneScore("A", 2.0, 3)
        assert [g.gene_id for g in table] == ["A", "B"]
        sliced = table[1:]
        assert isinstance(sliced, GeneTable)
        assert sliced.ranking() == ["B"] and sliced.total == 2

    def test_equality(self):
        a = GeneTable(["A"], [1.0], [1])
        assert a == GeneTable(["A"], [1.0], [1])
        assert a != GeneTable(["A"], [2.0], [1])

    def test_from_scores_round_trip(self):
        scores = [GeneScore("A", 2.0, 3), GeneScore("B", 1.0, 1)]
        assert list(GeneTable.from_scores(scores)) == scores

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(SearchError):
            GeneTable(["A", "B"], [1.0], [1])

    def test_top_k_matches_full_sort_with_ties(self):
        ids = np.asarray(["G5", "G1", "G4", "G2", "G3", "G6"])
        scores = np.asarray([0.5, 0.9, 0.5, 0.5, 0.9, 0.1])
        n_ds = np.ones(6, dtype=np.int64)
        full = ranked_gene_table(ids, scores, n_ds)
        assert full.ranking() == ["G1", "G3", "G2", "G4", "G5", "G6"]
        for k in range(7):
            top = ranked_gene_table(ids, scores, n_ds, top_k=k)
            assert top.ranking() == full.ranking()[:k]
            assert top.total == 6
        with pytest.raises(SearchError):
            ranked_gene_table(ids, scores, n_ds, top_k=-1)

    def test_service_top_k_pages_match_full_search(self, setup):
        comp, truth = setup
        q = tuple(truth.query_genes)
        cached = SpellService(comp)
        uncached = SpellService(comp, cache_size=0)
        full = cached.search(list(q))
        for page in (0, 1, 3):
            request = SearchRequest(genes=q, page=page, page_size=7)
            a = cached.respond(request)
            b = uncached.respond(request)
            assert a.gene_rows == b.gene_rows
            assert a.total_genes == b.total_genes == len(full.genes)

    def test_search_top_k_cached_separately_from_full(self, setup):
        comp, truth = setup
        q = list(truth.query_genes)
        service = SpellService(comp)
        partial = service.search(q, top_k=5)
        assert len(partial.genes) == 5
        assert partial.total_genes > 5
        full = service.search(q)
        assert len(full.genes) == full.total_genes  # not the truncated entry
        assert [g.gene_id for g in full.genes[:5]] == [g.gene_id for g in partial.genes]
