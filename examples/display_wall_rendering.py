#!/usr/bin/env python
"""Render ForestView on simulated display walls of increasing size.

Reproduces the paper's Figure 3 setting: the same application frame is
rendered on a 2-Mpixel desktop and on tiled walls driven by a simulated
render cluster, demonstrating (a) the pixel-capability ratio the paper
quotes ("about two orders of magnitude"), (b) tile-parallel rendering
with byte-identical compositing, and (c) graceful handling of a dead
render node.  Writes ``wall_frame.ppm`` with the composited wall frame.
"""

from pathlib import Path

import numpy as np

from repro.core import ForestView
from repro.synth import make_case_study
from repro.util.formatting import format_table, human_count
from repro.viz import write_ppm
from repro.wall import DESKTOP_2MPIXEL, DisplayWall, WallGeometry

OUT = Path(__file__).resolve().parent


def main() -> None:
    compendium, truth = make_case_study(n_genes=300, n_conditions=16, seed=11)
    app = ForestView.from_compendium(compendium, cluster_genes=True)
    app.select_genes(list(truth.esr_induced), source="esr")

    # scaled-down walls (tile 320x240) keep the example fast while
    # preserving the tile/node structure; capability ratios are reported
    # for the real projector resolutions alongside.
    walls = [
        ("desktop", WallGeometry(1, 1, 1600, 1200), 1),
        ("2x2 wall", WallGeometry(2, 2, 320, 240), 2),
        ("2x4 wall", WallGeometry(2, 4, 320, 240), 4),
        ("3x8 wall", WallGeometry(3, 8, 320, 240), 8),
    ]
    real_tiles = {"desktop": (1600, 1200), "2x2 wall": (1920, 1080),
                  "2x4 wall": (1920, 1080), "3x8 wall": (2560, 1600)}

    rows = []
    last_frame = None
    for name, geo, n_nodes in walls:
        wall = DisplayWall(geo, n_nodes=n_nodes, schedule="dynamic")
        dl = app.display_list(geo.canvas_width, geo.canvas_height)
        frame = wall.render(dl)
        serial = wall.render_serial(dl)
        assert np.array_equal(frame.pixels, serial.pixels), "tiling must be exact"
        rw, rh = real_tiles[name]
        real_pixels = geo.n_tiles * rw * rh
        rows.append([
            name,
            f"{geo.rows}x{geo.cols}",
            n_nodes,
            human_count(real_pixels),
            f"{real_pixels / DESKTOP_2MPIXEL.displayed_pixels:.1f}x",
            f"{frame.metrics.frame_seconds * 1000:.0f} ms",
            f"{frame.metrics.parallel_speedup():.2f}",
        ])
        last_frame = frame
    print("wall scaling (pixel capability at real projector resolutions):")
    print(format_table(
        ["config", "tiles", "nodes", "pixels", "vs 2Mpx desktop", "frame", "speedup"],
        rows,
    ))

    # --- fault injection ----------------------------------------------------
    geo = WallGeometry(2, 4, 320, 240)
    wall = DisplayWall(geo, n_nodes=4, schedule="dynamic")
    dl = app.display_list(geo.canvas_width, geo.canvas_height)
    healthy = wall.render(dl)
    degraded = wall.render(dl, fail_nodes={2})
    assert np.array_equal(healthy.pixels, degraded.pixels)
    print("\nnode 2 killed mid-frame: dynamic scheduler reassigned its tiles; "
          "frame is byte-identical.")
    print("tiles per node after failure:", degraded.metrics.tiles_per_node)

    out = OUT / "wall_frame.ppm"
    write_ppm(last_frame.pixels, out)
    print(f"\nwrote {out} ({last_frame.pixels.shape[1]}x{last_frame.pixels.shape[0]})")


if __name__ == "__main__":
    main()
