#!/usr/bin/env python
"""SPELL search walkthrough (the paper's Figure 4 web interface, headless).

Builds a compendium with a planted co-expression module, queries SPELL
with a few module genes, and prints the two orderings the web UI shows:
datasets by relevance and genes by weighted correlation — plus the
text-search baseline the paper contrasts against.
"""

import tempfile

from repro.spell import SpellService, TextSearchBaseline
from repro.stats import average_precision, precision_at_k
from repro.synth import make_spell_compendium
from repro.util.formatting import format_table
from repro.util.timing import Stopwatch


def main() -> None:
    compendium, truth = make_spell_compendium(
        n_datasets=16,
        n_relevant=5,
        n_genes=500,
        n_conditions=18,
        module_size=25,
        query_size=5,
        seed=42,
    )
    print(f"compendium: {compendium}")
    print(f"query genes: {', '.join(truth.query_genes)}")
    print(f"(planted module: {len(truth.module_genes)} genes, "
          f"coexpressed in {len(truth.relevant_datasets)} datasets)\n")

    service = SpellService(compendium, use_index=True)
    page = service.search_page(list(truth.query_genes), page=0, page_size=15)

    print(f"--- SPELL results ({page.elapsed_seconds * 1000:.1f} ms, "
          f"index {service.index_bytes() / 1024:.0f} KiB) ---")
    print("\ndatasets by relevance:")
    rows = []
    for rank, name, weight in page.dataset_rows:
        marker = "*" if name in set(truth.relevant_datasets) else ""
        rows.append([rank, name + marker, f"{weight:.3f}"])
    print(format_table(["rank", "dataset (*=planted)", "weight"], rows))

    print("\ngenes by weighted correlation:")
    module = set(truth.module_genes)
    rows = [
        [rank, gene + ("*" if gene in module else ""), f"{score:.3f}"]
        for rank, gene, score in page.gene_rows
    ]
    print(format_table(["rank", "gene (*=planted)", "score"], rows))

    # --- scoring vs ground truth and vs the text baseline -----------------
    hidden = set(truth.module_genes) - set(truth.query_genes)
    result = service.search(list(truth.query_genes))
    baseline = TextSearchBaseline(compendium).search(list(truth.query_genes))
    k = len(hidden)
    rows = [
        [
            "SPELL",
            f"{precision_at_k(result.gene_ranking(), hidden, k):.2f}",
            f"{average_precision(result.gene_ranking(), hidden):.2f}",
        ],
        [
            "text-match baseline",
            f"{precision_at_k(baseline.gene_ranking(), hidden, k):.2f}",
            f"{average_precision(baseline.gene_ranking(), hidden):.2f}",
        ],
    ]
    print(f"\nretrieval of the {k} hidden module genes:")
    print(format_table(["method", f"precision@{k}", "avg precision"], rows))

    # --- the batched multi-user path (search_many + result cache) ---------
    universe = compendium.gene_universe()
    batch_queries = [list(truth.query_genes)] + [
        [universe[i], universe[i + 1], universe[i + 2]] for i in range(0, 24, 3)
    ]
    batch_service = SpellService(compendium, n_workers=4)
    cold = batch_service.search_many(batch_queries, page_size=5)
    warm = batch_service.search_many(batch_queries, page_size=5)
    print(f"\nbatched API: {len(batch_queries)} queries, "
          f"{cold.n_workers} workers sharing one index")
    print(format_table(
        ["pass", "wall time", "queries/sec", "cache hits"],
        [
            ["cold", f"{cold.total_seconds * 1e3:.1f} ms",
             f"{cold.queries_per_second:.0f}", cold.cache_hits],
            ["warm", f"{warm.total_seconds * 1e3:.1f} ms",
             f"{warm.queries_per_second:.0f}", warm.cache_hits],
        ],
    ))

    # --- persist the index, then cold-start a "new process" from disk ------
    with tempfile.TemporaryDirectory() as store_dir:
        with Stopwatch() as sw_build:
            SpellService(compendium, store_dir=store_dir, cache_size=0)
        # a fresh service over the same data finds the store current and
        # memory-maps the saved shards instead of re-normalizing
        with Stopwatch() as sw_reload:
            reloaded = SpellService(compendium, store_dir=store_dir, cache_size=0)
        replayed = reloaded.search(list(truth.query_genes))
        identical = replayed.gene_ranking() == result.gene_ranking()
        print("\npersistent index (IndexStore):")
        print(format_table(
            ["cold start path", "wall time", "same rankings"],
            [
                ["build + save", f"{sw_build.elapsed * 1e3:.1f} ms", "-"],
                ["mmap reload", f"{sw_reload.elapsed * 1e3:.1f} ms",
                 "yes" if identical else "NO"],
            ],
        ))

    print("\nSPELL finds co-expressed genes the text search cannot see —")
    print("'SPELL uses the information within the data' (paper §3).")


if __name__ == "__main__":
    main()
