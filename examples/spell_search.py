#!/usr/bin/env python
"""SPELL search walkthrough over the v1 API (the paper's Figure 4, headless).

Builds a compendium with a planted co-expression module, boots the real
HTTP facade (`repro.api.http`) on an ephemeral port, and drives the full
v1 surface over the wire: `/v1/search`, `/v1/search/export` (chunked
NDJSON deep export, checksum-verified), `/v1/datasets`, `/v1/cluster`,
`/v1/render/heatmap`, `/v1/health` — then verifies the wire answers are
bit-identical to direct `SpellService` results and scores SPELL against
the text-search baseline.
"""

import base64
import hashlib
import json
import tempfile
import urllib.error
import urllib.request

from repro.api.app import ApiApp
from repro.api.http import serve_background
from repro.spell import SpellService, TextSearchBaseline
from repro.stats import average_precision, precision_at_k
from repro.synth import make_spell_compendium
from repro.util.formatting import format_table
from repro.util.timing import Stopwatch
from repro.viz.ppm import decode_ppm


def call(base: str, path: str, payload: dict | None = None) -> dict:
    """One wire round-trip (GET when payload is None, else POST JSON)."""
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(), method="POST"
        )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def main() -> None:
    compendium, truth = make_spell_compendium(
        n_datasets=16,
        n_relevant=5,
        n_genes=500,
        n_conditions=18,
        module_size=25,
        query_size=5,
        seed=42,
    )
    print(f"compendium: {compendium}")
    print(f"query genes: {', '.join(truth.query_genes)}")
    print(f"(planted module: {len(truth.module_genes)} genes, "
          f"coexpressed in {len(truth.relevant_datasets)} datasets)\n")

    # --- boot the real serving stack: SpellService -> ApiApp -> HTTP -------
    service = SpellService(compendium, n_workers=4)
    server, _ = serve_background(ApiApp(service))
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"v1 API serving on {base}/v1/ "
          f"({len(call(base, '/v1/datasets')['datasets'])} datasets listed)\n")

    # --- POST /v1/search: the Figure 4 web table, over the wire ------------
    page = call(base, "/v1/search",
                {"genes": list(truth.query_genes), "page_size": 15})
    print(f"--- /v1/search ({page['elapsed_seconds'] * 1000:.1f} ms, "
          f"page 1 of {page['total_pages']}) ---")
    print("\ndatasets by relevance:")
    relevant = set(truth.relevant_datasets)
    rows = [
        [rank, name + ("*" if name in relevant else ""), f"{weight:.3f}"]
        for rank, name, weight in page["dataset_rows"]
    ]
    print(format_table(["rank", "dataset (*=planted)", "weight"], rows))

    print("\ngenes by weighted correlation:")
    module = set(truth.module_genes)
    rows = [
        [rank, gene + ("*" if gene in module else ""), f"{score:.3f}"]
        for rank, gene, score in page["gene_rows"]
    ]
    print(format_table(["rank", "gene (*=planted)", "score"], rows))

    # --- wire parity: HTTP answers == direct SpellService ------------------
    direct = service.search(list(truth.query_genes))
    wire_genes = [(g, s) for _, g, s in page["gene_rows"]]
    direct_genes = [(g.gene_id, g.score) for g in direct.genes[:15]]
    print(f"\nwire parity vs direct SpellService.search(): "
          f"{'bit-identical' if wire_genes == direct_genes else 'MISMATCH'}")

    # --- scoring vs ground truth and vs the text baseline ------------------
    hidden = set(truth.module_genes) - set(truth.query_genes)
    ranking = [row[1] for row in call(
        base, "/v1/search",
        {"genes": list(truth.query_genes), "page_size": len(hidden)},
    )["gene_rows"]]
    baseline = TextSearchBaseline(compendium).search(list(truth.query_genes))
    k = len(hidden)
    rows = [
        [
            "SPELL (/v1/search)",
            f"{precision_at_k(ranking, hidden, k):.2f}",
            f"{average_precision(direct.gene_ranking(), hidden):.2f}",
        ],
        [
            "text-match baseline",
            f"{precision_at_k(baseline.gene_ranking(), hidden, k):.2f}",
            f"{average_precision(baseline.gene_ranking(), hidden):.2f}",
        ],
    ]
    print(f"\nretrieval of the {k} hidden module genes:")
    print(format_table(["method", f"precision@{k}", "avg precision"], rows))

    # --- POST /v1/cluster + /v1/render/heatmap: analysis over the wire -----
    cluster = call(base, "/v1/cluster", {
        "search": {"genes": list(truth.query_genes)},
        "top_genes": 12,
    })
    in_module = sum(g in module for g in cluster["genes"])
    print(f"\n/v1/cluster: {len(cluster['genes'])} top genes clustered in "
          f"dataset {cluster['dataset']} "
          f"({in_module} from the planted module); "
          f"{len(cluster['merges'])} merges")

    heatmap = call(base, "/v1/render/heatmap", {
        "search": {"genes": list(truth.query_genes)},
        "top_genes": 12,
        "cluster": True,
    })
    pixels = decode_ppm(base64.b64decode(heatmap["ppm_base64"]))
    assert pixels.shape == (heatmap["height"], heatmap["width"], 3)
    print(f"/v1/render/heatmap: {heatmap['width']}x{heatmap['height']} PPM "
          f"({len(heatmap['genes'])} gene rows, dataset {heatmap['dataset']}, "
          f"clustered row order)")

    # --- POST /v1/search/batch: the multi-user path ------------------------
    universe = compendium.gene_universe()
    searches = [{"genes": list(truth.query_genes), "page_size": 5}] + [
        {"genes": [universe[i], universe[i + 1], universe[i + 2]], "page_size": 5}
        for i in range(0, 24, 3)
    ]
    cold = call(base, "/v1/search/batch", {"searches": searches})
    warm = call(base, "/v1/search/batch", {"searches": searches})
    print(f"\n/v1/search/batch: {len(searches)} queries, "
          f"{cold['n_workers']} workers sharing one index")
    print(format_table(
        ["pass", "wall time", "cache hits"],
        [
            ["cold", f"{cold['total_seconds'] * 1e3:.1f} ms", cold["cache_hits"]],
            ["warm", f"{warm['total_seconds'] * 1e3:.1f} ms", warm["cache_hits"]],
        ],
    ))

    # --- POST /v1/search/export: the whole ranking as one NDJSON stream ----
    request = urllib.request.Request(
        base + "/v1/search/export",
        data=json.dumps(
            {"genes": list(truth.query_genes), "chunk_size": 50}
        ).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        stream_lines = [line for line in resp.read().split(b"\n") if line]
    parsed = [json.loads(line) for line in stream_lines]
    chunks, trailer = parsed[:-1], parsed[-1]
    export_rows = [row for c in chunks for row in c["gene_rows"]]
    assert trailer["status"] == "ok" and trailer["total_rows"] == len(export_rows)
    digest = hashlib.sha256()
    for line in stream_lines[:-1]:
        digest.update(line + b"\n")
    assert trailer["checksum"] == f"sha256:{digest.hexdigest()}"
    assert [r[1] for r in export_rows] == direct.gene_ranking()
    print(f"\n/v1/search/export: {trailer['total_rows']} rows in "
          f"{trailer['n_chunks']} chunks, checksum verified, "
          "ranking identical to the in-process search")

    # --- structured errors: codes, not stack traces ------------------------
    try:
        call(base, "/v1/search", {"genes": ["NOT_A_GENE"]})
    except urllib.error.HTTPError as err:
        body = json.loads(err.read())
        print(f"\nunknown gene -> HTTP {err.code}, "
              f"code={body['error']['code']} (structured, no 500)")

    # --- GET /v1/health: serving counters ----------------------------------
    health = call(base, "/v1/health")
    rows = [
        [endpoint, stats["count"], stats["errors"],
         f"{stats['mean_seconds'] * 1e3:.2f} ms"]
        for endpoint, stats in sorted(health["endpoints"].items())
    ]
    print("\n/v1/health endpoint counters:")
    print(format_table(["endpoint", "count", "errors", "mean latency"], rows))
    server.shutdown()

    # --- persist the index, then cold-start a "new process" from disk ------
    with tempfile.TemporaryDirectory() as store_dir:
        with Stopwatch() as sw_build:
            SpellService(compendium, store_dir=store_dir, cache_size=0)
        # a fresh service over the same data finds the store current and
        # memory-maps the saved shards instead of re-normalizing
        with Stopwatch() as sw_reload:
            reloaded = SpellService(compendium, store_dir=store_dir, cache_size=0)
        replayed = reloaded.search(list(truth.query_genes))
        identical = replayed.gene_ranking() == direct.gene_ranking()
        print("\npersistent index (IndexStore):")
        print(format_table(
            ["cold start path", "wall time", "same rankings"],
            [
                ["build + save", f"{sw_build.elapsed * 1e3:.1f} ms", "-"],
                ["mmap reload", f"{sw_reload.elapsed * 1e3:.1f} ms",
                 "yes" if identical else "NO"],
            ],
        ))

    # --- multi-core batch serving: worker processes share the mmap store ---
    from repro.api.protocol import BatchSearchRequest, SearchRequest

    batch = BatchSearchRequest(
        searches=tuple(
            SearchRequest(genes=(universe[i], universe[i + 1]), page_size=5,
                          use_cache=False)
            for i in range(0, 12, 2)
        )
    )
    with SpellService(compendium, n_procs=2, cache_size=0) as procs:
        served = procs.respond_batch(batch)
        pool = procs.serving_stats()["procpool"]
        baseline = SpellService(compendium, cache_size=0).respond_batch(batch)
        same = all(
            a.gene_rows == b.gene_rows
            for a, b in zip(served.results, baseline.results)
        )
    topology = (
        f"{pool['n_procs']} workers sharing the mmap index store "
        f"({pool['batches']} batch dispatched)"
        if pool is not None
        else "in-process fallback (worker pool unavailable here)"
    )
    print(f"\nmulti-process batch: {len(batch.searches)} queries over "
          f"{topology}; rankings identical to "
          f"in-process serving: {'yes' if same else 'NO'}")

    print("\nSPELL finds co-expressed genes the text search cannot see —")
    print("'SPELL uses the information within the data' (paper §3).")


if __name__ == "__main__":
    main()
