#!/usr/bin/env python
"""The paper's §4 case study, end to end.

A collaborator studying stress response and growth rate examines three
collections at once — environmental stress datasets, a nutrient
limitation study, and a knockout compendium — and discovers that gene
groups apparently responding to nutrients/knockouts are actually the
general environmental stress response (ESR).

Because our data generator *plants* the ESR, this script can score how
well the ForestView workflow recovers it (precision/recall against
ground truth), which the paper could only describe qualitatively.
"""

import numpy as np

from repro.core import ForestView, SpellAdapter, SynchronizationLayer
from repro.stats import pearson_matrix
from repro.synth import make_case_study
from repro.util.formatting import format_table


def main() -> None:
    compendium, truth = make_case_study(
        n_genes=400, n_conditions=16, n_knockouts=24, seed=2007
    )
    app = ForestView.from_compendium(compendium)
    print(f"loaded {len(compendium)} datasets: {', '.join(compendium.names)}")
    print(f"planted ESR module: {len(truth.esr_all)} genes "
          f"({len(truth.esr_induced)} induced / {len(truth.esr_repressed)} repressed)\n")

    # --- Step 1: suspicious cluster in the nutrient study -----------------
    # The collaborator drags over a co-varying block in the nutrient pane.
    # We emulate the imprecise human selection: the ESR rows plus bystanders.
    suspicious = list(truth.esr_induced) + list(truth.growth_genes[:4])
    app.select_genes(suspicious, source="nutrient-region")
    print(f"step 1: selected {len(suspicious)} suspicious genes from "
          f"{truth.nutrient_dataset_name}")

    # --- Step 2: scan the same genes across the stress datasets -----------
    views = app.zoom_views()
    assert SynchronizationLayer.rows_aligned(views)
    rows = []
    n_esr = len(truth.esr_induced)
    for view in views:
        corr = pearson_matrix(view.values)
        iu = np.triu_indices(n_esr, k=1)
        esr_coherence = float(np.nanmean(corr[:n_esr, :n_esr][iu]))
        cross = float(np.nanmean(np.abs(corr[:n_esr, n_esr:])))
        rows.append([view.pane_name, f"{esr_coherence:.2f}", f"{cross:.2f}"])
    print("\nstep 2: coherence of the suspected module in every dataset")
    print(format_table(["dataset", "ESR-block corr", "|cross| corr"], rows))

    # --- Step 3: SPELL search confirms the stress context ------------------
    spell = SpellAdapter(app)
    result = spell.query(list(truth.esr_induced[:5]), top_n=len(truth.esr_induced))
    print("\nstep 3: SPELL dataset ranking for the ESR query")
    print(format_table(
        ["rank", "dataset", "weight"],
        [[i + 1, d.name, f"{d.weight:.3f}"] for i, d in enumerate(result.datasets)],
    ))

    # --- Step 4: score the recovery against ground truth -------------------
    held_out = set(truth.esr_induced) - set(truth.esr_induced[:5])
    top = result.top_genes(len(held_out))
    recovered = set(top) & held_out
    precision = len(recovered) / max(1, len(top))
    recall = len(recovered) / max(1, len(held_out))
    f1 = 2 * precision * recall / max(1e-12, precision + recall)
    print("\nstep 4: held-out induced-ESR recovery by SPELL")
    print(format_table(
        ["precision", "recall", "F1"],
        [[f"{precision:.2f}", f"{recall:.2f}", f"{f1:.2f}"]],
    ))

    # --- Step 5: the sick-knockout observation ------------------------------
    ko = compendium[truth.knockout_dataset_name]
    cond_idx = {c: i for i, c in enumerate(ko.matrix.condition_names)}
    esr_rows = ko.matrix.indices_of(list(truth.esr_induced))
    esr_mean = np.nanmean(ko.matrix.values[np.asarray(esr_rows)], axis=0)
    sick = [cond_idx[c] for c in truth.sick_knockouts]
    healthy = [i for c, i in cond_idx.items() if c not in truth.sick_knockouts]
    print(
        "\nstep 5: mean induced-ESR expression in knockouts — "
        f"sick {np.nanmean(esr_mean[sick]):+.2f} vs healthy "
        f"{np.nanmean(esr_mean[healthy]):+.2f}"
    )
    print("conclusion: the nutrient/knockout signatures are superseded by the")
    print("general stress response — the paper's §4 biological insight.")

    # --- Step 6: the workflow-cost contrast ---------------------------------
    print(
        "\nworkflow cost: ONE ForestView instance, ONE selection op "
        f"({len(compendium)} datasets aligned) vs {len(compendium) * 2}+ "
        "single-dataset app launches with manual cut-and-paste."
    )


if __name__ == "__main__":
    main()
