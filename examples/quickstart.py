#!/usr/bin/env python
"""Quickstart: load a compendium into ForestView, select genes, render a frame.

Runs in a few seconds and writes ``quickstart_frame.ppm`` next to this
script — open it with any image viewer to see the Figure 2-style screen
(three synchronized dataset panes with global and zoom views).
"""

from pathlib import Path

from repro.core import ForestView
from repro.synth import make_stress_compendium
from repro.viz import write_ppm

OUT = Path(__file__).resolve().parent


def main() -> None:
    # 1. Build a compendium.  Real deployments call repro.data.load_dataset
    #    on PCL/CDT files; here we synthesize a Gasch-style stress collection
    #    with a planted environmental stress response (ESR) module.
    compendium = make_stress_compendium(n_genes=300, n_conditions=16, seed=7)
    print(f"compendium: {compendium}")

    # 2. Start ForestView with hierarchical clustering per dataset, so the
    #    global views show dendrogram-ordered heatmaps.
    app = ForestView.from_compendium(compendium, cluster_genes=True)
    print(f"app: {app}")

    # 3. Select genes by annotation search — the "Find Genes by name" box.
    selection = app.select_by_search(["heat shock", "trehalose"])
    print(f"search selected {len(selection)} genes: {list(selection.genes)[:5]}...")

    # 4. Synchronized zoom views: same genes, same order, in every pane.
    for view in app.zoom_views():
        present = sum(view.present)
        print(f"  pane {view.pane_name}: {present}/{view.n_rows} genes present")

    # 5. Export the gene list (what you would paste into another tool).
    print("--- exported gene list (head) ---")
    print("\n".join(app.export_gene_list_text().splitlines()[:4]))

    # 6. Render one laptop-sized frame and save it.
    pixels = app.render(1280, 720)
    out = OUT / "quickstart_frame.ppm"
    write_ppm(pixels, out)
    print(f"wrote {out} ({pixels.shape[1]}x{pixels.shape[0]})")


if __name__ == "__main__":
    main()
