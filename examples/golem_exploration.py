#!/usr/bin/env python
"""GOLEM walkthrough: enrichment analysis plus a local exploration map
(the paper's Figure 5), drawn as ASCII layers.

A gene list selected in ForestView is tested for GO-term enrichment, and
the most significant term's DAG neighbourhood is laid out the way GOLEM
draws it: ancestors above, the focus in the middle, children below.
"""

from repro.ontology import Golem
from repro.synth import make_annotated_ontology, systematic_names
from repro.util.formatting import format_table


def main() -> None:
    genes = systematic_names(600)
    ontology, annotations, truth = make_annotated_ontology(
        genes,
        n_terms=400,
        annotations_per_gene=3.0,
        planted={
            "response to oxidative stress": genes[:30],
            "trehalose biosynthesis": genes[30:45],
        },
        seed=99,
    )
    print(f"ontology: {len(ontology)} terms, {len(annotations)} genes annotated")

    golem = Golem(ontology, annotations)

    # the "researcher's cluster": mostly oxidative-stress genes + noise
    selection = genes[:25] + genes[100:110]
    report = golem.enrich_selection(selection, alpha=0.05)
    print(f"\nenrichment of a {len(selection)}-gene selection "
          f"({report.correction}, alpha={report.alpha}):")
    rows = []
    for r in report.results[:8]:
        rows.append([
            r.term_id,
            r.name[:40],
            f"{r.n_selected_annotated}/{r.n_universe_annotated}",
            f"{r.pvalue:.2e}",
            f"{r.adjusted_pvalue:.2e}",
            "YES" if r.significant else "no",
        ])
    print(format_table(
        ["term", "name", "k/K", "p-value", "adjusted", "significant"], rows
    ))

    planted_id = next(iter(truth.planted_terms))
    print(f"\nplanted term {planted_id} recovered at rank "
          f"{[r.term_id for r in report.results].index(planted_id) + 1}")

    # --- the local exploration map (Figure 5) -----------------------------
    local_map = golem.most_enriched_map(up=2, down=1)
    print(f"\nGOLEM local map around {local_map.focus} "
          f"({len(local_map)} terms, {len(local_map.edges)} edges):\n")
    layers: dict[int, list] = {}
    for node in local_map.nodes:
        layers.setdefault(node.layer, []).append(node)
    for layer in sorted(layers):
        label = {0: "FOCUS"}.get(layer, f"{abs(layer)} {'up' if layer < 0 else 'down'}")
        entries = []
        for node in sorted(layers[layer], key=lambda n: n.position.slot):
            sig = "**" if node.significant else ""
            entries.append(f"[{sig}{node.name[:28]} ({node.n_propagated}g){sig}]")
        print(f"  {label:>7}: " + "  ".join(entries))
    print("\n(** = significantly enriched; gene counts are true-path propagated)")


if __name__ == "__main__":
    main()
