#!/usr/bin/env python
"""Interactive wall session, scripted: pointer input, macros, animation.

Demonstrates the extension layers on top of the paper's core:

* :class:`repro.wall.WallInputRouter` — a pointer drag on the wall canvas
  becomes a region selection in the right pane (what the collaborators in
  Figure 3 do physically at the wall);
* :mod:`repro.core.commands` — the session is recorded as a replayable
  macro and saved to JSON;
* :class:`repro.wall.FrameSequenceDriver` — a scrolling interaction is
  rendered as a swap-locked frame sequence with FPS accounting;
* combined Figure-6 style frame: ForestView panes plus a rendered GOLEM
  map on one canvas, written to ``combined_frame.ppm``.
"""

from pathlib import Path

import numpy as np

from repro.core import CommandScript, ForestView, GolemAdapter, record_script
from repro.ontology import Golem, golem_map_commands
from repro.synth import make_annotated_ontology, make_case_study
from repro.viz import Box, write_ppm
from repro.wall import (
    DisplayWall,
    FrameSequenceDriver,
    WallGeometry,
    WallInputRouter,
)

OUT = Path(__file__).resolve().parent


def main() -> None:
    compendium, truth = make_case_study(n_genes=250, n_conditions=14, seed=31)
    app = ForestView.from_compendium(compendium, cluster_genes=True)
    geo = WallGeometry(rows=2, cols=3, tile_width=300, tile_height=220)
    wall = DisplayWall(geo, n_nodes=4, schedule="dynamic")

    # ------------------------------------------------------------ recording
    script, stop_recording = record_script(app)

    # ------------------------------------------------ pointer interaction
    router = WallInputRouter(app, geo)
    # locate the first pane's global view by probing, then drag down it
    first_pane = app.compendium.names[0]
    target_x = None
    global_ys: list[int] = []
    for x in range(10, geo.canvas_width, 4):
        ys = [
            y for y in range(0, geo.canvas_height, 4)
            if (h := router.hit_test(x, y)).pane_name == first_pane and h.view == "global"
        ]
        if ys:
            target_x, global_ys = x, ys
            break
    assert target_x is not None
    y0, y1 = global_ys[0], global_ys[len(global_ys) // 2]
    selection = router.drag_select(first_pane, target_x, y0, y1)
    print(f"pointer drag on the wall selected {len(selection)} genes "
          f"from pane {app.compendium.names[0]!r}")

    app.set_synchronized(True)
    stop_recording()
    macro_path = script.save(OUT / "session_macro.json")
    print(f"recorded {len(script)} commands -> {macro_path.name}")

    # replay check: a fresh app reaches the same state
    comp2, _ = make_case_study(n_genes=250, n_conditions=14, seed=31)
    app2 = ForestView.from_compendium(comp2, cluster_genes=True)
    CommandScript.load(macro_path).run(app2)
    assert app2.selection.genes == app.selection.genes
    print("macro replay reproduces the selection on a fresh instance")

    # ------------------------------------------------------- frame sequence
    app.sync_layer.shared_viewport.set_zoom(max(4, len(selection) // 3))
    driver = FrameSequenceDriver(
        wall, lambda: app.display_list(geo.canvas_width, geo.canvas_height)
    )
    stats = driver.run(FrameSequenceDriver.scroll_steps(app, 2, 6))
    print(f"scroll animation: {stats.n_frames} frames, "
          f"{stats.fps:.1f} fps sustained, worst frame "
          f"{stats.worst_frame_seconds() * 1000:.0f} ms")

    # ------------------------------------------- combined Figure-6 canvas
    genes = compendium.gene_universe()
    onto, store, otruth = make_annotated_ontology(
        genes, n_terms=200,
        planted={"environmental stress response": list(truth.esr_all)}, seed=32,
    )
    adapter = GolemAdapter(app, Golem(onto, store))
    app.select_genes(list(truth.esr_induced), source="esr")
    adapter.enrich_selection()
    local_map = adapter.map_for_top_term(up=2, down=1)

    dl = app.display_list(geo.canvas_width, geo.canvas_height)
    map_box = Box(geo.canvas_width - 330, geo.canvas_height - 250, 320, 240)
    dl.extend(golem_map_commands(local_map, map_box))
    frame = wall.render(dl)
    assert np.array_equal(frame.pixels, dl.render_full())
    out = OUT / "combined_frame.ppm"
    write_ppm(frame.pixels, out)
    print(f"combined ForestView+GOLEM wall frame -> {out.name} "
          f"({frame.pixels.shape[1]}x{frame.pixels.shape[0]})")


if __name__ == "__main__":
    main()
