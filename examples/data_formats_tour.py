#!/usr/bin/env python
"""Tour of every file format the reproduction speaks.

The paper's pipeline lives on interchange files: microarray data arrives
as PCL/CDT (+GTR/ATR trees), public compendia as GEO series matrices,
gene lists leave as plain lists or GMT sets, and GO annotations travel
as OBO + GAF.  This script round-trips a dataset through all of them in
a temporary directory and prints what each file looks like.
"""

import tempfile
from pathlib import Path

from repro.core import ForestView
from repro.data import (
    Compendium,
    GeneSet,
    load_dataset,
    read_series_matrix,
    save_dataset,
    write_gmt,
    write_series_matrix,
)
from repro.ontology import Golem, format_obo, parse_gaf, parse_obo, write_gaf
from repro.synth import make_annotated_ontology, make_simple_dataset


def head(text: str, n: int = 4) -> str:
    return "\n".join(text.splitlines()[:n])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_formats_"))
    print(f"working in {workdir}\n")

    dataset = make_simple_dataset(name="demo", n_genes=40, n_conditions=8, seed=5)

    # --- PCL: the raw pre-clustering table -------------------------------
    pcl_path = save_dataset(dataset, workdir)
    print(f"[PCL]  {pcl_path.name}")
    print(head(pcl_path.read_text()), "\n")

    # --- CDT + GTR: the clustered triple ----------------------------------
    clustered = dataset.clustered(cluster_arrays=True)
    cdt_path = save_dataset(clustered, workdir, basename="demo_clustered")
    print(f"[CDT]  {cdt_path.name} (+ .gtr/.atr)")
    print(head(cdt_path.read_text(), 3))
    gtr = cdt_path.with_suffix(".gtr")
    print(head(gtr.read_text(), 2), "\n")
    reloaded = load_dataset(cdt_path)
    assert reloaded.gene_tree is not None
    print(f"       reloaded: {reloaded!r}\n")

    # --- GEO SOFT series matrix -------------------------------------------
    soft_path = workdir / "GSE_demo_series_matrix.txt"
    write_series_matrix(dataset, soft_path)
    print(f"[SOFT] {soft_path.name}")
    print(head(soft_path.read_text(), 5), "\n")
    geo_dataset = read_series_matrix(soft_path)
    assert geo_dataset.matrix.equals(dataset.matrix)

    # --- GMT gene sets -------------------------------------------------------
    app = ForestView.from_compendium(Compendium([dataset]))
    selection = app.select_by_search(["heat shock", "trehalose"])
    gene_set = GeneSet("stress_hits", "annotation search result", selection.genes)
    gmt_path = workdir / "selections.gmt"
    write_gmt([gene_set], gmt_path)
    print(f"[GMT]  {gmt_path.name}")
    print(head(gmt_path.read_text(), 1), "\n")

    # --- OBO + GAF: the GO stack ---------------------------------------------
    ontology, annotations, _ = make_annotated_ontology(
        dataset.gene_ids, n_terms=30, planted={"stress response": list(selection.genes)},
        seed=6,
    )
    obo_path = workdir / "mini_go.obo"
    obo_path.write_text(format_obo(ontology))
    print(f"[OBO]  {obo_path.name}")
    print(head(obo_path.read_text(), 6), "\n")
    gaf_path = workdir / "mini_go.gaf"
    write_gaf(annotations, gaf_path)
    print(f"[GAF]  {gaf_path.name}")
    print(head(gaf_path.read_text(), 3), "\n")

    # prove the reloaded GO stack still answers enrichment queries
    ontology2 = parse_obo(obo_path.read_text())
    annotations2 = parse_gaf(gaf_path.read_text(), ontology2)
    golem = Golem(ontology2, annotations2)
    report = golem.enrich_selection(list(selection.genes))
    print(
        "round-tripped GO stack: top enriched term = "
        f"{report.results[0].name!r} (p={report.results[0].pvalue:.2e})"
    )


if __name__ == "__main__":
    main()
