"""Dendrogram tree structure shared by clustering, GTR/ATR files and rendering.

A tree over ``n`` leaves is stored as ``n - 1`` merge records (like a
scipy linkage matrix) wrapped in a node API convenient for traversal,
cutting, and drawing.  Leaves carry the row/column index into the matrix
that was clustered plus a stable string id (the GTR ``GENE3X`` /
``NODE5X`` convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["TreeNode", "DendrogramTree"]


@dataclass
class TreeNode:
    """One node of a dendrogram.

    ``index`` is the leaf's position in the clustered matrix (None for
    internal nodes); ``height`` is the merge distance (0.0 for leaves).
    """

    node_id: str
    height: float = 0.0
    index: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    correlation: float | None = None  # GTR files store 1 - distance here

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> Iterator["TreeNode"]:
        """Yield leaf nodes left-to-right."""
        if self.is_leaf:
            yield self
            return
        assert self.left is not None and self.right is not None
        yield from self.left.leaves()
        yield from self.right.leaves()

    def nodes(self) -> Iterator["TreeNode"]:
        """Yield every node in post-order (children before parents)."""
        if self.left is not None:
            yield from self.left.nodes()
        if self.right is not None:
            yield from self.right.nodes()
        yield self

    def leaf_indices(self) -> list[int]:
        return [leaf.index for leaf in self.leaves()]  # type: ignore[misc]


@dataclass
class DendrogramTree:
    """A full dendrogram over ``n_leaves`` items.

    Attributes
    ----------
    root:
        Topmost :class:`TreeNode`.
    n_leaves:
        Number of clustered items; the tree always has exactly
        ``n_leaves - 1`` internal nodes (or zero when n_leaves <= 1).
    """

    root: TreeNode
    n_leaves: int
    _by_id: dict[str, TreeNode] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._by_id:
            self._by_id = {node.node_id: node for node in self.root.nodes()}
        leaves = list(self.root.leaves())
        if len(leaves) != self.n_leaves:
            raise ValidationError(
                f"tree has {len(leaves)} leaves but n_leaves={self.n_leaves}"
            )
        indices = sorted(leaf.index for leaf in leaves)
        if indices != list(range(self.n_leaves)):
            raise ValidationError("leaf indices must be exactly 0..n_leaves-1")

    # ----------------------------------------------------------------- lookup
    def node(self, node_id: str) -> TreeNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r} in tree") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._by_id

    def leaf_order(self) -> list[int]:
        """Matrix row indices in the tree's left-to-right display order."""
        return self.root.leaf_indices()

    def internal_nodes(self) -> list[TreeNode]:
        return [n for n in self.root.nodes() if not n.is_leaf]

    def max_height(self) -> float:
        return max((n.height for n in self.root.nodes()), default=0.0)

    # ---------------------------------------------------------------- cutting
    def cut_at_height(self, height: float) -> list[list[int]]:
        """Clusters obtained by removing every merge above ``height``.

        Returns a list of clusters (each a list of leaf indices), ordered
        left-to-right as displayed.
        """
        clusters: list[list[int]] = []

        def descend(node: TreeNode) -> None:
            if node.is_leaf or node.height <= height:
                clusters.append(node.leaf_indices())
            else:
                assert node.left is not None and node.right is not None
                descend(node.left)
                descend(node.right)

        descend(self.root)
        return clusters

    def cut_k(self, k: int) -> list[list[int]]:
        """Cut into exactly ``k`` clusters by undoing the k-1 highest merges."""
        if not (1 <= k <= self.n_leaves):
            raise ValidationError(f"k must be in [1, {self.n_leaves}], got {k}")
        # Repeatedly split the frontier node with the greatest height.
        frontier: list[TreeNode] = [self.root]
        while len(frontier) < k:
            splittable = [n for n in frontier if not n.is_leaf]
            if not splittable:
                break
            tallest = max(splittable, key=lambda n: n.height)
            frontier.remove(tallest)
            assert tallest.left is not None and tallest.right is not None
            frontier.extend([tallest.left, tallest.right])
        return [n.leaf_indices() for n in frontier]

    # ------------------------------------------------------------ conversion
    def to_merges(self) -> np.ndarray:
        """Scipy-style linkage records ``(left_id, right_id, height, size)``.

        Leaves are numbered ``0..n-1`` and internal nodes ``n..2n-2`` in
        merge order (children always precede parents).
        """
        n = self.n_leaves
        records: list[tuple[int, int, float, int]] = []
        numbering: dict[int, int] = {}
        sizes: dict[int, int] = {}
        next_id = n
        for node in self.root.nodes():  # post-order: children first
            if node.is_leaf:
                numbering[id(node)] = node.index  # type: ignore[assignment]
                sizes[id(node)] = 1
            else:
                assert node.left is not None and node.right is not None
                li = numbering[id(node.left)]
                ri = numbering[id(node.right)]
                size = sizes[id(node.left)] + sizes[id(node.right)]
                records.append((li, ri, float(node.height), size))
                numbering[id(node)] = next_id
                sizes[id(node)] = size
                next_id += 1
        return np.asarray(records, dtype=np.float64).reshape(-1, 4)

    @staticmethod
    def from_merges(
        merges: np.ndarray,
        *,
        leaf_prefix: str = "GENE",
        node_prefix: str = "NODE",
        leaf_ids: Sequence[str] | None = None,
    ) -> "DendrogramTree":
        """Build a tree from scipy-style linkage records.

        ``leaf_ids`` overrides the default ``GENE{i}X`` naming (used when
        loading GTR files that reference existing gene ids).
        """
        merges = np.asarray(merges, dtype=np.float64)
        if merges.size == 0:
            raise ValidationError("cannot build a tree from zero merges")
        if merges.ndim != 2 or merges.shape[1] != 4:
            raise ValidationError(f"merges must be (n-1, 4), got {merges.shape}")
        n = merges.shape[0] + 1
        if leaf_ids is not None and len(leaf_ids) != n:
            raise ValidationError(f"{len(leaf_ids)} leaf ids for {n} leaves")
        nodes: dict[int, TreeNode] = {}
        for i in range(n):
            node_id = leaf_ids[i] if leaf_ids is not None else f"{leaf_prefix}{i}X"
            nodes[i] = TreeNode(node_id=node_id, index=i)
        for m, (li, ri, height, _size) in enumerate(merges):
            li_i, ri_i = int(li), int(ri)
            if li_i not in nodes or ri_i not in nodes:
                raise ValidationError(f"merge {m} references unknown node {li_i} or {ri_i}")
            parent = TreeNode(
                node_id=f"{node_prefix}{m + 1}X",
                height=float(height),
                left=nodes[li_i],
                right=nodes[ri_i],
                correlation=1.0 - float(height),
            )
            nodes[n + m] = parent
        return DendrogramTree(root=nodes[n + merges.shape[0] - 1], n_leaves=n)
