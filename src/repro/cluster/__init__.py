"""Clustering substrate: distances, hierarchical dendrograms, k-means.

ForestView's global views display gene/array dendrograms produced here
(or loaded from GTR/ATR files); SPELL and the case study reuse the
distance kernels.
"""

from repro.cluster.distance import (
    correlation_distance,
    euclidean_distance,
    cityblock_distance,
    distance_matrix,
    METRICS,
)
from repro.cluster.hierarchical import hierarchical_cluster, linkage_merges, LINKAGES
from repro.cluster.tree import TreeNode, DendrogramTree
from repro.cluster.kmeans import kmeans, KMeansResult
from repro.cluster.leaforder import order_leaves_by_weight, reorder_tree

__all__ = [
    "correlation_distance",
    "euclidean_distance",
    "cityblock_distance",
    "distance_matrix",
    "METRICS",
    "hierarchical_cluster",
    "linkage_merges",
    "LINKAGES",
    "TreeNode",
    "DendrogramTree",
    "kmeans",
    "KMeansResult",
    "order_leaves_by_weight",
    "reorder_tree",
]
