"""Distance matrices between expression profiles, with missing-value support.

All functions take a (items x conditions) array and return a symmetric
(items x items) distance matrix with zero diagonal.  Correlation distance
is the microarray default (Cluster 3.0 / Java TreeView lineage);
euclidean and cityblock are provided for completeness and for Ward
linkage which assumes euclidean geometry.
"""

from __future__ import annotations

import numpy as np

from repro.stats.correlation import pearson_matrix
from repro.util.errors import ValidationError

__all__ = ["correlation_distance", "euclidean_distance", "cityblock_distance", "distance_matrix"]

METRICS = ("correlation", "euclidean", "cityblock")


def correlation_distance(data: np.ndarray) -> np.ndarray:
    """``1 - pearson`` over pairwise-complete observations.

    Pairs with undefined correlation (insufficient overlap or zero
    variance) fall back to the maximum distance 2.0 so clustering stays
    total.
    """
    corr = pearson_matrix(data)
    dist = 1.0 - corr
    dist[np.isnan(dist)] = 2.0
    np.fill_diagonal(dist, 0.0)
    return dist


def _masked_pair_moments(data: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared helper: zero-filled data, validity mask, overlap counts."""
    X = np.asarray(data, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {X.shape}")
    M = (~np.isnan(X)).astype(np.float64)
    Xz = np.where(np.isnan(X), 0.0, X)
    n = M @ M.T
    return X, M, Xz, n


def euclidean_distance(data: np.ndarray) -> np.ndarray:
    """Euclidean distance scaled to the full condition count.

    Over the shared conditions of each pair we compute the mean squared
    difference, then multiply by the total condition count — the standard
    missing-data rescaling that keeps distances comparable across pairs
    with different overlap.  Pairs with no overlap get the largest
    observed distance.
    """
    X, M, Xz, n = _masked_pair_moments(data)
    d = X.shape[1]
    sq = (Xz * Xz) @ M.T
    cross = Xz @ Xz.T
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_sq_diff = (sq + sq.T - 2.0 * cross) / n
        dist = np.sqrt(np.maximum(mean_sq_diff * d, 0.0))
    no_overlap = n == 0
    if no_overlap.any():
        finite = dist[~no_overlap & ~np.isnan(dist)]
        fallback = float(finite.max()) if finite.size else 0.0
        dist[no_overlap] = fallback
    dist[np.isnan(dist)] = 0.0
    np.fill_diagonal(dist, 0.0)
    return dist


def cityblock_distance(data: np.ndarray) -> np.ndarray:
    """Manhattan distance with the same missing-data rescaling as euclidean.

    The |x - y| kernel does not factor into matmuls, so this runs one
    vectorized pass per row — O(n^2 d) like the others but with a Python
    loop of length n (acceptable: cityblock is not on any hot path).
    """
    X = np.asarray(data, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {X.shape}")
    n_items, d = X.shape
    M = ~np.isnan(X)
    Xz = np.where(M, X, 0.0)
    dist = np.zeros((n_items, n_items), dtype=np.float64)
    for i in range(n_items):
        shared = M[i] & M  # (n_items, d)
        diffs = np.abs(Xz[i] - Xz) * shared
        counts = shared.sum(axis=1).astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            row = diffs.sum(axis=1) / counts * d
        row[counts == 0] = np.nan
        dist[i] = row
    no_overlap = np.isnan(dist)
    if no_overlap.any():
        finite = dist[~no_overlap]
        dist[no_overlap] = float(finite.max()) if finite.size else 0.0
    np.fill_diagonal(dist, 0.0)
    return dist


def distance_matrix(data: np.ndarray, metric: str = "correlation") -> np.ndarray:
    """Dispatch on metric name; see :data:`METRICS`."""
    if metric == "correlation":
        return correlation_distance(data)
    if metric == "euclidean":
        return euclidean_distance(data)
    if metric == "cityblock":
        return cityblock_distance(data)
    raise ValidationError(f"unknown metric {metric!r}; choose from {METRICS}")
