"""Agglomerative hierarchical clustering (the Cluster 3.0 / TreeView lineage).

Implements single, complete, average (UPGMA) and Ward linkage over a
precomputed distance matrix using vectorized Lance–Williams updates.
Memory is O(n^2) and time O(n^2) per merge step (O(n^3) worst case),
which comfortably handles the thousands-of-genes matrices ForestView
clusters; the global-view heatmap never needs more.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.distance import distance_matrix
from repro.cluster.tree import DendrogramTree
from repro.util.errors import ValidationError

__all__ = ["hierarchical_cluster", "linkage_merges", "LINKAGES"]

LINKAGES = ("single", "complete", "average", "ward")


def linkage_merges(dist: np.ndarray, linkage: str = "average") -> np.ndarray:
    """Run agglomerative clustering on a distance matrix.

    Returns scipy-style merge records ``(left, right, height, size)``
    where leaves are ``0..n-1`` and new clusters ``n..2n-2``.

    The Lance–Williams coefficients express the distance from any third
    cluster ``k`` to the merged cluster ``(i ∪ j)`` as a combination of
    ``d(k,i)``, ``d(k,j)`` and ``d(i,j)``, which lets the whole distance
    row be updated in one vectorized expression.
    """
    if linkage not in LINKAGES:
        raise ValidationError(f"unknown linkage {linkage!r}; choose from {LINKAGES}")
    D = np.array(dist, dtype=np.float64, copy=True)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValidationError(f"distance matrix must be square, got shape {D.shape}")
    n = D.shape[0]
    if n < 2:
        raise ValidationError("need at least 2 items to cluster")
    if not np.allclose(D, D.T, equal_nan=True):
        raise ValidationError("distance matrix must be symmetric")
    if np.isnan(D).any():
        raise ValidationError("distance matrix must not contain NaN")

    # Ward's update operates on squared euclidean distances.
    if linkage == "ward":
        D = D * D

    INF = np.inf
    sizes = np.ones(n, dtype=np.int64)
    # cluster_ids[i] = scipy-style id of the cluster currently stored in slot i
    cluster_ids = np.arange(n, dtype=np.int64)
    np.fill_diagonal(D, INF)

    merges = np.empty((n - 1, 4), dtype=np.float64)
    for step in range(n - 1):
        # Global nearest active pair.  Deactivated slots keep INF in
        # their whole row/column (written below when a cluster is
        # absorbed), so argmin runs directly on D — no fresh masked n×n
        # copy per merge step (that np.where made the loop O(n³) in
        # allocations).
        flat = int(np.argmin(D))
        i, j = divmod(flat, n)
        if i > j:
            i, j = j, i
        d_ij = D[i, j]
        height = float(np.sqrt(d_ij)) if linkage == "ward" else float(d_ij)
        merges[step] = (cluster_ids[i], cluster_ids[j], height, sizes[i] + sizes[j])

        # Lance-Williams row update: slot i becomes the merged cluster.
        di = D[i]
        dj = D[j]
        ni = float(sizes[i])
        nj = float(sizes[j])
        if linkage == "single":
            new_row = np.minimum(di, dj)
        elif linkage == "complete":
            new_row = np.maximum(di, dj)
        elif linkage == "average":
            new_row = (ni * di + nj * dj) / (ni + nj)
        else:  # ward (squared distances)
            nk = sizes.astype(np.float64)
            total = nk + ni + nj
            with np.errstate(invalid="ignore", divide="ignore"):
                new_row = ((nk + ni) * di + (nk + nj) * dj - nk * d_ij) / total
        new_row[i] = INF
        new_row[j] = INF
        D[i, :] = new_row
        D[:, i] = new_row
        D[j, :] = INF  # retire slot j in place; it never reactivates
        D[:, j] = INF
        sizes[i] += sizes[j]
        cluster_ids[i] = n + step
    return merges


def hierarchical_cluster(
    data: np.ndarray,
    *,
    metric: str = "correlation",
    linkage: str = "average",
    leaf_ids: Sequence[str] | None = None,
    leaf_prefix: str = "GENE",
    node_prefix: str = "NODE",
) -> DendrogramTree:
    """Cluster the rows of ``data`` and return a :class:`DendrogramTree`.

    Parameters
    ----------
    data:
        (items x conditions) expression array; NaNs allowed.
    metric / linkage:
        Distance metric and merge criterion (see LINKAGES). Ward linkage
        pairs naturally with ``metric='euclidean'``; combining it with
        correlation distance is permitted but geometrically approximate.
    leaf_ids:
        Stable ids for the leaves (e.g. gene ids for GTR output).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {data.shape}")
    dist = distance_matrix(data, metric=metric)
    merges = linkage_merges(dist, linkage=linkage)
    return DendrogramTree.from_merges(
        merges, leaf_ids=leaf_ids, leaf_prefix=leaf_prefix, node_prefix=node_prefix
    )
