"""Leaf ordering for dendrograms (Cluster 3.0's subtree flipping).

A binary dendrogram fixes groupings but not the left/right orientation
of each internal node — 2^(n-1) visually different orderings draw the
same tree.  Heatmaps read far better when adjacent leaves are similar,
so we orient every subtree by a weight function (default: mean
expression), placing the lighter child first.  This is the classic
Cluster 3.0 behaviour; exact optimal ordering (Bar-Joseph) is O(n^4)
and unnecessary for display.
"""

from __future__ import annotations

import copy
from typing import Callable

import numpy as np

from repro.cluster.tree import DendrogramTree, TreeNode
from repro.util.errors import ValidationError

__all__ = ["order_leaves_by_weight", "reorder_tree"]


def order_leaves_by_weight(
    tree: DendrogramTree,
    data: np.ndarray,
    *,
    weight_fn: Callable[[np.ndarray], float] | None = None,
) -> DendrogramTree:
    """Return a new tree with each node's children oriented by weight.

    Parameters
    ----------
    tree:
        Dendrogram over the rows of ``data``.
    data:
        (n_leaves, conditions) matrix the tree was built from.
    weight_fn:
        Maps one row to a scalar; subtree weight is the mean over its
        leaves, and the lighter subtree is placed first (left/top).
        Default: NaN-ignoring row mean.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] != tree.n_leaves:
        raise ValidationError(
            f"data has {data.shape[0] if data.ndim == 2 else '?'} rows "
            f"for a tree with {tree.n_leaves} leaves"
        )
    if weight_fn is None:
        def weight_fn(row: np.ndarray) -> float:
            finite = row[~np.isnan(row)]
            return float(finite.mean()) if finite.size else 0.0

    leaf_weights = np.array([weight_fn(data[i]) for i in range(tree.n_leaves)])

    new_root = copy.deepcopy(tree.root)

    def orient(node: TreeNode) -> tuple[float, int]:
        """Post-order: orient children, return (weight_sum, leaf_count)."""
        if node.is_leaf:
            return float(leaf_weights[node.index]), 1
        assert node.left is not None and node.right is not None
        lw, ln = orient(node.left)
        rw, rn = orient(node.right)
        if lw / ln > rw / rn:  # lighter mean first
            node.left, node.right = node.right, node.left
        return lw + rw, ln + rn

    orient(new_root)
    return DendrogramTree(root=new_root, n_leaves=tree.n_leaves)


def reorder_tree(tree: DendrogramTree, new_positions: dict[int, int]) -> DendrogramTree:
    """Return a copy of ``tree`` with leaf indices remapped.

    ``new_positions[old_index] = new_index`` must be a bijection over
    ``0..n-1``; used when the underlying matrix rows are permuted.
    """
    n = tree.n_leaves
    if sorted(new_positions) != list(range(n)) or sorted(new_positions.values()) != list(range(n)):
        raise ValidationError("new_positions must be a bijection over 0..n-1")
    new_root = copy.deepcopy(tree.root)
    for leaf in new_root.leaves():
        leaf.index = new_positions[leaf.index]
    return DendrogramTree(root=new_root, n_leaves=n)
