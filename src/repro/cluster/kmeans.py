"""K-means clustering (extension beyond the paper's hierarchical default).

Provided because analysis tools plugged into ForestView's "Other
Analysis" slot commonly emit flat clusters; the §4 case-study example
uses it to pre-group candidate gene modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import default_rng

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    labels: np.ndarray  # (n_items,) cluster assignment
    centroids: np.ndarray  # (k, n_conditions)
    inertia: float  # sum of squared distances to assigned centroid
    n_iterations: int
    converged: bool

    def cluster_members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def kmeans(
    data: np.ndarray,
    k: int,
    *,
    max_iterations: int = 100,
    tol: float = 1e-6,
    seed: int | np.random.Generator | None = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Missing values are imputed to the row mean before clustering (rows
    that are entirely missing become all-zero), which matches the
    pragmatic treatment microarray tools apply before flat clustering.
    """
    X = np.array(data, dtype=np.float64, copy=True)
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not (1 <= k <= n):
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    rng = default_rng(seed)

    # row-mean imputation
    row_means = np.nanmean(np.where(np.isnan(X).all(axis=1, keepdims=True), 0.0, X), axis=1)
    nan_rows, nan_cols = np.nonzero(np.isnan(X))
    X[nan_rows, nan_cols] = row_means[nan_rows]

    centroids = _kmeans_pp_init(X, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # squared distances via ||x||^2 - 2 x.c + ||c||^2
        sq = (
            (X * X).sum(axis=1, keepdims=True)
            - 2.0 * X @ centroids.T
            + (centroids * centroids).sum(axis=1)[None, :]
        )
        labels = np.argmin(sq, axis=1)
        new_centroids = np.empty_like(centroids)
        for c in range(k):
            members = X[labels == c]
            if members.size:
                new_centroids[c] = members.mean(axis=0)
            else:
                # re-seed empty clusters at the point farthest from its centroid
                farthest = int(np.argmax(sq.min(axis=1)))
                new_centroids[c] = X[farthest]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            converged = True
            break
    final_sq = (
        (X * X).sum(axis=1, keepdims=True)
        - 2.0 * X @ centroids.T
        + (centroids * centroids).sum(axis=1)[None, :]
    )
    labels = np.argmin(final_sq, axis=1)
    inertia = float(np.maximum(final_sq[np.arange(n), labels], 0.0).sum())
    return KMeansResult(labels, centroids, inertia, iteration, converged)


def _kmeans_pp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared-distance sampling."""
    n = X.shape[0]
    centroids = np.empty((k, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = X[first]
    closest_sq = ((X - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centroids[c] = X[choice]
        closest_sq = np.minimum(closest_sq, ((X - centroids[c]) ** 2).sum(axis=1))
    return centroids
