"""ForestView frame construction: application state -> display list.

Reproduces the Figure 2 screen: vertical panes (one per dataset), each
with a title bar, a whole-dataset global view (with optional dendrogram
strip and selection highlight marks), and a zoom view showing the
current gene subset (synchronized order or native order), plus a status
line.  The output is a :class:`~repro.viz.scene.DisplayList`, so the
same frame renders on a laptop framebuffer or across wall tiles.
"""

from __future__ import annotations

import numpy as np

from repro.core.panes import DatasetPane
from repro.core.selection import GeneSelection
from repro.core.sync import SynchronizationLayer, ZoomView
from repro.util.errors import RenderError
from repro.viz.dendrogram import dendrogram_segments
from repro.viz.layout import Box, hsplit, vsplit
from repro.viz.scene import DisplayList, HeatmapCmd, LineCmd, RectCmd, TextCmd
from repro.viz.text import GLYPH_HEIGHT, text_width

__all__ = ["FrameStyle", "build_display_list"]


class FrameStyle:
    """Pixel constants for the ForestView frame (kept in one place)."""

    margin = 4
    pane_gap = 6
    title_height = 14
    status_height = 12
    tree_strip = 22
    highlight_strip = 6
    label_strip = 64
    view_gap = 4
    background = (12, 12, 16)
    pane_background = (24, 24, 30)
    title_color = (230, 230, 240)
    border_color = (70, 70, 90)
    highlight_color = (255, 160, 0)
    tree_color = (150, 150, 170)
    label_color = (200, 200, 210)
    absent_label_color = (110, 110, 120)
    status_color = (160, 200, 160)


def build_display_list(
    panes: list[DatasetPane],
    selection: GeneSelection | None,
    sync_layer: SynchronizationLayer,
    *,
    width: int,
    height: int,
    style: type[FrameStyle] = FrameStyle,
) -> DisplayList:
    """Compose the full-application frame onto a ``width x height`` canvas."""
    if not panes:
        raise RenderError("cannot render a ForestView frame with zero panes")
    dl = DisplayList(width, height, background=style.background)
    canvas = Box(0, 0, width, height).inset(style.margin)
    if canvas.w < 60 * len(panes) or canvas.h < 120:
        raise RenderError(
            f"canvas {width}x{height} too small for {len(panes)} panes"
        )
    body, status = _vsplit_px(canvas, canvas.h - style.status_height, style.view_gap)
    pane_boxes = hsplit(body, [1.0] * len(panes), gap=style.pane_gap)

    zoom_views: list[ZoomView | None] = [None] * len(panes)
    if selection is not None:
        zoom_views = list(sync_layer.zoom_views(panes, selection))

    for pane, box, zoom in zip(panes, pane_boxes, zoom_views):
        _render_pane(dl, pane, box, selection, zoom, sync_layer, style)

    _render_status(dl, status, selection, sync_layer, style)
    return dl


# ---------------------------------------------------------------------------
# pane rendering
# ---------------------------------------------------------------------------
def _render_pane(
    dl: DisplayList,
    pane: DatasetPane,
    box: Box,
    selection: GeneSelection | None,
    zoom: ZoomView | None,
    sync_layer: SynchronizationLayer,
    style: type[FrameStyle],
) -> None:
    dl.add(RectCmd(box.x, box.y, box.w, box.h, style.pane_background))
    _frame_border(dl, box, style.border_color)

    title, rest = _vsplit_px(box.inset(1), style.title_height, 1)
    _render_title(dl, title, pane, style)

    prefs = pane.preferences
    gf = prefs.global_fraction
    global_box, zoom_box = vsplit(rest, [gf, 1.0 - gf], gap=style.view_gap)
    _render_global_view(dl, global_box, pane, selection, style)
    if zoom is not None and zoom.n_rows > 0:
        _render_zoom_view(dl, zoom_box, pane, zoom, sync_layer, style)
    else:
        _center_text(dl, zoom_box, "NO SELECTION", style.absent_label_color)


def _render_title(dl: DisplayList, box: Box, pane: DatasetPane, style: type[FrameStyle]) -> None:
    label = _fit_text(pane.name.upper(), box.w - 4)
    dl.add(TextCmd(box.x + 2, box.y + (box.h - GLYPH_HEIGHT) // 2, label, style.title_color))


def _render_global_view(
    dl: DisplayList,
    box: Box,
    pane: DatasetPane,
    selection: GeneSelection | None,
    style: type[FrameStyle],
) -> None:
    prefs = pane.preferences
    tree_w = style.tree_strip if (prefs.show_gene_tree and pane.dataset.gene_tree) else 0
    hl_w = style.highlight_strip
    heat_w = box.w - tree_w - hl_w
    if heat_w < 4 or box.h < 4:
        return
    heat_box = Box(box.x + tree_w, box.y, heat_w, box.h)

    values = pane.global_values()
    dl.add(
        HeatmapCmd(
            heat_box.x, heat_box.y, heat_box.w, heat_box.h, values, prefs.colormap()
        )
    )
    if tree_w:
        for seg in dendrogram_segments(
            pane.dataset.gene_tree, x=box.x, y=box.y, w=tree_w - 2, h=box.h
        ):
            dl.add(LineCmd(seg.x0, seg.y0, seg.x1, seg.y1, style.tree_color))

    if selection is not None:
        n = pane.n_genes
        hx = heat_box.x + heat_box.w
        for row in pane.highlight_rows(selection):
            y = heat_box.y + row * heat_box.h // n
            dl.add(RectCmd(hx, y, hl_w, max(1, heat_box.h // n), style.highlight_color))


def _render_zoom_view(
    dl: DisplayList,
    box: Box,
    pane: DatasetPane,
    zoom: ZoomView,
    sync_layer: SynchronizationLayer,
    style: type[FrameStyle],
) -> None:
    prefs = pane.preferences
    # apply the shared viewport's row window in synchronized mode
    if zoom.synchronized:
        rows = list(sync_layer.shared_viewport.row_range)
        rows = [r for r in rows if r < zoom.n_rows] or list(range(zoom.n_rows))
    else:
        rows = list(range(zoom.n_rows))
    values = zoom.values[np.asarray(rows, dtype=np.intp)]
    gene_ids = [zoom.gene_ids[r] for r in rows]
    present = [zoom.present[r] for r in rows]

    row_px = box.h // max(1, len(rows))
    labels_on = prefs.show_annotations and row_px >= GLYPH_HEIGHT + 1 and box.w > style.label_strip + 30
    label_w = style.label_strip if labels_on else 0
    heat_box = Box(box.x + label_w, box.y, box.w - label_w, box.h)
    if heat_box.w < 4 or heat_box.h < 4:
        return
    dl.add(
        HeatmapCmd(
            heat_box.x, heat_box.y, heat_box.w, heat_box.h, values, prefs.colormap()
        )
    )
    if labels_on:
        annotations = pane.dataset.annotations
        n = len(rows)
        for i, (gene, here) in enumerate(zip(gene_ids, present)):
            y = heat_box.y + i * heat_box.h // n
            name = annotations.get(gene, "NAME", gene) or gene
            color = style.label_color if here else style.absent_label_color
            dl.add(
                TextCmd(box.x + 1, y + max(0, (heat_box.h // n - GLYPH_HEIGHT) // 2),
                        _fit_text(name.upper(), label_w - 2), color)
            )


def _render_status(
    dl: DisplayList,
    box: Box,
    selection: GeneSelection | None,
    sync_layer: SynchronizationLayer,
    style: type[FrameStyle],
) -> None:
    if selection is None:
        text = "NO SELECTION"
    else:
        text = f"{len(selection)} GENES SELECTED ({selection.source.upper()})"
    text += "  SYNC=" + ("ON" if sync_layer.synchronized else "OFF")
    dl.add(TextCmd(box.x, box.y + max(0, (box.h - GLYPH_HEIGHT) // 2),
                   _fit_text(text, box.w), style.status_color))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _frame_border(dl: DisplayList, box: Box, color) -> None:
    dl.add(RectCmd(box.x, box.y, box.w, 1, color))
    dl.add(RectCmd(box.x, box.y1 - 1, box.w, 1, color))
    dl.add(RectCmd(box.x, box.y, 1, box.h, color))
    dl.add(RectCmd(box.x1 - 1, box.y, 1, box.h, color))


def _vsplit_px(box: Box, first_px: int, gap: int) -> tuple[Box, Box]:
    """Split vertically at an absolute pixel height for the first box."""
    first_px = max(1, min(first_px, box.h - gap - 1))
    top = Box(box.x, box.y, box.w, first_px)
    bottom = Box(box.x, box.y + first_px + gap, box.w, box.h - first_px - gap)
    return top, bottom


def _fit_text(text: str, max_px: int) -> str:
    while text and text_width(text) > max_px:
        text = text[:-1]
    return text


def _center_text(dl: DisplayList, box: Box, text: str, color) -> None:
    text = _fit_text(text, box.w)
    tw = text_width(text)
    dl.add(
        TextCmd(box.x + max(0, (box.w - tw) // 2), box.y + max(0, (box.h - GLYPH_HEIGHT) // 2),
                text, color)
    )
