"""Cross-dataset gene search ("Find Genes by name" in Figure 1).

"Another method is to search over the gene annotation information by
entering a list of search criteria. The search is conducted across all
datasets and the synchronized results are displayed." (§2)
"""

from __future__ import annotations

from typing import Sequence

from repro.data.compendium import Compendium
from repro.util.errors import SearchError

__all__ = ["find_genes"]


def find_genes(
    compendium: Compendium,
    criteria: Sequence[str],
    *,
    fields: Sequence[str] | None = None,
    match: str = "substring",
) -> list[str]:
    """Search every dataset's annotations; union of hits in stable order.

    Order: datasets in compendium order, genes in their first-found
    order, duplicates removed.  Raises :class:`SearchError` when the
    criteria are all blank (matching the UI, which refuses empty
    searches rather than selecting everything).
    """
    terms = [str(c) for c in criteria if str(c).strip()]
    if not terms:
        raise SearchError("search criteria are empty")
    hits: dict[str, None] = {}
    for dataset in compendium:
        for gene_id in dataset.annotations.search(terms, fields=fields, match=match):
            if gene_id in dataset.matrix:  # only genes actually measured somewhere
                hits.setdefault(gene_id, None)
    return list(hits)
