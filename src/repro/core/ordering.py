"""Dataset ordering strategies ("Order Datasets" in Figure 1).

The flagship use is SPELL integration: "The datasets returned can be
displayed in decreasing order of relevance to the query" (§3).  We also
provide ordering by name and by selection coverage (how much of the
current gene subset a dataset contains).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.selection import GeneSelection
from repro.data.compendium import Compendium
from repro.util.errors import ValidationError

__all__ = ["order_by_name", "order_by_scores", "order_by_selection_coverage"]


def order_by_name(compendium: Compendium) -> list[str]:
    """Alphabetical dataset order."""
    return sorted(compendium.names)


def order_by_scores(compendium: Compendium, scores: Mapping[str, float]) -> list[str]:
    """Datasets by descending score (e.g. SPELL weights); unscored go last.

    Unknown dataset names in ``scores`` raise — a typo silently ignored
    would scramble the display the researcher asked for.
    """
    unknown = set(scores) - set(compendium.names)
    if unknown:
        raise ValidationError(f"scores reference unknown datasets: {sorted(unknown)}")
    return sorted(
        compendium.names,
        key=lambda name: (-scores.get(name, float("-inf")), name),
    )


def order_by_selection_coverage(
    compendium: Compendium, selection: GeneSelection
) -> list[str]:
    """Datasets by how many of the selected genes they measure (desc)."""
    selected = set(selection.genes)

    def coverage(name: str) -> int:
        ds = compendium[name]
        return sum(1 for g in selected if g in ds.matrix)

    return sorted(compendium.names, key=lambda name: (-coverage(name), name))
