"""The ForestView application facade.

One object wiring the whole Figure 1 architecture together: datasets
behind a merged interface, panes with global/zoom views, the selection
model, the synchronization layer, annotation search, dataset ordering,
exports, preferences, rendering (laptop or display wall) and the
SPELL/GOLEM integration hooks.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.events import (
    DatasetAdded,
    DatasetsReordered,
    EventBus,
    PreferencesChanged,
    SelectionChanged,
)
from repro.core.export import (
    export_gene_list,
    export_merged_pcl,
    format_gene_list,
    format_merged_pcl,
)
from repro.core.ordering import order_by_name, order_by_scores, order_by_selection_coverage
from repro.core.panes import DatasetPane
from repro.core.rendering import FrameStyle, build_display_list
from repro.core.search import find_genes
from repro.core.selection import GeneSelection, SelectionModel
from repro.core.sync import SynchronizationLayer, ZoomView
from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.data.merged import MergedDatasetInterface
from repro.util.errors import ValidationError
from repro.viz.scene import DisplayList
from repro.wall.cluster import DisplayWall, WallFrame

__all__ = ["ForestView"]


class ForestView:
    """Multi-dataset visualization and analysis application (paper §2).

    Typical headless session::

        app = ForestView.from_compendium(compendium)
        app.select_by_search(["heat shock"])           # find genes
        app.set_synchronized(True)                     # aligned zoom views
        views = app.zoom_views()                       # inspect the data
        pixels = app.render(1600, 1200)                # laptop frame
        frame = app.render_on_wall(wall)               # or a display wall
    """

    def __init__(self, compendium: Compendium) -> None:
        if len(compendium) == 0:
            raise ValidationError("ForestView needs at least one dataset")
        self.compendium = compendium
        self.bus = EventBus()
        self.selection_model = SelectionModel(self.bus)
        self.sync_layer = SynchronizationLayer(self.bus, synchronized=True)
        self.panes: list[DatasetPane] = [DatasetPane(ds) for ds in compendium]
        self._merged: MergedDatasetInterface | None = None
        # keep the shared viewport sized to the live selection
        self.bus.subscribe(SelectionChanged, self._on_selection_changed)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_compendium(
        cls, compendium: Compendium, *, cluster_genes: bool = False
    ) -> "ForestView":
        """Build the app; optionally hierarchically cluster every dataset first."""
        if cluster_genes:
            clustered = Compendium(ds.clustered() for ds in compendium)
            return cls(clustered)
        return cls(compendium)

    @classmethod
    def from_datasets(cls, datasets: Iterable[Dataset], **kwargs) -> "ForestView":
        return cls.from_compendium(Compendium(datasets), **kwargs)

    # ---------------------------------------------------------------- datasets
    def pane(self, name: str) -> DatasetPane:
        for pane in self.panes:
            if pane.name == name:
                return pane
        raise KeyError(f"no pane for dataset {name!r}")

    @property
    def merged_interface(self) -> MergedDatasetInterface:
        """The Figure 1 merged 3-D array interface (built lazily, cached)."""
        if self._merged is None:
            self._merged = MergedDatasetInterface(self.compendium)
        return self._merged

    def add_dataset(self, dataset: Dataset) -> None:
        """Add a dataset pane at the end (e.g. a subset loaded as a dataset)."""
        self.compendium.add(dataset)
        self.panes.append(DatasetPane(dataset))
        self._merged = None
        self.bus.publish(DatasetAdded(name=dataset.name))

    def load_selection_as_dataset(self, source_dataset: str, *, name: str | None = None) -> Dataset:
        """§2: "This subset can also be loaded into the ForestView display
        as a dataset." Subsets the source dataset to the current selection."""
        selection = self._require_selection()
        subset = self.compendium[source_dataset].subset(selection.genes, name=name)
        self.add_dataset(subset)
        return subset

    # ---------------------------------------------------------------- ordering
    def order_datasets(self, names: Sequence[str]) -> None:
        self.compendium.reorder(list(names))
        by_name = {p.name: p for p in self.panes}
        self.panes = [by_name[n] for n in self.compendium.names]
        self._merged = None
        self.bus.publish(DatasetsReordered(order=tuple(self.compendium.names)))

    def order_datasets_by_scores(self, scores: Mapping[str, float]) -> None:
        self.order_datasets(order_by_scores(self.compendium, scores))

    def order_datasets_by_name(self) -> None:
        self.order_datasets(order_by_name(self.compendium))

    def order_datasets_by_selection_coverage(self) -> None:
        self.order_datasets(
            order_by_selection_coverage(self.compendium, self._require_selection())
        )

    # --------------------------------------------------------------- selection
    @property
    def selection(self) -> GeneSelection | None:
        return self.selection_model.current

    def select_genes(self, genes: Iterable[str], *, source: str = "api") -> GeneSelection:
        return self.selection_model.select(genes, source=source)

    def select_region(self, dataset: str, start_row: int, end_row: int) -> GeneSelection:
        """Mouse-drag selection over a pane's global view (display rows)."""
        genes = self.pane(dataset).genes_in_region(start_row, end_row)
        return self.selection_model.select(genes, source=f"region:{dataset}")

    def select_by_search(
        self,
        criteria: Sequence[str],
        *,
        fields: Sequence[str] | None = None,
        match: str = "substring",
    ) -> GeneSelection:
        """Annotation search across all datasets -> synchronized selection."""
        genes = find_genes(self.compendium, criteria, fields=fields, match=match)
        if not genes:
            raise ValidationError(f"search matched no genes: {list(criteria)}")
        return self.selection_model.select(genes, source=f"search:{','.join(criteria)}")

    def extend_selection(self, genes: Iterable[str], *, source: str = "api") -> GeneSelection:
        return self.selection_model.extend(genes, source=source)

    def clear_selection(self) -> None:
        self.selection_model.clear()

    def _require_selection(self) -> GeneSelection:
        selection = self.selection
        if selection is None:
            raise ValidationError("no current selection")
        return selection

    def selection_coherence(
        self,
        dataset: str,
        *,
        n_permutations: int = 200,
        seed: int | None = None,
    ):
        """Tightness of the current selection within one dataset (§2's
        "tightness of grouping"): mean pairwise correlation with a
        permutation test against random same-size gene groups."""
        from repro.stats.coherence import coherence_test

        selection = self._require_selection()
        matrix = self.compendium[dataset].matrix
        rows = matrix.indices_of(list(selection.genes), missing="skip")
        if len(rows) < 2:
            raise ValidationError(
                f"selection has fewer than 2 genes measured in {dataset!r}"
            )
        return coherence_test(
            matrix.values, rows, n_permutations=n_permutations, seed=seed
        )

    def _on_selection_changed(self, event: SelectionChanged) -> None:
        max_cond = self.compendium.max_conditions()
        self.sync_layer.on_selection_changed(len(event.genes), max_cond)

    # ----------------------------------------------------------------- syncing
    @property
    def synchronized(self) -> bool:
        return self.sync_layer.synchronized

    def set_synchronized(self, flag: bool) -> None:
        self.sync_layer.set_synchronized(flag)

    def zoom_views(self) -> list[ZoomView]:
        """Current zoom-view content of every pane (selection required)."""
        return self.sync_layer.zoom_views(self.panes, self._require_selection())

    # -------------------------------------------------------------- preferences
    def set_preferences(self, dataset: str | None = None, **changes) -> None:
        """Update display preferences for one pane or (dataset=None) all panes.

        §2: preferences "can be adjusted independently for datasets or
        applied to all datasets."
        """
        targets = self.panes if dataset is None else [self.pane(dataset)]
        for pane in targets:
            pane.update_preferences(**changes)
        for field_name in changes:
            self.bus.publish(PreferencesChanged(dataset=dataset, field_name=field_name))

    # ------------------------------------------------------------------ export
    def export_gene_list_text(self, *, annotations: bool = True) -> str:
        return format_gene_list(self._require_selection(), self.compendium, annotations=annotations)

    def export_gene_list(self, path, *, annotations: bool = True):
        return export_gene_list(
            self._require_selection(), path, self.compendium, annotations=annotations
        )

    def export_merged_text(self, *, selection_only: bool = True) -> str:
        sel = self._require_selection() if selection_only else None
        return format_merged_pcl(self.compendium, sel)

    def export_merged(self, path, *, selection_only: bool = True):
        sel = self._require_selection() if selection_only else None
        return export_merged_pcl(self.compendium, path, sel)

    # --------------------------------------------------------------- rendering
    def display_list(
        self, width: int, height: int, *, style: type[FrameStyle] = FrameStyle
    ) -> DisplayList:
        return build_display_list(
            self.panes, self.selection, self.sync_layer, width=width, height=height, style=style
        )

    def render(self, width: int, height: int) -> np.ndarray:
        """Render one frame at the given resolution (desktop/laptop path)."""
        return self.display_list(width, height).render_full()

    def render_on_wall(self, wall: DisplayWall, **render_kwargs) -> WallFrame:
        """Render one frame across a simulated display wall."""
        dl = self.display_list(wall.geometry.canvas_width, wall.geometry.canvas_height)
        return wall.render(dl, **render_kwargs)

    def __repr__(self) -> str:
        sel = len(self.selection) if self.selection else 0
        return (
            f"ForestView({len(self.panes)} panes, {sel} genes selected, "
            f"sync={'on' if self.synchronized else 'off'})"
        )
