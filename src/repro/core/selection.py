"""Gene-subset selection: the object at the heart of every ForestView workflow.

"There are several methods available for choosing a gene subset" (§2):
region highlight, annotation search, and selection injected by an
analysis tool.  All converge on :class:`GeneSelection`; the model tracks
the current one plus history, and publishes changes on the event bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.events import EventBus, SelectionChanged
from repro.util.errors import ValidationError

__all__ = ["GeneSelection", "SelectionModel"]


@dataclass(frozen=True)
class GeneSelection:
    """An ordered, de-duplicated gene list plus provenance.

    Order matters: synchronized zoom views display genes in selection
    order, so "the same order and same scroll position" across panes is
    well defined.
    """

    genes: tuple[str, ...]
    source: str

    def __post_init__(self) -> None:
        if not self.genes:
            raise ValidationError("selection must contain at least one gene")
        if len(set(self.genes)) != len(self.genes):
            raise ValidationError("selection contains duplicate genes")

    def __len__(self) -> int:
        return len(self.genes)

    def __contains__(self, gene_id: str) -> bool:
        return gene_id in set(self.genes)

    def union(self, other: "GeneSelection", *, source: str | None = None) -> "GeneSelection":
        """Order-preserving union (self's genes first)."""
        merged = list(self.genes) + [g for g in other.genes if g not in set(self.genes)]
        return GeneSelection(tuple(merged), source or f"{self.source}+{other.source}")

    def intersection(self, other: "GeneSelection", *, source: str | None = None) -> "GeneSelection":
        keep = set(other.genes)
        common = tuple(g for g in self.genes if g in keep)
        if not common:
            raise ValidationError("intersection of selections is empty")
        return GeneSelection(common, source or f"{self.source}&{other.source}")

    def difference(self, other: "GeneSelection", *, source: str | None = None) -> "GeneSelection":
        drop = set(other.genes)
        remaining = tuple(g for g in self.genes if g not in drop)
        if not remaining:
            raise ValidationError("difference of selections is empty")
        return GeneSelection(remaining, source or f"{self.source}-{other.source}")


class SelectionModel:
    """Current selection + history, broadcasting changes on the bus."""

    def __init__(self, bus: EventBus) -> None:
        self._bus = bus
        self._current: GeneSelection | None = None
        self._history: list[GeneSelection] = []

    @property
    def current(self) -> GeneSelection | None:
        return self._current

    @property
    def history(self) -> list[GeneSelection]:
        return list(self._history)

    def select(self, genes: Iterable[str], *, source: str) -> GeneSelection:
        """Replace the current selection (dedup preserves first occurrence)."""
        ordered = tuple(dict.fromkeys(str(g) for g in genes))
        selection = GeneSelection(ordered, source)
        self._current = selection
        self._history.append(selection)
        self._bus.publish(SelectionChanged(genes=selection.genes, source=source))
        return selection

    def extend(self, genes: Iterable[str], *, source: str) -> GeneSelection:
        """Add genes to the current selection (or create one)."""
        if self._current is None:
            return self.select(genes, source=source)
        merged = self._current.union(
            GeneSelection(tuple(dict.fromkeys(str(g) for g in genes)), source)
        )
        return self.select(merged.genes, source=merged.source)

    def clear(self) -> None:
        self._current = None
        self._bus.publish(SelectionChanged(genes=(), source="clear"))

    def undo(self) -> GeneSelection | None:
        """Pop back to the previous selection in history (None if at start)."""
        if not self._history:
            return None
        self._history.pop()
        self._current = self._history[-1] if self._history else None
        genes = self._current.genes if self._current else ()
        source = self._current.source if self._current else "undo-empty"
        self._bus.publish(SelectionChanged(genes=genes, source=source))
        return self._current
