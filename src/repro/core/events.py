"""Event bus wiring ForestView's UI-ish components together.

The original application is interactive; our headless reproduction keeps
the same decoupling — selection, synchronization, ordering and
preference changes are announced on a bus so integrations (SPELL/GOLEM
adapters, renderers, session recorders) can react without the app facade
hard-wiring them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "Event",
    "SelectionChanged",
    "SyncToggled",
    "DatasetsReordered",
    "PreferencesChanged",
    "DatasetAdded",
    "ViewportScrolled",
    "EventBus",
]


@dataclass(frozen=True)
class Event:
    """Base class for all ForestView events."""


@dataclass(frozen=True)
class SelectionChanged(Event):
    genes: tuple[str, ...]
    source: str


@dataclass(frozen=True)
class SyncToggled(Event):
    synchronized: bool


@dataclass(frozen=True)
class DatasetsReordered(Event):
    order: tuple[str, ...]


@dataclass(frozen=True)
class PreferencesChanged(Event):
    dataset: str | None  # None = applied to all panes
    field_name: str


@dataclass(frozen=True)
class DatasetAdded(Event):
    name: str


@dataclass(frozen=True)
class ViewportScrolled(Event):
    scroll_row: int


class EventBus:
    """Synchronous publish/subscribe keyed by event class.

    Subscribers of a class also receive subclasses (subscribe to
    :class:`Event` for everything).  Handlers run in subscription order;
    a handler exception propagates to the publisher — silent handler
    failure hides bugs.
    """

    def __init__(self) -> None:
        self._handlers: list[tuple[type, Callable[[Event], None]]] = []
        self._log: list[Event] = []

    def subscribe(self, event_type: type, handler: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``handler`` for ``event_type``; returns an unsubscribe callable."""
        entry = (event_type, handler)
        self._handlers.append(entry)

        def unsubscribe() -> None:
            try:
                self._handlers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: Event) -> None:
        self._log.append(event)
        for event_type, handler in list(self._handlers):
            if isinstance(event, event_type):
                handler(event)

    @property
    def log(self) -> list[Event]:
        """Every event published, in order (tests and session recorders read this)."""
        return list(self._log)

    def events_of(self, event_type: type) -> list[Event]:
        return [e for e in self._log if isinstance(e, event_type)]
