"""Session persistence: capture and restore ForestView's view state.

A session records everything about the *view* that is not derivable from
the data: dataset order, current selection, synchronization flag,
shared-viewport scroll, and per-pane preferences.  The datasets
themselves are not serialized (they live in PCL/CDT files); a session is
re-applied to an app holding the same compendium.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.preferences import PanePreferences
from repro.util.errors import ValidationError

if TYPE_CHECKING:
    from repro.core.app import ForestView

__all__ = ["session_to_dict", "session_from_dict", "save_session", "load_session"]

_FORMAT_VERSION = 1


def session_to_dict(app: "ForestView") -> dict:
    selection = app.selection
    return {
        "version": _FORMAT_VERSION,
        "dataset_order": list(app.compendium.names),
        "synchronized": app.synchronized,
        "selection": (
            {"genes": list(selection.genes), "source": selection.source}
            if selection is not None
            else None
        ),
        "scroll_row": app.sync_layer.shared_viewport.scroll_row,
        "preferences": {pane.name: pane.preferences.to_dict() for pane in app.panes},
    }


def session_from_dict(app: "ForestView", data: dict) -> None:
    """Apply a recorded session to ``app`` (which must hold the same datasets)."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValidationError(f"unsupported session version {version!r}")
    order = data.get("dataset_order", [])
    if sorted(order) != sorted(app.compendium.names):
        raise ValidationError(
            "session datasets do not match the app's compendium; "
            f"session has {sorted(order)[:3]}..., app has {sorted(app.compendium.names)[:3]}..."
        )
    app.order_datasets(order)
    app.set_synchronized(bool(data.get("synchronized", True)))
    for name, prefs in data.get("preferences", {}).items():
        app.pane(name).set_preferences(PanePreferences.from_dict(prefs))
    selection = data.get("selection")
    if selection:
        app.select_genes(selection["genes"], source=selection.get("source", "session"))
        app.sync_layer.shared_viewport.scroll_to(int(data.get("scroll_row", 0)))
    else:
        app.clear_selection()


def save_session(app: "ForestView", path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(session_to_dict(app), indent=2, sort_keys=True))
    return path


def load_session(app: "ForestView", path: str | Path) -> None:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"session file {path} is not valid JSON: {exc}") from exc
    session_from_dict(app, data)
