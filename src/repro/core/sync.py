"""The visualization synchronization layer (Figure 1's distinguishing box).

Synchronized mode: every pane's zoom view shows the selected genes in
the *same order* (selection order) with blank rows where a dataset lacks
a gene, and all panes share one scroll position — "the user can scan
horizontally across a row of expression data where each row corresponds
to data for the same gene even though it crosses multiple datasets."

Unsynchronized mode: each pane shows only its own genes, in its own
clustered display order — "explore how a grouping of genes from one
dataset gets grouped in other datasets."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import EventBus, SyncToggled
from repro.core.panes import DatasetPane
from repro.core.selection import GeneSelection
from repro.core.viewport import Viewport

__all__ = ["ZoomView", "SynchronizationLayer"]


@dataclass(frozen=True)
class ZoomView:
    """One pane's zoom-view content for the current selection.

    ``values`` has one row per entry of ``gene_ids`` (NaN-filled when the
    gene is absent from the pane's dataset, synchronized mode only).
    """

    pane_name: str
    gene_ids: tuple[str, ...]
    values: np.ndarray
    present: tuple[bool, ...]  # per row: does this dataset measure the gene?
    synchronized: bool

    @property
    def n_rows(self) -> int:
        return len(self.gene_ids)

    def row_values(self, gene_id: str) -> np.ndarray:
        for i, g in enumerate(self.gene_ids):
            if g == gene_id:
                return self.values[i]
        raise KeyError(f"gene {gene_id!r} not in zoom view of {self.pane_name}")


class SynchronizationLayer:
    """Computes aligned/unaligned zoom views and owns the shared viewport."""

    def __init__(self, bus: EventBus, *, synchronized: bool = True) -> None:
        self._bus = bus
        self._synchronized = bool(synchronized)
        #: shared scroll state used by every pane while synchronized
        self.shared_viewport = Viewport(0, 0)

    @property
    def synchronized(self) -> bool:
        return self._synchronized

    def set_synchronized(self, flag: bool) -> None:
        flag = bool(flag)
        if flag != self._synchronized:
            self._synchronized = flag
            self._bus.publish(SyncToggled(synchronized=flag))

    def on_selection_changed(self, n_genes: int, max_conditions: int) -> None:
        """Resize the shared viewport for a new selection."""
        self.shared_viewport.resize_content(n_genes, max_conditions)
        self.shared_viewport.scroll_to(0, 0)

    # ------------------------------------------------------------------ views
    def zoom_view(self, pane: DatasetPane, selection: GeneSelection) -> ZoomView:
        """The pane's zoom-view content under the current mode."""
        if self._synchronized:
            return self._aligned_view(pane, selection)
        return self._native_view(pane, selection)

    def zoom_views(self, panes: list[DatasetPane], selection: GeneSelection) -> list[ZoomView]:
        return [self.zoom_view(p, selection) for p in panes]

    def _aligned_view(self, pane: DatasetPane, selection: GeneSelection) -> ZoomView:
        matrix = pane.dataset.matrix
        n_cond = matrix.n_conditions
        values = np.full((len(selection.genes), n_cond), np.nan)
        present: list[bool] = []
        for i, gene in enumerate(selection.genes):
            if gene in matrix:
                values[i] = matrix.values[matrix.index_of(gene)]
                present.append(True)
            else:
                present.append(False)
        return ZoomView(
            pane_name=pane.name,
            gene_ids=tuple(selection.genes),
            values=values,
            present=tuple(present),
            synchronized=True,
        )

    def _native_view(self, pane: DatasetPane, selection: GeneSelection) -> ZoomView:
        matrix = pane.dataset.matrix
        selected = set(selection.genes)
        ids = matrix.gene_ids
        ordered = [
            ids[row_idx]
            for row_idx in pane.display_order()
            if ids[row_idx] in selected
        ]
        if ordered:
            rows = matrix.indices_of(ordered)
            values = matrix.values[np.asarray(rows, dtype=np.intp)]
        else:
            values = np.empty((0, matrix.n_conditions))
        return ZoomView(
            pane_name=pane.name,
            gene_ids=tuple(ordered),
            values=values,
            present=tuple(True for _ in ordered),
            synchronized=False,
        )

    # ----------------------------------------------------------- verification
    @staticmethod
    def rows_aligned(views: list[ZoomView]) -> bool:
        """True iff all synchronized views expose identical gene orderings.

        The invariant the paper's horizontal-scan workflow depends on;
        asserted by tests after every selection change.
        """
        if not views:
            return True
        first = views[0].gene_ids
        return all(v.gene_ids == first for v in views if v.synchronized)
