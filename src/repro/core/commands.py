"""Scriptable command layer over ForestView.

The paper's architecture routes analysis programs *into* the UI ("the
most adaptive method is to provide selection information from an
analysis application").  The command layer makes that programmable and
replayable: every user-level operation is a small declarative command;
scripts of commands can be executed, serialized to JSON, and recorded
from a live session's event bus — a macro facility the original Java
application lacked.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.util.errors import ValidationError

if TYPE_CHECKING:
    from repro.core.app import ForestView

__all__ = [
    "Command",
    "SelectGenes",
    "SelectRegion",
    "SearchSelect",
    "ExtendSelection",
    "ClearSelection",
    "SetSynchronized",
    "OrderDatasets",
    "SetPreferences",
    "ScrollTo",
    "CommandScript",
    "record_script",
]


@dataclass(frozen=True)
class Command:
    """Base class; subclasses implement ``apply`` and (de)serialization."""

    def apply(self, app: "ForestView") -> Any:
        raise NotImplementedError

    def to_dict(self) -> dict:
        data = {"op": type(self).__name__}
        data.update(self.__dict__)
        return _jsonable(data)


def _jsonable(obj):
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


@dataclass(frozen=True)
class SelectGenes(Command):
    genes: tuple[str, ...]
    source: str = "script"

    def apply(self, app):
        return app.select_genes(list(self.genes), source=self.source)


@dataclass(frozen=True)
class SelectRegion(Command):
    dataset: str
    start_row: int
    end_row: int

    def apply(self, app):
        return app.select_region(self.dataset, self.start_row, self.end_row)


@dataclass(frozen=True)
class SearchSelect(Command):
    criteria: tuple[str, ...]
    match: str = "substring"

    def apply(self, app):
        return app.select_by_search(list(self.criteria), match=self.match)


@dataclass(frozen=True)
class ExtendSelection(Command):
    genes: tuple[str, ...]
    source: str = "script"

    def apply(self, app):
        return app.extend_selection(list(self.genes), source=self.source)


@dataclass(frozen=True)
class ClearSelection(Command):
    def apply(self, app):
        app.clear_selection()


@dataclass(frozen=True)
class SetSynchronized(Command):
    synchronized: bool

    def apply(self, app):
        app.set_synchronized(self.synchronized)


@dataclass(frozen=True)
class OrderDatasets(Command):
    order: tuple[str, ...]

    def apply(self, app):
        app.order_datasets(list(self.order))


@dataclass(frozen=True)
class SetPreferences(Command):
    dataset: str | None
    changes: dict

    def apply(self, app):
        app.set_preferences(self.dataset, **self.changes)

    def to_dict(self) -> dict:
        return {"op": "SetPreferences", "dataset": self.dataset, "changes": dict(self.changes)}


@dataclass(frozen=True)
class ScrollTo(Command):
    row: int

    def apply(self, app):
        app.sync_layer.shared_viewport.scroll_to(self.row)


_REGISTRY: dict[str, type[Command]] = {
    cls.__name__: cls
    for cls in (
        SelectGenes,
        SelectRegion,
        SearchSelect,
        ExtendSelection,
        ClearSelection,
        SetSynchronized,
        OrderDatasets,
        SetPreferences,
        ScrollTo,
    )
}


def _command_from_dict(data: dict) -> Command:
    data = dict(data)
    op = data.pop("op", None)
    cls = _REGISTRY.get(op)
    if cls is None:
        raise ValidationError(f"unknown command op {op!r}")
    # tuples serialize as lists; convert back for the tuple-typed fields
    for key, value in list(data.items()):
        if isinstance(value, list):
            data[key] = tuple(value)
    try:
        return cls(**data)
    except TypeError as exc:
        raise ValidationError(f"bad arguments for {op}: {exc}") from exc


class CommandScript:
    """An ordered list of commands that can run against any compatible app."""

    def __init__(self, commands: list[Command] | None = None) -> None:
        self.commands: list[Command] = list(commands or [])

    def add(self, command: Command) -> "CommandScript":
        self.commands.append(command)
        return self

    def __len__(self) -> int:
        return len(self.commands)

    def run(self, app: "ForestView") -> list[Any]:
        """Execute every command in order; returns per-command results."""
        return [cmd.apply(app) for cmd in self.commands]

    # ---------------------------------------------------------- serialization
    def to_json(self) -> str:
        return json.dumps([c.to_dict() for c in self.commands], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CommandScript":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"command script is not valid JSON: {exc}") from exc
        if not isinstance(raw, list):
            raise ValidationError("command script must be a JSON array")
        return cls([_command_from_dict(entry) for entry in raw])

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CommandScript":
        return cls.from_json(Path(path).read_text())


def record_script(app: "ForestView") -> tuple[CommandScript, callable]:
    """Attach a recorder to a live app; returns (script, stop_recording).

    Selection, sync and ordering events are captured as replayable
    commands.  Preferences changes are not captured (events carry only
    the field name, not the value) — set them in the script explicitly.
    """
    from repro.core.events import DatasetsReordered, SelectionChanged, SyncToggled

    script = CommandScript()

    def on_selection(event: SelectionChanged) -> None:
        if event.genes:
            script.add(SelectGenes(genes=tuple(event.genes), source=event.source))
        else:
            script.add(ClearSelection())

    def on_sync(event: SyncToggled) -> None:
        script.add(SetSynchronized(synchronized=event.synchronized))

    def on_reorder(event: DatasetsReordered) -> None:
        script.add(OrderDatasets(order=tuple(event.order)))

    unsubs = [
        app.bus.subscribe(SelectionChanged, on_selection),
        app.bus.subscribe(SyncToggled, on_sync),
        app.bus.subscribe(DatasetsReordered, on_reorder),
    ]

    def stop() -> None:
        for unsub in unsubs:
            unsub()

    return script, stop
