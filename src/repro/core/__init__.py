"""ForestView — the paper's primary contribution (§2, Figures 1-3, 6).

Public surface: the :class:`ForestView` application facade plus the
components a downstream user composes directly (selection model,
synchronization layer, panes, preferences, events, integration adapters,
session persistence).
"""

from repro.core.app import ForestView
from repro.core.events import (
    Event,
    EventBus,
    SelectionChanged,
    SyncToggled,
    DatasetsReordered,
    PreferencesChanged,
    DatasetAdded,
    ViewportScrolled,
)
from repro.core.export import (
    format_gene_list,
    export_gene_list,
    format_merged_pcl,
    export_merged_pcl,
)
from repro.core.integration import SpellAdapter, GolemAdapter
from repro.core.ordering import order_by_name, order_by_scores, order_by_selection_coverage
from repro.core.panes import DatasetPane
from repro.core.preferences import PanePreferences
from repro.core.rendering import FrameStyle, build_display_list
from repro.core.search import find_genes
from repro.core.selection import GeneSelection, SelectionModel
from repro.core.session import save_session, load_session, session_to_dict, session_from_dict
from repro.core.sync import SynchronizationLayer, ZoomView
from repro.core.viewport import Viewport
from repro.core.commands import (
    Command,
    SelectGenes,
    SelectRegion,
    SearchSelect,
    ExtendSelection,
    ClearSelection,
    SetSynchronized,
    OrderDatasets,
    SetPreferences,
    ScrollTo,
    CommandScript,
    record_script,
)

__all__ = [
    "ForestView",
    "Event",
    "EventBus",
    "SelectionChanged",
    "SyncToggled",
    "DatasetsReordered",
    "PreferencesChanged",
    "DatasetAdded",
    "ViewportScrolled",
    "format_gene_list",
    "export_gene_list",
    "format_merged_pcl",
    "export_merged_pcl",
    "SpellAdapter",
    "GolemAdapter",
    "order_by_name",
    "order_by_scores",
    "order_by_selection_coverage",
    "DatasetPane",
    "PanePreferences",
    "FrameStyle",
    "build_display_list",
    "find_genes",
    "GeneSelection",
    "SelectionModel",
    "save_session",
    "load_session",
    "session_to_dict",
    "session_from_dict",
    "SynchronizationLayer",
    "ZoomView",
    "Viewport",
    "Command",
    "SelectGenes",
    "SelectRegion",
    "SearchSelect",
    "ExtendSelection",
    "ClearSelection",
    "SetSynchronized",
    "OrderDatasets",
    "SetPreferences",
    "ScrollTo",
    "CommandScript",
    "record_script",
    "session_report",
]
from repro.core.report import session_report  # noqa: E402  (depends on the names above)
