"""Scroll/zoom state for ForestView's zoom views.

A viewport is a window of ``visible_rows`` x ``visible_cols`` cells over
a content grid.  In synchronized mode all panes share one viewport, so
"the zoom view for each dataset shows the gene expression data in
exactly the same order and same scroll position" (paper §2).
"""

from __future__ import annotations

from repro.util.errors import ValidationError

__all__ = ["Viewport"]


class Viewport:
    """Clamped scroll window over (total_rows x total_cols) content."""

    def __init__(
        self,
        total_rows: int,
        total_cols: int,
        *,
        visible_rows: int | None = None,
        visible_cols: int | None = None,
    ) -> None:
        if total_rows < 0 or total_cols < 0:
            raise ValidationError(f"content extent must be >= 0, got {total_rows}x{total_cols}")
        self.total_rows = int(total_rows)
        self.total_cols = int(total_cols)
        self.visible_rows = int(visible_rows) if visible_rows is not None else self.total_rows
        self.visible_cols = int(visible_cols) if visible_cols is not None else self.total_cols
        if self.visible_rows < 0 or self.visible_cols < 0:
            raise ValidationError("visible extent must be >= 0")
        self.scroll_row = 0
        self.scroll_col = 0
        self._clamp()

    # ------------------------------------------------------------------ state
    def _clamp(self) -> None:
        self.visible_rows = min(self.visible_rows, self.total_rows)
        self.visible_cols = min(self.visible_cols, self.total_cols)
        max_row = max(0, self.total_rows - self.visible_rows)
        max_col = max(0, self.total_cols - self.visible_cols)
        self.scroll_row = min(max(0, self.scroll_row), max_row)
        self.scroll_col = min(max(0, self.scroll_col), max_col)

    def resize_content(self, total_rows: int, total_cols: int) -> None:
        """Content changed (new selection); keep scroll position best-effort."""
        if total_rows < 0 or total_cols < 0:
            raise ValidationError(f"content extent must be >= 0, got {total_rows}x{total_cols}")
        grow_rows = self.visible_rows == self.total_rows
        grow_cols = self.visible_cols == self.total_cols
        self.total_rows = int(total_rows)
        self.total_cols = int(total_cols)
        if grow_rows:
            self.visible_rows = self.total_rows
        if grow_cols:
            self.visible_cols = self.total_cols
        self._clamp()

    # -------------------------------------------------------------- scrolling
    def scroll_to(self, row: int, col: int | None = None) -> None:
        self.scroll_row = int(row)
        if col is not None:
            self.scroll_col = int(col)
        self._clamp()

    def scroll_by(self, d_rows: int, d_cols: int = 0) -> None:
        self.scroll_row += int(d_rows)
        self.scroll_col += int(d_cols)
        self._clamp()

    def page_down(self) -> None:
        self.scroll_by(max(1, self.visible_rows))

    def page_up(self) -> None:
        self.scroll_by(-max(1, self.visible_rows))

    # ----------------------------------------------------------------- zooming
    def set_zoom(self, visible_rows: int, visible_cols: int | None = None) -> None:
        """Change how many cells the window shows (smaller = zoomed in)."""
        if visible_rows < 1:
            raise ValidationError(f"visible_rows must be >= 1, got {visible_rows}")
        self.visible_rows = int(visible_rows)
        if visible_cols is not None:
            if visible_cols < 1:
                raise ValidationError(f"visible_cols must be >= 1, got {visible_cols}")
            self.visible_cols = int(visible_cols)
        self._clamp()

    # ------------------------------------------------------------------- view
    @property
    def row_range(self) -> range:
        return range(self.scroll_row, min(self.scroll_row + self.visible_rows, self.total_rows))

    @property
    def col_range(self) -> range:
        return range(self.scroll_col, min(self.scroll_col + self.visible_cols, self.total_cols))

    def visible_fraction(self) -> float:
        total = self.total_rows * self.total_cols
        if total == 0:
            return 1.0
        return (len(self.row_range) * len(self.col_range)) / total

    def __repr__(self) -> str:
        return (
            f"Viewport(rows {self.scroll_row}..{self.scroll_row + self.visible_rows} of "
            f"{self.total_rows}, cols {self.scroll_col}..{self.scroll_col + self.visible_cols} "
            f"of {self.total_cols})"
        )
