"""Per-dataset display preferences.

Paper §2: "the scaling of the global and zoom view, the annotation
information and the expression level colors can be adjusted
independently for datasets or applied to all datasets."
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ValidationError
from repro.viz.colormap import COLORMAPS

__all__ = ["PanePreferences"]


@dataclass(frozen=True)
class PanePreferences:
    """Immutable display settings for one dataset pane.

    Attributes
    ----------
    colormap_name:
        Key into :data:`repro.viz.colormap.COLORMAPS`.
    saturation:
        |log-ratio| mapped to full color (the contrast slider).
    show_gene_tree / show_array_tree:
        Draw dendrogram strips next to the global view.
    show_annotations:
        Draw gene name labels beside zoom-view rows (when they fit).
    zoom_row_px:
        Preferred zoom-view row height in pixels.
    global_fraction:
        Vertical share of the pane given to the global view (the
        "scaling of the global and zoom view" preference).
    """

    colormap_name: str = "red-green"
    saturation: float = 2.0
    show_gene_tree: bool = True
    show_array_tree: bool = False
    show_annotations: bool = True
    zoom_row_px: int = 10
    global_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.colormap_name not in COLORMAPS:
            raise ValidationError(
                f"unknown colormap {self.colormap_name!r}; choose from {sorted(COLORMAPS)}"
            )
        if self.saturation <= 0:
            raise ValidationError(f"saturation must be positive, got {self.saturation}")
        if self.zoom_row_px < 1:
            raise ValidationError(f"zoom_row_px must be >= 1, got {self.zoom_row_px}")
        if not (0.1 <= self.global_fraction <= 0.9):
            raise ValidationError(
                f"global_fraction must be in [0.1, 0.9], got {self.global_fraction}"
            )

    def with_changes(self, **kwargs) -> "PanePreferences":
        """Functional update; unknown fields raise via dataclasses.replace."""
        return replace(self, **kwargs)

    def colormap(self):
        """The configured colormap with this pane's saturation applied."""
        return COLORMAPS[self.colormap_name].with_saturation(self.saturation)

    def to_dict(self) -> dict:
        return {
            "colormap_name": self.colormap_name,
            "saturation": self.saturation,
            "show_gene_tree": self.show_gene_tree,
            "show_array_tree": self.show_array_tree,
            "show_annotations": self.show_annotations,
            "zoom_row_px": self.zoom_row_px,
            "global_fraction": self.global_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PanePreferences":
        return cls(**data)
