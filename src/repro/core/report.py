"""Session reports: a text summary of the current analysis state.

The §4 collaborators end a wall session with findings to carry back to
the lab.  ``session_report`` produces that artifact: datasets on screen,
the current selection with provenance, per-dataset coverage and
coherence of the selection, and (optionally) the latest SPELL and GOLEM
results — one deterministic plain-text document.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.errors import ValidationError
from repro.util.formatting import format_table, human_count

if TYPE_CHECKING:
    from repro.core.app import ForestView

__all__ = ["session_report"]


def session_report(
    app: "ForestView",
    *,
    spell_result: "SpellResult | None" = None,
    enrichment: "EnrichmentReport | None" = None,
    coherence_permutations: int = 100,
    max_genes_listed: int = 25,
    seed: int = 0,
) -> str:
    """Render the session's state as a plain-text report.

    Coherence is computed per dataset when a selection with >= 2
    measured genes exists there; permutations are seeded for
    reproducible reports.
    """
    if coherence_permutations < 0:
        raise ValidationError("coherence_permutations must be >= 0")
    sections: list[str] = []
    sections.append("FORESTVIEW SESSION REPORT")
    sections.append("=" * 60)

    # ------------------------------------------------------------- datasets
    rows = []
    for ds in app.compendium:
        rows.append(
            [
                ds.name,
                f"{ds.n_genes}x{ds.n_conditions}",
                human_count(ds.measurement_count()),
                "yes" if ds.gene_tree is not None else "no",
            ]
        )
    sections.append("\nDATASETS (display order)")
    sections.append(format_table(["name", "size", "measurements", "clustered"], rows))
    sections.append(
        f"\ncompendium total: {human_count(app.compendium.total_measurements())} "
        f"measurements across {len(app.compendium)} datasets; "
        f"synchronization {'ON' if app.synchronized else 'OFF'}"
    )

    # ------------------------------------------------------------ selection
    selection = app.selection
    sections.append("\nSELECTION")
    if selection is None:
        sections.append("(none)")
    else:
        listed = ", ".join(selection.genes[:max_genes_listed])
        more = len(selection) - max_genes_listed
        if more > 0:
            listed += f", ... (+{more} more)"
        sections.append(f"{len(selection)} genes from {selection.source!r}: {listed}")

        rows = []
        for pane in app.panes:
            coverage = pane.coverage(selection)
            coherence = ""
            if coherence_permutations and len(pane.present_genes(selection)) >= 2:
                result = app.selection_coherence(
                    pane.name, n_permutations=coherence_permutations, seed=seed
                )
                coherence = f"{result.score:+.2f} (p={result.pvalue:.3g})"
            rows.append([pane.name, f"{coverage:.0%}", coherence])
        sections.append("\nSELECTION ACROSS DATASETS")
        sections.append(
            format_table(["dataset", "genes present", "coherence (perm. p)"], rows)
        )

    # ---------------------------------------------------------------- SPELL
    if spell_result is not None:
        sections.append("\nSPELL SEARCH")
        sections.append(
            f"query: {', '.join(spell_result.query_used)}"
            + (
                f" (missing: {', '.join(spell_result.query_missing)})"
                if spell_result.query_missing
                else ""
            )
        )
        rows = [
            [i + 1, d.name, f"{d.weight:.3f}"]
            for i, d in enumerate(spell_result.datasets[:8])
        ]
        sections.append(format_table(["rank", "dataset", "weight"], rows))
        rows = [
            [i + 1, g.gene_id, f"{g.score:.3f}"]
            for i, g in enumerate(spell_result.genes[:10])
        ]
        sections.append(format_table(["rank", "gene", "score"], rows))

    # ---------------------------------------------------------------- GOLEM
    if enrichment is not None:
        sections.append("\nGO ENRICHMENT")
        sections.append(
            f"{len(enrichment)} terms scored ({enrichment.correction}, "
            f"alpha={enrichment.alpha}); {len(enrichment.significant_terms())} significant"
        )
        rows = [
            [r.term_id, r.name[:36], f"{r.n_selected_annotated}/{r.n_universe_annotated}",
             f"{r.adjusted_pvalue:.2e}", "*" if r.significant else ""]
            for r in enrichment.results[:8]
        ]
        sections.append(
            format_table(["term", "name", "k/K", "adj. p", "sig"], rows)
        )

    sections.append("")
    return "\n".join(sections)
