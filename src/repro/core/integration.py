"""Analysis-tool integration adapters (Figure 1's "Data Search (e.g. SPELL)"
and "Other Analysis (e.g. GOLEM)" boxes; §3 describes both integrations).

Adapters close the loop the paper's architecture draws: analysis output
feeds selection/ordering back into the visualization ("the most adaptive
method is to provide selection information from an analysis
application"), and the current selection feeds analysis input.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.ontology.enrichment import EnrichmentReport
from repro.ontology.golem import Golem, LocalMap
from repro.spell.engine import SpellResult
from repro.spell.service import SpellService
from repro.util.errors import SearchError, ValidationError

if TYPE_CHECKING:  # avoid a runtime cycle with app.py
    from repro.core.app import ForestView

__all__ = ["SpellAdapter", "GolemAdapter"]


class SpellAdapter:
    """Drive SPELL from ForestView and push results back into the display.

    §3: "The datasets returned can be displayed in decreasing order of
    relevance to the query, and the top n genes can be selected and
    highlighted within each dataset."
    """

    def __init__(self, app: "ForestView", *, use_index: bool = True, n_workers: int = 1) -> None:
        self.app = app
        self.service = SpellService(app.compendium, use_index=use_index, n_workers=n_workers)
        self.last_result: SpellResult | None = None

    def query_from_selection(self, *, top_n: int = 20, reorder: bool = True) -> SpellResult:
        """Use the current selection as the SPELL query."""
        selection = self.app.selection
        if selection is None:
            raise SearchError("no selection to use as a SPELL query")
        return self.query(selection.genes, top_n=top_n, reorder=reorder)

    def query(
        self, genes: Sequence[str], *, top_n: int = 20, reorder: bool = True
    ) -> SpellResult:
        """Run a query; reorder panes by relevance and select query+top genes."""
        result = self.service.search(list(genes))
        self.last_result = result
        if reorder:
            self.app.order_datasets(result.dataset_ranking())
        top = result.top_genes(top_n)
        self.app.select_genes(
            list(result.query_used) + top, source=f"spell:{','.join(result.query_used)}"
        )
        return result


class GolemAdapter:
    """Run GOLEM enrichment on the current selection and navigate its maps."""

    def __init__(self, app: "ForestView", golem: Golem) -> None:
        self.app = app
        self.golem = golem
        self.last_report: EnrichmentReport | None = None

    def enrich_selection(
        self, *, alpha: float = 0.05, correction: str = "benjamini-hochberg"
    ) -> EnrichmentReport:
        """Score the current selection against GO; remembers the report."""
        selection = self.app.selection
        if selection is None:
            raise ValidationError("no selection to enrich")
        report = self.golem.enrich_selection(
            selection.genes,
            universe=self.app.compendium.gene_universe(),
            alpha=alpha,
            correction=correction,
        )
        self.last_report = report
        return report

    def map_for_top_term(self, *, up: int = 2, down: int = 1) -> LocalMap:
        """GOLEM local map focused on the most enriched term of the last run."""
        if self.last_report is None or not len(self.last_report):
            raise ValidationError("run enrich_selection first")
        return self.golem.local_map(self.last_report.results[0].term_id, up=up, down=down)

    def select_term_genes(self, term_id: str) -> None:
        """Select the genes behind an enriched term (map -> heatmap round trip)."""
        genes = self.golem.annotations.propagated().genes_for(term_id)
        measured = [g for g in sorted(genes) if self.app.merged_interface.__contains__(g)]
        if not measured:
            raise ValidationError(f"no measured genes annotated to {term_id}")
        self.app.select_genes(measured, source=f"golem:{term_id}")
