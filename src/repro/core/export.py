"""Export operations (Figure 1: "Export Gene List", "Export Merged Dataset").

"When an interesting gene subset is identified, the user can export the
gene list, and if desired all of the expression data, for further
analysis in another application." (§2)
"""

from __future__ import annotations

from pathlib import Path

from repro.core.selection import GeneSelection
from repro.data.compendium import Compendium
from repro.data.merged import MergedDatasetInterface
from repro.data.pcl import format_pcl
from repro.util.errors import ValidationError

__all__ = ["format_gene_list", "export_gene_list", "format_merged_pcl", "export_merged_pcl"]


def format_gene_list(
    selection: GeneSelection, compendium: Compendium | None = None, *, annotations: bool = True
) -> str:
    """Tab-separated gene list; optionally NAME/DESCRIPTION columns.

    Annotation values are looked up across the compendium (first dataset
    that knows the gene wins), matching what a user exporting from the
    UI would see.
    """
    lines: list[str] = []
    if annotations and compendium is not None:
        lines.append("GENE\tNAME\tDESCRIPTION")
        for gene in selection.genes:
            name = ""
            desc = ""
            for ds in compendium:
                record = ds.annotations.record(gene)
                if record:
                    name = record.get("NAME", "")
                    desc = record.get("DESCRIPTION", "")
                    break
            lines.append(f"{gene}\t{name}\t{desc}")
    else:
        lines.extend(selection.genes)
    return "\n".join(lines) + "\n"


def export_gene_list(
    selection: GeneSelection,
    path: str | Path,
    compendium: Compendium | None = None,
    *,
    annotations: bool = True,
) -> Path:
    path = Path(path)
    path.write_text(format_gene_list(selection, compendium, annotations=annotations))
    return path


def format_merged_pcl(
    compendium: Compendium, selection: GeneSelection | None = None
) -> str:
    """The merged dataset (all conditions of all datasets) as PCL text.

    With a selection, only those genes are exported; otherwise the whole
    gene universe.  Column names carry dataset provenance
    (``dataset:condition``).
    """
    if len(compendium) == 0:
        raise ValidationError("cannot export an empty compendium")
    merged = MergedDatasetInterface(compendium)
    gene_ids = list(selection.genes) if selection is not None else None
    matrix = merged.export_merged_matrix(gene_ids)
    return format_pcl(matrix, id_header="GENE")


def export_merged_pcl(
    compendium: Compendium,
    path: str | Path,
    selection: GeneSelection | None = None,
) -> Path:
    path = Path(path)
    path.write_text(format_merged_pcl(compendium, selection))
    return path
