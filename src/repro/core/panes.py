"""Dataset panes: one vertical pane per dataset, global view + zoom view.

"The ForestView display is divided into multiple vertical panes, each
pane displaying one dataset. Each dataset pane shows a global view of
the whole genome and a zoom view showing details of selected genes or a
selected region." (§2)
"""

from __future__ import annotations

import numpy as np

from repro.core.preferences import PanePreferences
from repro.core.selection import GeneSelection
from repro.data.dataset import Dataset
from repro.util.errors import ValidationError

__all__ = ["DatasetPane"]


class DatasetPane:
    """View state for one dataset: display order, highlights, preferences."""

    def __init__(self, dataset: Dataset, *, preferences: PanePreferences | None = None) -> None:
        self.dataset = dataset
        self.preferences = preferences if preferences is not None else PanePreferences()
        self._display_order = dataset.display_order()
        self._row_of_gene = {
            dataset.matrix.gene_ids[g]: pos for pos, g in enumerate(self._display_order)
        }

    # ------------------------------------------------------------------ basic
    @property
    def name(self) -> str:
        return self.dataset.name

    @property
    def n_genes(self) -> int:
        return self.dataset.n_genes

    @property
    def n_conditions(self) -> int:
        return self.dataset.n_conditions

    def display_order(self) -> list[int]:
        """Matrix row indices in display (clustered) order."""
        return list(self._display_order)

    def global_values(self) -> np.ndarray:
        """The whole dataset in display order — the global view's content.

        Returns a fancy-indexed copy in display order; renderers hold it
        per frame.
        """
        return self.dataset.matrix.values[np.asarray(self._display_order, dtype=np.intp)]

    # -------------------------------------------------------------- selection
    def display_row_of(self, gene_id: str) -> int | None:
        """Position of a gene in the global view, or None if absent."""
        return self._row_of_gene.get(gene_id)

    def highlight_rows(self, selection: GeneSelection) -> list[int]:
        """Global-view row positions of the selected genes present here.

        These drive the "highlight their position in the global view with
        a line" behaviour when a subset chosen in one pane is echoed in
        all others.
        """
        rows = [self._row_of_gene[g] for g in selection.genes if g in self._row_of_gene]
        rows.sort()
        return rows

    def genes_in_region(self, start_row: int, end_row: int) -> list[str]:
        """Gene ids covered by display rows [start_row, end_row) — the
        mouse-drag region selection."""
        if not (0 <= start_row < end_row <= self.n_genes):
            raise ValidationError(
                f"region [{start_row}, {end_row}) invalid for {self.n_genes} rows"
            )
        ids = self.dataset.matrix.gene_ids
        return [ids[self._display_order[r]] for r in range(start_row, end_row)]

    def present_genes(self, selection: GeneSelection) -> list[str]:
        """Selected genes present in this dataset, in selection order."""
        return [g for g in selection.genes if g in self._row_of_gene]

    def coverage(self, selection: GeneSelection) -> float:
        """Fraction of the selection this dataset contains."""
        if len(selection) == 0:
            return 0.0
        return len(self.present_genes(selection)) / len(selection)

    # ------------------------------------------------------------ preferences
    def set_preferences(self, preferences: PanePreferences) -> None:
        self.preferences = preferences

    def update_preferences(self, **kwargs) -> PanePreferences:
        self.preferences = self.preferences.with_changes(**kwargs)
        return self.preferences

    def __repr__(self) -> str:
        return f"DatasetPane({self.name!r}, {self.n_genes}x{self.n_conditions})"
