"""Small argument-validation helpers raising :class:`ValidationError`.

Validation failures in library entry points should be loud and uniform;
these helpers keep call sites one-liners.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.util.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> None:
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Validate ``low <= value <= high`` (inclusive both ends)."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_shape(array: Any, shape: tuple[int | None, ...], name: str) -> None:
    """Validate an array's shape; ``None`` entries match any extent."""
    actual = getattr(array, "shape", None)
    if actual is None:
        raise ValidationError(f"{name} has no shape attribute (got {type(array).__name__})")
    if len(actual) != len(shape):
        raise ValidationError(f"{name} must be {len(shape)}-dimensional, got shape {actual}")
    for axis, (got, want) in enumerate(zip(actual, shape)):
        if want is not None and got != want:
            raise ValidationError(
                f"{name} axis {axis} must have extent {want}, got {got} (shape {actual})"
            )


def require_same_length(a: Sequence, b: Sequence, name_a: str, name_b: str) -> None:
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have the same length"
        )
