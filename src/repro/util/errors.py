"""Exception hierarchy shared by all :mod:`repro` subsystems."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DataFormatError(ReproError):
    """A file (PCL, CDT, GTR/ATR, OBO, ...) violates its format contract.

    Carries optional location information so parsers can report the
    offending line to the user.
    """

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None):
        self.path = path
        self.line = line
        location = ""
        if path is not None:
            location = f" [{path}" + (f":{line}" if line is not None else "") + "]"
        super().__init__(message + location)


class ValidationError(ReproError):
    """An argument or internal invariant check failed."""


class CommunicationError(ReproError):
    """A message-passing operation on the simulated cluster failed."""


class DeadlineExceeded(ReproError):
    """A request's monotonic deadline budget ran out before it completed.

    Distinct from :class:`RpcError`: a transport failure says "that hop
    broke, maybe retry elsewhere"; a spent deadline says "stop spending
    — the client's budget is gone" and must never trigger retries,
    failover, or in-process fallback work.
    """


class RpcError(CommunicationError):
    """A framed RPC exchange failed (dead node, timeout, bad frame)."""


class SearchError(ReproError):
    """A SPELL/annotation search could not be executed (e.g. empty query)."""


class StoreError(ReproError):
    """A persistent index store is missing, corrupt, or format-incompatible."""


class OntologyError(ReproError):
    """The GO DAG or its annotations are inconsistent (cycles, bad ids)."""


class RenderError(ReproError):
    """A rendering request cannot be satisfied (bad geometry, empty pane)."""
