"""Exception hierarchy shared by all :mod:`repro` subsystems."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DataFormatError(ReproError):
    """A file (PCL, CDT, GTR/ATR, OBO, ...) violates its format contract.

    Carries optional location information so parsers can report the
    offending line to the user.
    """

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None):
        self.path = path
        self.line = line
        location = ""
        if path is not None:
            location = f" [{path}" + (f":{line}" if line is not None else "") + "]"
        super().__init__(message + location)


class ValidationError(ReproError):
    """An argument or internal invariant check failed."""


class CommunicationError(ReproError):
    """A message-passing operation on the simulated cluster failed."""


class DeadlineExceeded(ReproError):
    """A request's monotonic deadline budget ran out before it completed.

    Distinct from :class:`RpcError`: a transport failure says "that hop
    broke, maybe retry elsewhere"; a spent deadline says "stop spending
    — the client's budget is gone" and must never trigger retries,
    failover, or in-process fallback work.
    """


class RpcError(CommunicationError):
    """A framed RPC exchange failed (dead node, timeout, bad frame)."""


class SearchError(ReproError):
    """A SPELL/annotation search could not be executed (e.g. empty query)."""


class StoreError(ReproError):
    """A persistent index store is missing, corrupt, or format-incompatible."""


class StoreCorruptError(StoreError):
    """Shard bytes failed end-to-end integrity verification.

    Raised when a shard's on-disk bytes no longer hash to the sha256 its
    manifest recorded (bit rot, torn write, tampering) and no bound
    :class:`Dataset` source was available to rebuild from.  The damaged
    file has already been quarantined — this error is the *refusal* to
    serve, never a report of silently-served corruption.  The API maps
    it to the stable ``STORE_CORRUPT`` code (distinct from
    ``INDEX_STALE``: stale means rebuild-and-retry, corrupt means the
    bytes themselves are untrustworthy).

    ``datasets``/``files`` name what failed so operators can find the
    quarantined artifacts.
    """

    def __init__(
        self,
        message: str,
        *,
        datasets: tuple[str, ...] = (),
        files: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.datasets = tuple(datasets)
        self.files = tuple(files)


class StorePublishError(StoreError):
    """A store write could not be published atomically (ENOSPC, EIO, ...).

    The store on disk is whatever complete state it was in before the
    attempt — a failed publish never leaves a half-written manifest or
    shard under its final name."""


class OntologyError(ReproError):
    """The GO DAG or its annotations are inconsistent (cycles, bad ids)."""


class RenderError(ReproError):
    """A rendering request cannot be satisfied (bad geometry, empty pane)."""
