"""Shared utilities: errors, seeded RNG, timing, validation helpers.

Every subsystem in :mod:`repro` builds on this package.  It deliberately
contains no genomics- or visualization-specific logic so it can be reused
freely without import cycles.
"""

from repro.util.errors import (
    ReproError,
    DataFormatError,
    ValidationError,
    CommunicationError,
)
from repro.util.lru import LruCache
from repro.util.rng import default_rng, spawn_rngs
from repro.util.timing import Stopwatch, TimingRegistry
from repro.util.validation import (
    require,
    require_positive,
    require_in_range,
    require_shape,
    require_same_length,
)
from repro.util.formatting import human_bytes, human_count, format_table

__all__ = [
    "ReproError",
    "DataFormatError",
    "ValidationError",
    "CommunicationError",
    "LruCache",
    "default_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingRegistry",
    "require",
    "require_positive",
    "require_in_range",
    "require_shape",
    "require_same_length",
    "human_bytes",
    "human_count",
    "format_table",
]
