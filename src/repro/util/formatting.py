"""Human-readable formatting for benchmark and report output."""

from __future__ import annotations

from typing import Sequence


def human_bytes(n: float) -> str:
    """Format a byte count with binary prefixes: ``human_bytes(2048) == '2.0 KiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_count(n: float) -> str:
    """Format a count with metric prefixes: ``human_count(250_000_000) == '250.0M'``."""
    n = float(n)
    for unit in ("", "K", "M", "G"):
        if abs(n) < 1000.0 or unit == "G":
            return f"{n:.1f}{unit}" if unit else f"{int(n)}"
        n /= 1000.0
    raise AssertionError("unreachable")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benches print paper-style rows).

    Column widths adapt to content; numeric cells are right-aligned.
    """
    cells = [[str(h) for h in headers]] + [[_cell(v) for v in row] for row in rows]
    ncols = max(len(row) for row in cells)
    widths = [0] * ncols
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for ridx, row in enumerate(cells):
        padded = []
        for i in range(ncols):
            cell = row[i] if i < len(row) else ""
            if ridx > 0 and _is_numeric(cell):
                padded.append(cell.rjust(widths[i]))
            else:
                padded.append(cell.ljust(widths[i]))
        lines.append("  ".join(padded).rstrip())
        if ridx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("x%"))
        return True
    except ValueError:
        return False
