"""Lightweight wall-clock instrumentation used by benches and the wall metrics."""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field


class Stopwatch:
    """Context-manager stopwatch measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


@dataclass
class TimingRegistry:
    """Accumulates named timing samples; powers frame metrics and benches.

    The registry is additive: each ``record`` appends one sample, and
    summary statistics are computed on demand.
    """

    samples: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))

    def record(self, name: str, seconds: float) -> None:
        self.samples[name].append(float(seconds))

    def time(self, name: str):
        """Return a context manager that records its elapsed time under ``name``."""
        registry = self

        class _Timer:
            def __enter__(self_inner):
                self_inner._sw = Stopwatch()
                self_inner._sw.start()
                return self_inner

            def __exit__(self_inner, *exc):
                registry.record(name, self_inner._sw.stop())

        return _Timer()

    def total(self, name: str) -> float:
        return float(sum(self.samples.get(name, ())))

    def count(self, name: str) -> int:
        return len(self.samples.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.samples.get(name)
        if not values:
            raise KeyError(f"no samples recorded for {name!r}")
        return float(sum(values) / len(values))

    def merge(self, other: "TimingRegistry") -> None:
        """Fold another registry's samples into this one (used when gathering per-node metrics)."""
        for name, values in other.samples.items():
            self.samples[name].extend(values)

    def summary(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for name, values in sorted(self.samples.items()):
            if not values:
                continue
            out[name] = {
                "count": float(len(values)),
                "total": float(sum(values)),
                "mean": float(sum(values) / len(values)),
                "min": float(min(values)),
                "max": float(max(values)),
            }
        return out
