"""Monotonic deadline budgets threaded through the serving stack.

A :class:`Deadline` is created once, as close to request admission as
possible (``ApiApp`` builds one from the append-only ``deadline_ms``
request field), and then *passed down* — through the router's scatter,
each RPC try, and the worker-pool gather — instead of every layer
inventing its own fixed timeout.  Each layer asks ``remaining()`` (or
``clamp(local_timeout)``) so the whole request chain shares one budget:
a slow hop spends from the same account as every other hop, and when the
account is empty the request fails *now* with
:class:`~repro.util.errors.DeadlineExceeded` instead of blocking on a
120 s pool wait the client gave up on long ago.

Budgets are measured on :func:`time.monotonic` — wall-clock jumps (NTP,
suspend) never extend or shrink a request's allowance.  A deadline of
``None`` milliseconds means "no budget": :meth:`remaining` reports
``None`` and :meth:`clamp` returns the local timeout unchanged, so all
pre-existing fixed-timeout behaviour is the degenerate case.
"""

from __future__ import annotations

import time

from repro.util.errors import DeadlineExceeded, ValidationError

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """An absolute monotonic expiry shared by one request chain."""

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float | None, *, _absolute: float | None = None):
        if _absolute is not None:
            self._expires_at: float | None = _absolute
        elif seconds is None:
            self._expires_at = None
        else:
            seconds = float(seconds)
            if seconds < 0:
                raise ValidationError(f"deadline must be >= 0 seconds, got {seconds}")
            self._expires_at = time.monotonic() + seconds

    # ------------------------------------------------------------ constructors
    @classmethod
    def after_ms(cls, milliseconds: int | None) -> "Deadline":
        """Budget starting *now*; ``None`` builds the unbounded deadline."""
        if milliseconds is None:
            return cls(None)
        return cls(float(milliseconds) / 1000.0)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @classmethod
    def tighter(cls, a: "Deadline | None", b: "Deadline | None") -> "Deadline":
        """The earlier of two deadlines (either may be ``None``/unbounded)."""
        candidates = [
            d._expires_at
            for d in (a, b)
            if d is not None and d._expires_at is not None
        ]
        if not candidates:
            return cls(None)
        return cls(None, _absolute=min(candidates))

    # ------------------------------------------------------------------ budget
    @property
    def bounded(self) -> bool:
        return self._expires_at is not None

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def remaining(self) -> float | None:
        """Seconds left, clamped at 0.0; ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def clamp(self, timeout: float | None) -> float | None:
        """Bound a layer-local timeout by the remaining request budget."""
        left = self.remaining()
        if left is None:
            return timeout
        if timeout is None:
            return left
        return min(float(timeout), left)

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is already spent."""
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded before {what} completed")

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
