"""A small thread-safe LRU map with hit/miss/eviction counters.

The serving layer (SPELL query cache, render caches) needs bounded
memoization under concurrent access; this is the shared primitive.  It is
deliberately tiny: an ``OrderedDict`` guarded by one lock, recency
updated on every hit, oldest entry evicted on overflow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.util.errors import ValidationError

__all__ = ["LruCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry first."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._data: OrderedDict[K, V] = OrderedDict()
        self._entry_hits: dict[K, int] = {}  # per-resident-entry hit counts
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key``, marking it most-recently-used on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            self._entry_hits[key] = self._entry_hits.get(key, 0) + 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh ``key``, evicting the oldest entry on overflow.

        Refreshing an existing key restarts its per-entry hit count:
        the counts describe the *currently resident value* (so
        ``hottest`` ranks what is actually being served), not the key's
        lifetime popularity — the aggregate ``hits`` counter keeps the
        lifetime view.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._entry_hits.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.max_entries:
                evicted, _ = self._data.popitem(last=False)
                self._entry_hits.pop(evicted, None)
                self.evictions += 1

    def entry_hits(self, key: K) -> int:
        """Hits this *resident* entry has served (0 after eviction)."""
        with self._lock:
            return self._entry_hits.get(key, 0)

    def hottest(self, n: int = 5) -> list[tuple[K, int]]:
        """The ``n`` resident entries that served the most hits.

        Ties break on the key's ``repr`` so the ordering is a pure
        function of cache *content*, never of dict insertion history —
        without the tie-break, observability surfaces built on this
        (``/v1/health``) flap across runs for equally-hot entries.
        """
        with self._lock:
            ranked = sorted(
                self._entry_hits.items(), key=lambda kv: (-kv[1], repr(kv[0]))
            )
            return ranked[: max(0, int(n))]

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._entry_hits.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hot_entry_hits": max(self._entry_hits.values(), default=0),
            }
