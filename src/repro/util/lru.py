"""A small thread-safe LRU map with hit/miss/eviction counters.

The serving layer (SPELL query cache, render caches) needs bounded
memoization under concurrent access; this is the shared primitive.  It is
deliberately tiny: an ``OrderedDict`` guarded by one lock, recency
updated on every hit, oldest entry evicted on overflow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.util.errors import ValidationError

__all__ = ["LruCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LruCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry first."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._data: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Look up ``key``, marking it most-recently-used on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh ``key``, evicting the oldest entry on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
