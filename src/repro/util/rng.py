"""Deterministic random-number-generation helpers.

All stochastic code in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
every synthetic-data generator and randomized algorithm reproducible.
"""

from __future__ import annotations

import numpy as np

#: Seed used when the caller does not supply one.  Fixed so that examples
#: and benchmarks are reproducible run-to-run.
DEFAULT_SEED = 20070326  # IPPS 2007 conference start date


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used by parallel code so each worker draws from its own stream and
    results do not depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = default_rng(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)] if n else []
