"""Multi-tenant compendium catalog: named tenants, bounded residency.

The paper's deployment serves *one* curated compendium; ROADMAP item 4
scales that to a fleet — many named compendia behind one serving
process, each a tenant with its own datasets, its own persistent index
store, and its own live-ingestion stream.  :class:`CompendiumCatalog`
is that fleet's spine:

* **Namespaced layout** — tenant ``acme`` lives entirely under
  ``<root>/acme/``: ``datasets/`` holds the ingested source files
  (PCL / SOFT series-matrix text, exactly as submitted) and ``store/``
  is the tenant's private :class:`~repro.spell.store.IndexStore`
  directory.  Tenant names share the wire protocol's filesystem-safe
  grammar, so a hostile ``compendium`` field can never traverse out of
  the root.
* **Lazy residency with a bounded LRU** — a tenant's
  :class:`~repro.spell.service.SpellService` is built on first use
  (mmap cold start when its store is current) and at most
  ``max_resident`` tenants hold RAM at once.  Eviction closes the
  victim through the existing :meth:`SpellService.close` contract —
  idempotent, and safe mid-request because a closed service still
  answers in-process; the next touch reloads from the store.  The
  default tenant is pinned: it is never evicted, preserving the
  single-tenant deployment's behavior exactly.
* **Live ingestion** — :meth:`ingest` validates the submission *in
  full* before any mutation (a malformed file is a structured 4xx and
  the store is untouched), writes the source atomically
  (tmp + fsync + rename), then publishes through the service's eager
  copy-on-write sync: racing queries observe either the prior or the
  fully-published compendium fingerprint, never a mix.
* **Observability** — :meth:`stats` rolls up per-tenant counters
  (resident / loads / evictions / ingests / datasets) for the
  ``tenants`` field of ``/v1/health``.

All catalog state sits behind one lock; a tenant *load* happens inside
it, so a cold start briefly serializes other tenants' resolutions —
the bench (``benchmarks/bench_multitenant.py``) gates that cold start
at ≤ 5× a warm search precisely because it is on this path.
"""

from __future__ import annotations

import os
import re
import threading
from collections import OrderedDict
from pathlib import Path

from repro.api.errors import ApiError
from repro.data.compendium import Compendium
from repro.data.loader import INGEST_FORMATS, parse_dataset
from repro.spell.service import SpellService

__all__ = ["DEFAULT_TENANT", "CompendiumCatalog"]

#: The tenant requests without a ``compendium`` field resolve to.
DEFAULT_TENANT = "default"

#: Same grammar the wire protocol enforces — re-checked here so the
#: catalog is safe even for in-process callers that bypass the protocol.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Longest suffix first, so ``x.soft.txt`` never misparses as ``.txt``.
_SUFFIXES = sorted(INGEST_FORMATS.values(), key=len, reverse=True)


def _atomic_write_text(path: Path, text: str) -> None:
    """Crash-safe source publish: a reader (or a reload after a crash)
    sees the whole file or no file, never a torn prefix."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CompendiumCatalog:
    """Tenant name -> resident :class:`SpellService`, LRU-bounded.

    ``default_service`` (when given) is the pinned default tenant —
    typically the service the CLI already builds from ``--store-dir``
    or synthetic data — and is *owned by the caller*: :meth:`close`
    never closes it.  Every other tenant is discovered under ``root``
    and loaded/evicted on demand.  ``service_options`` are forwarded to
    every tenant ``SpellService`` the catalog constructs (workers,
    cache sizing, ``store_verify``, ...); each gets its own namespaced
    ``store_dir``.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        default_service: SpellService | None = None,
        max_resident: int = 4,
        service_options: dict | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_resident = max(1, int(max_resident))
        self.service_options = dict(service_options or {})
        # residency order: least-recently-used first (OrderedDict head)
        self._resident: OrderedDict[str, SpellService] = OrderedDict()
        self._external_default = default_service is not None
        if default_service is not None:
            self._resident[DEFAULT_TENANT] = default_service
        self._counters: dict[str, dict[str, int]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------- resolution
    def tenants(self) -> list[str]:
        """Every known tenant name (resident or not), sorted."""
        with self._lock:
            names = set(self._resident)
            if self.root.is_dir():
                for entry in self.root.iterdir():
                    if entry.is_dir() and _TENANT_RE.fullmatch(entry.name):
                        names.add(entry.name)
            return sorted(names)

    def resolve(self, name: str | None) -> tuple[str, SpellService]:
        """The serving tenant for one request: ``None`` = the default.

        Marks the tenant most-recently-used, loading (mmap cold start)
        and possibly evicting the LRU victim.  An unknown name is the
        structured ``UNKNOWN_COMPENDIUM`` with the known names in
        details — a routing error, never a filesystem error.
        """
        tenant = DEFAULT_TENANT if name is None else str(name)
        with self._lock:
            service = self._resident.get(tenant)
            if service is None:
                if not self._tenant_dir(tenant).is_dir():
                    raise ApiError(
                        "UNKNOWN_COMPENDIUM",
                        f"no compendium named {tenant!r}",
                        details={"known": self.tenants()},
                    )
                service = self._load(tenant)
            self._resident.move_to_end(tenant)
            return tenant, service

    def _tenant_dir(self, tenant: str) -> Path:
        if not _TENANT_RE.fullmatch(tenant):
            raise ApiError(
                "UNKNOWN_COMPENDIUM",
                f"no compendium named {tenant!r}",
                details={"known": self.tenants()},
            )
        return self.root / tenant

    def _bump(self, tenant: str, counter: str) -> None:
        entry = self._counters.setdefault(
            tenant, {"loads": 0, "evictions": 0, "ingests": 0}
        )
        entry[counter] += 1

    def _load(self, tenant: str) -> SpellService:
        """Build the tenant's service from its sources + private store.

        When the store is current this is the mmap fast path (shards
        reopen without re-normalizing); a stale or absent store rebuilds
        only the diff and syncs back — all existing ``IndexStore``
        behavior, just namespaced per tenant.
        """
        base = self._tenant_dir(tenant)
        datasets = []
        source_dir = base / "datasets"
        if source_dir.is_dir():
            for path in sorted(source_dir.iterdir()):
                parsed = self._parse_source(path)
                if parsed is not None:
                    datasets.append(parsed)
        service = SpellService(
            Compendium(datasets),
            store_dir=base / "store",
            **self.service_options,
        )
        self._resident[tenant] = service
        self._bump(tenant, "loads")
        self._evict_over_budget()
        return service

    def _parse_source(self, path: Path):
        for fmt, suffix in INGEST_FORMATS.items():
            if path.name.endswith(suffix) and len(path.name) > len(suffix):
                name = path.name[: -len(suffix)]
                return parse_dataset(
                    path.read_text(encoding="utf-8"), fmt, name=name
                )
        return None  # foreign files (tmp leftovers, notes) are not datasets

    def _evict_over_budget(self) -> None:
        """Close least-recently-used tenants down to ``max_resident``.

        The default tenant is pinned.  ``close()`` is safe while the
        victim still answers an in-flight request (the service keeps
        working in-process after close; only pooled workers and owned
        temp state are torn down), which is exactly the existing drain
        contract the facades rely on at shutdown.
        """
        evictable = [t for t in self._resident if t != DEFAULT_TENANT]
        budget = self.max_resident
        while len(self._resident) > budget and evictable:
            victim = evictable.pop(0)
            service = self._resident.pop(victim)
            service.close()
            self._bump(victim, "evictions")

    # -------------------------------------------------------------- ingestion
    def ingest(self, name: str | None, dataset_name: str, fmt: str, content: str):
        """Validate, persist, and publish one submission; returns
        ``(tenant, service, dataset)``.

        Order is the whole safety story: (1) parse *everything* first —
        a malformed file raises :class:`DataFormatError` (a structured
        4xx upstream) before any mutation; (2) duplicate check —
        append-only, ``DATASET_EXISTS`` with the store untouched;
        (3) atomic source write; (4) in-memory add + eager
        copy-on-write index sync.  A crash between (3) and (4) leaves
        the prior manifest intact and the source on disk — the next
        load resyncs the store to the sources, so both orders of
        survival are consistent states.

        Ingesting into a tenant nobody has created yet creates it —
        the fleet grows by ingestion, not by provisioning.
        """
        tenant = DEFAULT_TENANT if name is None else str(name)
        with self._lock:
            base = self._tenant_dir(tenant)
            service = self._resident.get(tenant)
            if service is None and base.is_dir():
                service = self._load(tenant)
            # (1) full validation before any side effect
            dataset = parse_dataset(content, fmt, name=dataset_name)
            # (2) append-only within the tenant
            source_path = base / "datasets" / (
                dataset_name + INGEST_FORMATS[str(fmt).lower()]
            )
            already = source_path.exists() or (
                service is not None and dataset_name in service.compendium
            )
            if already:
                raise ApiError(
                    "DATASET_EXISTS",
                    f"compendium {tenant!r} already serves a dataset named "
                    f"{dataset_name!r}",
                    details={"compendium": tenant, "dataset": dataset_name},
                )
            # (3) durable source, atomically
            source_path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(source_path, content)
            # (4) publish: in-memory append + eager copy-on-write sync
            if service is None:
                service = self._load(tenant)  # picks the new source up
            else:
                service.ingest_dataset(dataset)
                self._resident.move_to_end(tenant)
            self._bump(tenant, "ingests")
            return tenant, service, dataset

    # ----------------------------------------------------------- lifecycle
    def stats(self) -> dict:
        """Per-tenant rollup for the health payload's ``tenants`` field."""
        with self._lock:
            out: dict[str, dict] = {}
            for tenant in self.tenants():
                counters = self._counters.get(
                    tenant, {"loads": 0, "evictions": 0, "ingests": 0}
                )
                entry: dict = {"resident": tenant in self._resident, **counters}
                service = self._resident.get(tenant)
                if service is not None:
                    entry["datasets"] = len(service.compendium)
                    entry["fingerprint"] = service.compendium.fingerprint
                out[tenant] = entry
            out["_catalog"] = {
                "max_resident": self.max_resident,
                "resident": len(self._resident),
            }
            return out

    def close(self) -> None:
        """Close every catalog-owned resident service (idempotent).

        The externally-provided default service belongs to the caller
        (the CLI built it; the CLI closes it at shutdown).
        """
        with self._lock:
            while self._resident:
                tenant, service = self._resident.popitem(last=False)
                if tenant == DEFAULT_TENANT and self._external_default:
                    continue
                service.close()
