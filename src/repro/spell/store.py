"""Persistent, memory-mapped storage for :class:`~repro.spell.index.SpellIndex`.

The deployed SPELL compendium is static across server restarts, yet a
fresh process used to re-normalize every dataset before answering its
first query.  :class:`IndexStore` makes the index a durable artifact:

* :meth:`IndexStore.save` writes one ``.npy`` per dataset shard (the
  row-normalized matrix) plus a JSON manifest carrying the format
  version, shard dtype, each shard's gene list, and its source
  dataset's content fingerprint (:attr:`repro.data.dataset.Dataset.fingerprint`).
* :meth:`IndexStore.load` reopens the shards with
  ``np.load(mmap_mode="r")`` — a zero-copy cold start: pages of the
  normalized matrices fault in lazily as queries touch them, so serving
  begins in milliseconds regardless of compendium size.
* :meth:`IndexStore.sync` diffs the live index against the manifest by
  fingerprint and rewrites only stale shards — the on-disk mirror of
  ``SpellIndex.add_dataset`` / ``remove_dataset`` incremental
  maintenance.

Shard files are content-addressed (``shard-<hash(name, fingerprint,
dtype)>.npy``), so a changed dataset — or a dtype switch — lands in a
new file and ``sync`` never rewrites bytes that are already current (or
that a live mmap reader may hold).  Manifest writes go through a
temp-file rename, so a crashed writer leaves the previous manifest
intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.compendium import Compendium
from repro.spell.index import SUPPORTED_DTYPES, SpellIndex, _DatasetIndex
from repro.util.errors import StoreError

__all__ = ["IndexStore", "SyncReport", "FORMAT", "FORMAT_VERSION"]

FORMAT = "spell-index-store"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class SyncReport:
    """What one :meth:`IndexStore.sync` actually touched.

    ``written``/``removed``/``unchanged`` are dataset names;
    ``swept`` lists *file* names deleted because no committed manifest
    referenced them — shard files stranded by a writer that crashed
    between writing a shard and publishing its manifest (or by a
    pre-sweep version of this store).  Without the sweep a long-lived
    service that churns datasets grows its store directory without
    bound.
    """

    written: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    unchanged: tuple[str, ...] = ()
    swept: tuple[str, ...] = ()

    @property
    def dirty(self) -> bool:
        return bool(self.written or self.removed)


@dataclass
class _Manifest:
    dtype: str
    shards: list[dict] = field(default_factory=list)  # manifest order = index order

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "format_version": FORMAT_VERSION,
            "dtype": self.dtype,
            "shards": self.shards,
        }


def _shard_filename(name: str, fingerprint: str, dtype: str) -> str:
    # dtype is part of the address: a dtype switch must land in a new
    # file, never truncate bytes a live mmap reader may have mapped
    key = hashlib.sha1(f"{name}\x00{fingerprint}\x00{dtype}".encode()).hexdigest()[:16]
    return f"shard-{key}.npy"


def _shard_record(entry: _DatasetIndex, fingerprint: str, filename: str) -> dict:
    """The manifest entry for one shard (single source of truth)."""
    return {
        "name": entry.name,
        "file": filename,
        "dtype": entry.normalized.dtype.name,
        "fingerprint": fingerprint,
        "n_genes": len(entry.gene_ids),
        "n_conditions": int(entry.normalized.shape[1]),
        "gene_ids": list(entry.gene_ids),
    }


def _entry_fingerprint(entry: _DatasetIndex) -> str:
    if entry.fingerprint is not None:
        return entry.fingerprint
    if entry.source is not None:
        return entry.source.fingerprint
    raise StoreError(
        f"shard {entry.name!r} carries no content fingerprint; "
        "rebuild the index from a compendium before saving"
    )


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class IndexStore:
    """Save / load / incrementally sync a :class:`SpellIndex` directory.

    All methods are static: the store is the *directory*, not an object
    with state — any process holding the path can reopen it.
    """

    # -------------------------------------------------------------- writing
    @staticmethod
    def save(index: SpellIndex, directory: str | Path) -> list[str]:
        """Write every shard plus the manifest; returns written file names."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = _Manifest(dtype=index.dtype.name)
        written: list[str] = []
        for entry in index._entries:
            fingerprint = _entry_fingerprint(entry)
            filename = _shard_filename(
                entry.name, fingerprint, entry.normalized.dtype.name
            )
            np.save(directory / filename, np.ascontiguousarray(entry.normalized))
            written.append(filename)
            manifest.shards.append(_shard_record(entry, fingerprint, filename))
        _atomic_write_text(
            directory / MANIFEST_NAME, json.dumps(manifest.to_json())
        )
        return written

    @staticmethod
    def sync(index: SpellIndex, directory: str | Path) -> SyncReport:
        """Bring the directory up to date with ``index``, rewriting only
        shards whose content fingerprint changed.

        New and changed datasets are written, shards for datasets no
        longer in the index are deleted, unchanged shard files are left
        byte-untouched.  A directory with no (or unreadable) manifest is
        simply saved from scratch.
        """
        directory = Path(directory)
        try:
            old = IndexStore._read_manifest(directory)
        except StoreError:
            written = IndexStore.save(index, directory)
            # even a from-scratch save sweeps: a corrupt manifest may
            # have stranded shard files the new manifest doesn't claim
            swept = IndexStore._sweep_orphans(directory, set(written))
            return SyncReport(
                written=tuple(e.name for e in index._entries), swept=swept
            )
        old_by_key = {(s["name"], s["fingerprint"]): s for s in old.shards}

        manifest = _Manifest(dtype=index.dtype.name)
        written: list[str] = []
        unchanged: list[str] = []
        live_files: set[str] = set()
        for entry in index._entries:
            fingerprint = _entry_fingerprint(entry)
            filename = _shard_filename(
                entry.name, fingerprint, entry.normalized.dtype.name
            )
            live_files.add(filename)
            prior = old_by_key.get((entry.name, fingerprint))
            if (
                prior is not None
                and prior["file"] == filename
                and prior["dtype"] == entry.normalized.dtype.name
                and (directory / filename).exists()
            ):
                unchanged.append(entry.name)
                manifest.shards.append(prior)
                continue
            np.save(directory / filename, np.ascontiguousarray(entry.normalized))
            written.append(entry.name)
            manifest.shards.append(_shard_record(entry, fingerprint, filename))
        # publish the new manifest first: a crash between here and the
        # sweep leaves orphan files that load cleanly (the manifest
        # never references a deleted shard) and that the *next*
        # successful sync reclaims — never a manifest pointing at
        # missing files
        _atomic_write_text(
            directory / MANIFEST_NAME, json.dumps(manifest.to_json())
        )
        removed = tuple(
            shard["name"] for shard in old.shards if shard["file"] not in live_files
        )
        swept = IndexStore._sweep_orphans(directory, live_files)
        return SyncReport(
            written=tuple(written),
            removed=removed,
            unchanged=tuple(unchanged),
            swept=swept,
        )

    @staticmethod
    def _sweep_orphans(directory: Path, live_files: set[str]) -> tuple[str, ...]:
        """Delete every ``shard-*.npy`` the committed manifest doesn't claim.

        This covers both shards retired by the sync that just ran *and*
        strays no manifest ever referenced — files stranded when a
        writer crashed between ``np.save`` and the manifest rename.
        Only runs after a successful manifest publish, so a concurrent
        reader that already loaded the old manifest holds its mmaps
        open (POSIX keeps unlinked-but-mapped pages alive) and a fresh
        reader sees a consistent store either way.
        """
        swept: list[str] = []
        for path in sorted(Path(directory).glob("shard-*.npy")):
            if path.name not in live_files:
                path.unlink(missing_ok=True)
                swept.append(path.name)
        return tuple(swept)

    # -------------------------------------------------------------- reading
    @staticmethod
    def _read_manifest(directory: Path) -> _Manifest:
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise StoreError(f"no index store at {directory} (missing {MANIFEST_NAME})")
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"corrupt index-store manifest at {path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("format") != FORMAT:
            raise StoreError(
                f"{path} is not a {FORMAT} manifest "
                f"(format={raw.get('format') if isinstance(raw, dict) else raw!r})"
            )
        if raw.get("format_version") != FORMAT_VERSION:
            raise StoreError(
                f"index store at {directory} has format_version "
                f"{raw.get('format_version')!r}; this build reads version "
                f"{FORMAT_VERSION} — rebuild the store with IndexStore.save"
            )
        dtype = raw.get("dtype")
        try:
            supported = np.dtype(dtype) in SUPPORTED_DTYPES
        except TypeError:
            supported = False
        if not supported:
            raise StoreError(f"index store dtype {dtype!r} is not supported")
        shards = raw.get("shards")
        if not isinstance(shards, list):
            raise StoreError(f"corrupt index-store manifest at {path}: no shard list")
        required = {"name", "file", "dtype", "fingerprint", "n_genes", "gene_ids"}
        for shard in shards:
            if not isinstance(shard, dict) or not required.issubset(shard):
                raise StoreError(
                    f"corrupt index-store manifest at {path}: shard record "
                    f"missing {sorted(required - set(shard or ()))}"
                )
        return _Manifest(dtype=dtype, shards=shards)

    @staticmethod
    def load(
        directory: str | Path,
        *,
        mmap: bool = True,
        bind: Compendium | None = None,
    ) -> SpellIndex:
        """Reopen a saved index.

        ``mmap=True`` opens shards with ``np.load(mmap_mode="r")`` —
        zero-copy: nothing is read until a query touches it.
        ``mmap=False`` materializes every shard in RAM (identical
        results; pay the IO up front).

        ``bind`` attaches live :class:`Dataset` objects (matched by name
        + content fingerprint) as shard sources, so a following
        ``SpellIndex.updated`` can diff by identity as if the index had
        been built in-process.
        """
        directory = Path(directory)
        manifest = IndexStore._read_manifest(directory)
        by_key = {}
        if bind is not None:
            by_key = {(ds.name, ds.fingerprint): ds for ds in bind}
        entries: list[_DatasetIndex] = []
        for shard in manifest.shards:
            path = directory / shard["file"]
            try:
                normalized = np.load(path, mmap_mode="r" if mmap else None)
            except (OSError, ValueError) as exc:
                raise StoreError(f"corrupt or missing shard file {path}: {exc}") from exc
            gene_ids = list(shard["gene_ids"])  # JSON already yields str
            if normalized.ndim != 2 or normalized.shape[0] != len(gene_ids):
                raise StoreError(
                    f"shard {shard['name']!r} at {path} has shape "
                    f"{normalized.shape} for {len(gene_ids)} gene ids"
                )
            if normalized.dtype.name != shard["dtype"]:
                raise StoreError(
                    f"shard {shard['name']!r} at {path} is {normalized.dtype.name}, "
                    f"manifest says {shard['dtype']}"
                )
            entries.append(
                _DatasetIndex(
                    name=str(shard["name"]),
                    gene_ids=gene_ids,
                    normalized=normalized,
                    source=by_key.get((shard["name"], shard["fingerprint"])),
                    fingerprint=str(shard["fingerprint"]),
                )
            )
        return SpellIndex(entries)

    @staticmethod
    def matches(directory: str | Path, compendium: Compendium, *, dtype=None) -> bool:
        """True when the store serves exactly ``compendium``'s content.

        Compares the ordered ``(name, fingerprint)`` sequence (order
        matters: aggregation order determines bit-level results) and,
        when given, the shard dtype.  Missing or unreadable stores are
        simply non-matches.
        """
        try:
            manifest = IndexStore._read_manifest(Path(directory))
        except StoreError:
            return False
        if dtype is not None and np.dtype(dtype).name != manifest.dtype:
            return False
        on_disk = [(s["name"], s["fingerprint"]) for s in manifest.shards]
        live = [(ds.name, ds.fingerprint) for ds in compendium]
        return on_disk == live
