"""Persistent, memory-mapped storage for :class:`~repro.spell.index.SpellIndex`.

The deployed SPELL compendium is static across server restarts, yet a
fresh process used to re-normalize every dataset before answering its
first query.  :class:`IndexStore` makes the index a durable artifact:

* :meth:`IndexStore.save` writes one ``.npy`` per dataset shard (the
  row-normalized matrix) plus a JSON manifest carrying the format
  version, shard dtype, each shard's gene list, its source dataset's
  content fingerprint (:attr:`repro.data.dataset.Dataset.fingerprint`),
  and a ``sha256`` over the shard file's exact bytes.
* :meth:`IndexStore.load` reopens the shards with
  ``np.load(mmap_mode="r")`` — a zero-copy cold start: pages of the
  normalized matrices fault in lazily as queries touch them, so serving
  begins in milliseconds regardless of compendium size.
* :meth:`IndexStore.sync` diffs the live index against the manifest by
  fingerprint and rewrites only stale shards — the on-disk mirror of
  ``SpellIndex.add_dataset`` / ``remove_dataset`` incremental
  maintenance.

**Integrity is end to end.**  Every manifest record carries the sha256
of the shard's exact ``.npy`` bytes; ``load`` verifies it (eagerly for
in-RAM loads; ``verify="eager"``/``"lazy"`` selects a startup-or-lazy
policy for mmap).  A mismatched or unreadable shard is *quarantined* —
renamed into ``quarantine/``, never served — then rebuilt from its
bound :class:`Dataset` source when one is attached, else the load
refuses with :class:`~repro.util.errors.StoreCorruptError` (the API
maps it to the stable ``STORE_CORRUPT`` code).  A corrupt shard is
never silently served.

**Publish is crash-safe.**  Shards and the manifest are written to a
temp name, fsynced, and atomically renamed (then the directory entry is
fsynced), so a writer killed at any instruction leaves either the old
or the new store — never a half-published manifest.  ENOSPC and other
partial-write failures surface as
:class:`~repro.util.errors.StorePublishError` before any manifest
changes hands.  ``load`` sweeps crash debris: stale ``*.tmp`` partials
and shard files no committed manifest references.

**Shards tier.**  :meth:`demote` compresses a shard into a
``shard-*.npz`` (deflate over the exact ``.npy`` bytes, so the recorded
sha256 still verifies end to end) and :meth:`promote` decompresses it
back, re-verifying the checksum before the bytes rejoin the resident
tier.  ``load`` serves cold shards by decompress-and-verify into RAM;
:class:`StorageStats` counts resident/cold/promotions/quarantined for
``/v1/health``.

Shard files are content-addressed (``shard-<hash(name, fingerprint,
dtype)>.npy``), so a changed dataset — or a dtype switch — lands in a
new file and ``sync`` never rewrites bytes that are already current (or
that a live mmap reader may hold).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.spell.index import (
    SUPPORTED_DTYPES,
    SpellIndex,
    _DatasetIndex,
    _index_dataset,
)
from repro.util.errors import StoreCorruptError, StoreError, StorePublishError

__all__ = [
    "IndexStore",
    "StorageStats",
    "SyncReport",
    "VerifyReport",
    "FORMAT",
    "FORMAT_VERSION",
]

FORMAT = "spell-index-store"
#: v2 adds per-shard ``sha256``/``nbytes``/``tier`` records.  v1 stores
#: (no checksums) refuse to load — integrity is mandatory now, and the
#: service transparently rebuilds from its compendium on refusal.
FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"
QUARANTINE_DIR = "quarantine"
#: Member name of the ``.npy`` byte stream inside a cold ``.npz`` shard.
COLD_MEMBER = "shard.npy"

TIER_RESIDENT = "resident"
TIER_COLD = "cold"


class StorageStats:
    """Thread-safe storage-tier counters, surfaced in ``/v1/health``.

    ``resident``/``cold`` are gauges (set from the manifest after each
    load/sync/demote/promote); everything else is an append-only
    counter, so the health surface can be diffed across scrapes.
    """

    _COUNTERS = (
        "promotions",
        "demotions",
        "quarantined",
        "rebuilt",
        "corrupt",
        "verified",
        "cold_loads",
        "swept",
        "publish_errors",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.resident = 0
        self.cold = 0
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + int(n))

    def set_tiers(self, resident: int, cold: int) -> None:
        with self._lock:
            self.resident = int(resident)
            self.cold = int(cold)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            out = {"resident": self.resident, "cold": self.cold}
            for name in self._COUNTERS:
                out[name] = getattr(self, name)
            return out


@dataclass(frozen=True)
class SyncReport:
    """What one :meth:`IndexStore.sync` actually touched.

    ``written``/``removed``/``unchanged`` are dataset names;
    ``swept`` lists *file* names deleted because no committed manifest
    referenced them — shard files stranded by a writer that crashed
    between writing a shard and publishing its manifest (or by a
    pre-sweep version of this store).  Without the sweep a long-lived
    service that churns datasets grows its store directory without
    bound.
    """

    written: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    unchanged: tuple[str, ...] = ()
    swept: tuple[str, ...] = ()

    @property
    def dirty(self) -> bool:
        return bool(self.written or self.removed)


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one :meth:`IndexStore.verify` scrub (dataset names)."""

    ok: tuple[str, ...] = ()
    corrupt: tuple[str, ...] = ()
    missing: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not (self.corrupt or self.missing)


@dataclass
class _Manifest:
    dtype: str
    shards: list[dict] = field(default_factory=list)  # manifest order = index order

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "format_version": FORMAT_VERSION,
            "dtype": self.dtype,
            "shards": self.shards,
        }


def _shard_filename(name: str, fingerprint: str, dtype: str) -> str:
    # dtype is part of the address: a dtype switch must land in a new
    # file, never truncate bytes a live mmap reader may have mapped
    key = hashlib.sha1(f"{name}\x00{fingerprint}\x00{dtype}".encode()).hexdigest()[:16]
    return f"shard-{key}.npy"


def _cold_filename(filename: str) -> str:
    return filename[: -len(".npy")] + ".npz" if filename.endswith(".npy") else filename + ".npz"


def _shard_record(
    entry: _DatasetIndex, fingerprint: str, filename: str, sha256: str, nbytes: int
) -> dict:
    """The manifest entry for one shard (single source of truth)."""
    return {
        "name": entry.name,
        "file": filename,
        "dtype": entry.normalized.dtype.name,
        "fingerprint": fingerprint,
        "n_genes": len(entry.gene_ids),
        "n_conditions": int(entry.normalized.shape[1]),
        "gene_ids": list(entry.gene_ids),
        "sha256": sha256,
        "nbytes": int(nbytes),
        "tier": TIER_RESIDENT,
    }


def _entry_fingerprint(entry: _DatasetIndex) -> str:
    if entry.fingerprint is not None:
        return entry.fingerprint
    if entry.source is not None:
        return entry.source.fingerprint
    raise StoreError(
        f"shard {entry.name!r} carries no content fingerprint; "
        "rebuild the index from a compendium before saving"
    )


def _npy_bytes(array: np.ndarray) -> bytes:
    """The exact ``.npy`` serialization of ``array`` — the unit the
    manifest's sha256 covers, identical on disk, in RAM, and inside a
    cold ``.npz`` member."""
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(array))
    return buf.getvalue()


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fsync_dir(directory: Path) -> None:
    """Make a rename durable: fsync the directory entry (best effort on
    platforms whose directories refuse O_RDONLY fsync)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _publish_bytes(path: Path, data: bytes) -> None:
    """Crash-safe file publish: temp write + fsync + atomic rename.

    Any OS-level failure (ENOSPC, EIO, permissions) raises
    :class:`StorePublishError` after removing the temp file — the final
    name either holds its previous complete content or the new bytes,
    never a torn write.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise StorePublishError(
            f"could not publish {path.name} in {path.parent}: {exc}"
        ) from exc
    _fsync_dir(path.parent)


def _atomic_write_text(path: Path, text: str) -> None:
    _publish_bytes(path, text.encode("utf-8"))


def _compress_bytes(npy_data: bytes, path: Path) -> None:
    """Publish ``npy_data`` deflate-compressed as a one-member ``.npz``.

    The member holds the *exact* ``.npy`` bytes, so decompression
    round-trips to the same sha256 the manifest records — compression
    never weakens the integrity chain.  (zstd would compress better but
    is not in the base environment; the zip container keeps the file a
    valid ``np.load`` target either way.)
    """
    buf = io.BytesIO()
    with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED, compresslevel=6) as archive:
        archive.writestr(COLD_MEMBER, npy_data)
    _publish_bytes(path, buf.getvalue())


def _decompress_bytes(path: Path) -> bytes:
    """The ``.npy`` bytes inside a cold shard; corruption raises
    :class:`StoreCorruptError` (checksum verification is the caller's
    job — this only peels the container)."""
    try:
        with zipfile.ZipFile(path) as archive:
            return archive.read(COLD_MEMBER)
    except (OSError, KeyError, zipfile.BadZipFile, zlib.error) as exc:
        raise StoreCorruptError(
            f"cold shard {path} is unreadable: {exc}", files=(path.name,)
        ) from exc


def _quarantine(directory: Path, filename: str) -> str | None:
    """Move a damaged shard file into ``quarantine/`` so it can never be
    served again (kept, not deleted, for forensics).  Returns the
    quarantined name, or None when the file was already gone."""
    src = directory / filename
    if not src.exists():
        return None
    pen = directory / QUARANTINE_DIR
    pen.mkdir(exist_ok=True)
    target = pen / filename
    n = 0
    while target.exists():
        n += 1
        target = pen / f"{filename}.{n}"
    os.replace(src, target)
    _fsync_dir(directory)
    return target.name


def _load_npy(data: bytes, path: Path, shard: dict) -> np.ndarray:
    try:
        array = np.load(io.BytesIO(data))
    except (OSError, ValueError) as exc:
        raise StoreCorruptError(
            f"shard {shard['name']!r} at {path} does not parse as .npy: {exc}",
            datasets=(str(shard["name"]),),
            files=(path.name,),
        ) from exc
    return array


class IndexStore:
    """Save / load / incrementally sync a :class:`SpellIndex` directory.

    All methods are static: the store is the *directory*, not an object
    with state — any process holding the path can reopen it.  Methods
    take an optional ``stats`` (:class:`StorageStats`) that the serving
    tier threads through so ``/v1/health`` sees every tier transition.
    """

    # -------------------------------------------------------------- writing
    @staticmethod
    def save(
        index: SpellIndex, directory: str | Path, *, stats: StorageStats | None = None
    ) -> list[str]:
        """Write every shard plus the manifest; returns written file names."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = _Manifest(dtype=index.dtype.name)
        written: list[str] = []
        for entry in index._entries:
            fingerprint = _entry_fingerprint(entry)
            filename = _shard_filename(
                entry.name, fingerprint, entry.normalized.dtype.name
            )
            data = _npy_bytes(entry.normalized)
            IndexStore._publish_shard(directory, filename, data, stats)
            written.append(filename)
            manifest.shards.append(
                _shard_record(entry, fingerprint, filename, _sha256_hex(data), len(data))
            )
        IndexStore._publish_manifest(directory, manifest, stats)
        if stats is not None:
            stats.set_tiers(len(manifest.shards), 0)
        return written

    @staticmethod
    def _publish_shard(
        directory: Path, filename: str, data: bytes, stats: StorageStats | None
    ) -> None:
        try:
            _publish_bytes(directory / filename, data)
        except StorePublishError:
            if stats is not None:
                stats.bump("publish_errors")
            raise

    @staticmethod
    def _publish_manifest(
        directory: Path, manifest: _Manifest, stats: StorageStats | None
    ) -> None:
        try:
            _atomic_write_text(directory / MANIFEST_NAME, json.dumps(manifest.to_json()))
        except StorePublishError:
            if stats is not None:
                stats.bump("publish_errors")
            raise

    @staticmethod
    def sync(
        index: SpellIndex, directory: str | Path, *, stats: StorageStats | None = None
    ) -> SyncReport:
        """Bring the directory up to date with ``index``, rewriting only
        shards whose content fingerprint changed.

        New and changed datasets are written, shards for datasets no
        longer in the index are deleted, unchanged shard files are left
        byte-untouched — a cold (compressed) shard that is still current
        stays cold.  A directory with no (or unreadable) manifest is
        simply saved from scratch.
        """
        directory = Path(directory)
        try:
            old = IndexStore._read_manifest(directory)
        except StoreError:
            written = IndexStore.save(index, directory, stats=stats)
            # even a from-scratch save sweeps: a corrupt manifest may
            # have stranded shard files the new manifest doesn't claim
            swept = IndexStore._sweep_orphans(directory, set(written), stats)
            return SyncReport(
                written=tuple(e.name for e in index._entries), swept=swept
            )
        old_by_key = {(s["name"], s["fingerprint"]): s for s in old.shards}

        manifest = _Manifest(dtype=index.dtype.name)
        written: list[str] = []
        unchanged: list[str] = []
        live_files: set[str] = set()
        for entry in index._entries:
            fingerprint = _entry_fingerprint(entry)
            filename = _shard_filename(
                entry.name, fingerprint, entry.normalized.dtype.name
            )
            prior = old_by_key.get((entry.name, fingerprint))
            if (
                prior is not None
                and prior["file"] == filename
                and prior["dtype"] == entry.normalized.dtype.name
                and (directory / IndexStore._stored_file(prior)).exists()
            ):
                unchanged.append(entry.name)
                manifest.shards.append(prior)
                live_files.add(IndexStore._stored_file(prior))
                continue
            data = _npy_bytes(entry.normalized)
            IndexStore._publish_shard(directory, filename, data, stats)
            written.append(entry.name)
            live_files.add(filename)
            manifest.shards.append(
                _shard_record(entry, fingerprint, filename, _sha256_hex(data), len(data))
            )
        # publish the new manifest first: a crash between here and the
        # sweep leaves orphan files that load cleanly (the manifest
        # never references a deleted shard) and that the *next*
        # successful sync — or the next load — reclaims; never a
        # manifest pointing at missing files
        IndexStore._publish_manifest(directory, manifest, stats)
        removed = tuple(
            shard["name"]
            for shard in old.shards
            if IndexStore._stored_file(shard) not in live_files
        )
        swept = IndexStore._sweep_orphans(directory, live_files, stats)
        if stats is not None:
            cold = sum(1 for s in manifest.shards if s.get("tier") == TIER_COLD)
            stats.set_tiers(len(manifest.shards) - cold, cold)
        return SyncReport(
            written=tuple(written),
            removed=removed,
            unchanged=tuple(unchanged),
            swept=swept,
        )

    @staticmethod
    def _stored_file(shard: dict) -> str:
        """The file that actually holds a shard's bytes right now —
        the ``.npz`` for cold records, the ``.npy`` otherwise."""
        if shard.get("tier") == TIER_COLD:
            return str(shard.get("cold_file") or _cold_filename(shard["file"]))
        return str(shard["file"])

    @staticmethod
    def _sweep_orphans(
        directory: Path, live_files: set[str], stats: StorageStats | None = None
    ) -> tuple[str, ...]:
        """Delete every shard file the committed manifest doesn't claim.

        This covers shards retired by the sync that just ran, strays no
        manifest ever referenced (a writer crashed between the shard
        publish and the manifest rename), and ``*.tmp`` partials from a
        writer killed mid-write.  Only runs after a successful manifest
        publish (or from ``load``, against the committed manifest), so a
        concurrent reader that already loaded the old manifest holds its
        mmaps open (POSIX keeps unlinked-but-mapped pages alive) and a
        fresh reader sees a consistent store either way.
        """
        swept: list[str] = []
        patterns = ("shard-*.npy", "shard-*.npz", "*.tmp")
        for pattern in patterns:
            for path in sorted(Path(directory).glob(pattern)):
                if path.name not in live_files:
                    path.unlink(missing_ok=True)
                    swept.append(path.name)
        if swept and stats is not None:
            stats.bump("swept", len(swept))
        return tuple(swept)

    # ------------------------------------------------------------- tiering
    @staticmethod
    def demote(
        directory: str | Path,
        names: list[str] | tuple[str, ...],
        *,
        stats: StorageStats | None = None,
    ) -> tuple[str, ...]:
        """Compress the named datasets' shards into the cold tier.

        Each resident ``.npy`` is checksum-verified (a corrupt shard
        must be quarantined, not lovingly preserved in compressed form),
        deflated into ``shard-*.npz``, the manifest republished, and
        only then is the resident file removed — a crash at any point
        leaves a loadable store, with at worst both files present until
        the next sweep.  Returns the dataset names actually demoted.
        """
        directory = Path(directory)
        manifest = IndexStore._read_manifest(directory)
        wanted = set(names)
        demoted: list[str] = []
        retired: list[str] = []
        for shard in manifest.shards:
            if shard["name"] not in wanted or shard.get("tier") == TIER_COLD:
                continue
            path = directory / shard["file"]
            data = IndexStore._verified_bytes(directory, shard, path, stats)
            cold_name = _cold_filename(shard["file"])
            try:
                _compress_bytes(data, directory / cold_name)
            except StorePublishError:
                if stats is not None:
                    stats.bump("publish_errors")
                raise
            shard["tier"] = TIER_COLD
            shard["cold_file"] = cold_name
            demoted.append(shard["name"])
            retired.append(shard["file"])
        if not demoted:
            return ()
        IndexStore._publish_manifest(directory, manifest, stats)
        for filename in retired:
            (directory / filename).unlink(missing_ok=True)
        if stats is not None:
            stats.bump("demotions", len(demoted))
            cold = sum(1 for s in manifest.shards if s.get("tier") == TIER_COLD)
            stats.set_tiers(len(manifest.shards) - cold, cold)
        return tuple(demoted)

    @staticmethod
    def promote(
        directory: str | Path,
        names: list[str] | tuple[str, ...],
        *,
        bind: Compendium | None = None,
        stats: StorageStats | None = None,
    ) -> tuple[str, ...]:
        """Decompress the named cold shards back into the resident tier.

        The decompressed bytes are re-verified against the manifest
        sha256 *before* the ``.npy`` is published — a cold shard that
        rotted on disk is quarantined and rebuilt from ``bind`` when
        possible, else the promote refuses with ``StoreCorruptError``.
        """
        directory = Path(directory)
        manifest = IndexStore._read_manifest(directory)
        sources = {(ds.name, ds.fingerprint): ds for ds in bind} if bind else {}
        wanted = set(names)
        promoted: list[str] = []
        retired: list[str] = []
        for shard in manifest.shards:
            if shard["name"] not in wanted or shard.get("tier") != TIER_COLD:
                continue
            cold_name = IndexStore._stored_file(shard)
            data = IndexStore._verified_bytes(
                directory,
                shard,
                directory / cold_name,
                stats,
                source=sources.get((shard["name"], shard["fingerprint"])),
            )
            IndexStore._publish_shard(directory, shard["file"], data, stats)
            shard["tier"] = TIER_RESIDENT
            shard.pop("cold_file", None)
            shard["sha256"] = _sha256_hex(data)
            shard["nbytes"] = len(data)
            promoted.append(shard["name"])
            retired.append(cold_name)
        if not promoted:
            return ()
        IndexStore._publish_manifest(directory, manifest, stats)
        for filename in retired:
            (directory / filename).unlink(missing_ok=True)
        if stats is not None:
            stats.bump("promotions", len(promoted))
            cold = sum(1 for s in manifest.shards if s.get("tier") == TIER_COLD)
            stats.set_tiers(len(manifest.shards) - cold, cold)
        return tuple(promoted)

    # -------------------------------------------------------------- integrity
    @staticmethod
    def _verified_bytes(
        directory: Path,
        shard: dict,
        path: Path,
        stats: StorageStats | None,
        *,
        source: Dataset | None = None,
    ) -> bytes:
        """The shard's ``.npy`` bytes, checksum-verified — or rebuilt.

        Reads ``path`` (decompressing a ``.npz`` container first) and
        compares sha256 against the manifest record.  On any mismatch or
        read failure the damaged file is quarantined and, when
        ``source`` is the shard's bound dataset, the bytes are
        re-derived from it (the caller republues them); with no source
        the store refuses with :class:`StoreCorruptError` rather than
        serve bytes that differ from what was written.
        """
        name = str(shard["name"])
        data: bytes | None = None
        failure: str | None = None
        try:
            raw = path.read_bytes()
            data = _decompress_bytes(path) if path.suffix == ".npz" else raw
        except FileNotFoundError:
            failure = "missing"
        except OSError as exc:
            failure = f"unreadable ({exc})"
        except StoreCorruptError:
            failure = "undecompressable"
        if data is not None:
            if _sha256_hex(data) == shard["sha256"]:
                if stats is not None:
                    stats.bump("verified")
                return data
            failure = "checksum mismatch"
        if stats is not None:
            stats.bump("corrupt")
        quarantined = _quarantine(directory, path.name)
        if quarantined is not None and stats is not None:
            stats.bump("quarantined")
        if source is not None:
            rebuilt = _npy_bytes(
                _index_dataset(source, dtype=np.dtype(shard["dtype"])).normalized
            )
            if stats is not None:
                stats.bump("rebuilt")
            return rebuilt
        raise StoreCorruptError(
            f"shard {name!r} at {path} failed integrity verification "
            f"({failure}); quarantined "
            f"{quarantined if quarantined is not None else 'nothing (file gone)'} "
            "and no bound dataset is available to rebuild from",
            datasets=(name,),
            files=(path.name,),
        )

    @staticmethod
    def verify(
        directory: str | Path, *, stats: StorageStats | None = None
    ) -> VerifyReport:
        """Non-mutating scrub: hash every shard against its manifest record.

        The lazy half of the mmap verification policy — run it at
        startup, from cron, or via ``python -m repro.spell.store verify``
        to detect bit rot without forcing an eager load.
        """
        directory = Path(directory)
        manifest = IndexStore._read_manifest(directory)
        ok: list[str] = []
        corrupt: list[str] = []
        missing: list[str] = []
        for shard in manifest.shards:
            path = directory / IndexStore._stored_file(shard)
            try:
                data = (
                    _decompress_bytes(path)
                    if path.suffix == ".npz"
                    else path.read_bytes()
                )
            except FileNotFoundError:
                missing.append(shard["name"])
                continue
            except (OSError, StoreCorruptError):
                corrupt.append(shard["name"])
                if stats is not None:
                    stats.bump("corrupt")
                continue
            if _sha256_hex(data) == shard["sha256"]:
                ok.append(shard["name"])
                if stats is not None:
                    stats.bump("verified")
            else:
                corrupt.append(shard["name"])
                if stats is not None:
                    stats.bump("corrupt")
        return VerifyReport(
            ok=tuple(ok), corrupt=tuple(corrupt), missing=tuple(missing)
        )

    # -------------------------------------------------------------- reading
    @staticmethod
    def _read_manifest(directory: Path) -> _Manifest:
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise StoreError(f"no index store at {directory} (missing {MANIFEST_NAME})")
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"corrupt index-store manifest at {path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("format") != FORMAT:
            raise StoreError(
                f"{path} is not a {FORMAT} manifest "
                f"(format={raw.get('format') if isinstance(raw, dict) else raw!r})"
            )
        if raw.get("format_version") != FORMAT_VERSION:
            raise StoreError(
                f"index store at {directory} has format_version "
                f"{raw.get('format_version')!r}; this build reads version "
                f"{FORMAT_VERSION} — rebuild the store with IndexStore.save"
            )
        dtype = raw.get("dtype")
        try:
            supported = np.dtype(dtype) in SUPPORTED_DTYPES
        except TypeError:
            supported = False
        if not supported:
            raise StoreError(f"index store dtype {dtype!r} is not supported")
        shards = raw.get("shards")
        if not isinstance(shards, list):
            raise StoreError(f"corrupt index-store manifest at {path}: no shard list")
        required = {
            "name", "file", "dtype", "fingerprint", "n_genes", "gene_ids",
            "sha256", "nbytes", "tier",
        }
        for shard in shards:
            if not isinstance(shard, dict) or not required.issubset(shard):
                raise StoreError(
                    f"corrupt index-store manifest at {path}: shard record "
                    f"missing {sorted(required - set(shard or ()))}"
                )
            if shard["tier"] not in (TIER_RESIDENT, TIER_COLD):
                raise StoreError(
                    f"corrupt index-store manifest at {path}: shard "
                    f"{shard['name']!r} has unknown tier {shard['tier']!r}"
                )
        return _Manifest(dtype=dtype, shards=shards)

    @staticmethod
    def load(
        directory: str | Path,
        *,
        mmap: bool = True,
        bind: Compendium | None = None,
        verify: str | None = None,
        sweep: bool = True,
        stats: StorageStats | None = None,
    ) -> SpellIndex:
        """Reopen a saved index, verifying shard integrity.

        ``mmap=True`` opens resident shards with ``np.load(mmap_mode="r")``
        — zero-copy: nothing is read until a query touches it.
        ``mmap=False`` materializes every shard in RAM (identical
        results; pay the IO up front).  Cold shards are always
        decompressed into RAM (and checksum-verified) on either path.

        ``verify`` selects the integrity policy: ``"eager"`` hashes
        every shard file against its manifest sha256 before serving it;
        ``"lazy"`` defers hashing (structural checks only) to keep the
        mmap cold start zero-copy — pair it with a startup
        :meth:`verify` scrub.  The default is eager for in-RAM loads
        and lazy for mmap.  A shard that fails verification is
        quarantined and rebuilt from ``bind`` when the matching dataset
        is attached, else the load refuses with ``StoreCorruptError`` —
        a corrupt shard is never served.

        ``sweep=True`` (default) also reclaims crash debris — ``*.tmp``
        partials and shard files the committed manifest doesn't claim —
        so a reader after a killed writer starts from a clean directory.
        Pass ``sweep=False`` for concurrent readers (worker processes)
        that must not race a live writer's unpublished files.

        ``bind`` attaches live :class:`Dataset` objects (matched by name
        + content fingerprint) as shard sources, so a following
        ``SpellIndex.updated`` can diff by identity as if the index had
        been built in-process.
        """
        directory = Path(directory)
        if verify not in (None, "eager", "lazy"):
            raise StoreError(f"unknown verify policy {verify!r}")
        manifest = IndexStore._read_manifest(directory)
        eager = verify == "eager" or (verify is None and not mmap)
        by_key = {}
        if bind is not None:
            by_key = {(ds.name, ds.fingerprint): ds for ds in bind}
        if sweep:
            live = {IndexStore._stored_file(s) for s in manifest.shards}
            IndexStore._sweep_orphans(directory, live, stats)
        entries: list[_DatasetIndex] = []
        repaired = False
        for shard in manifest.shards:
            source = by_key.get((shard["name"], shard["fingerprint"]))
            stored = IndexStore._stored_file(shard)
            path = directory / stored
            cold = shard.get("tier") == TIER_COLD
            if cold or eager:
                # the bytes pass through RAM anyway (cold always does:
                # decompress-on-promote re-verifies by construction), so
                # hashing them is one pass over data already read
                data = IndexStore._verified_bytes(
                    directory, shard, path, stats, source=source
                )
                if _sha256_hex(data) != shard["sha256"]:
                    # rebuilt bytes drifted from the recorded digest
                    # (e.g. a numpy serialization change): republish so
                    # the store and manifest agree again
                    IndexStore._publish_shard(directory, shard["file"], data, stats)
                    shard["sha256"] = _sha256_hex(data)
                    shard["nbytes"] = len(data)
                    shard["tier"] = TIER_RESIDENT
                    shard.pop("cold_file", None)
                    repaired = True
                elif not path.exists():
                    # verification rebuilt from source but the digest
                    # matched: persist the healed resident file
                    IndexStore._publish_shard(directory, shard["file"], data, stats)
                    if cold:
                        shard["tier"] = TIER_RESIDENT
                        shard.pop("cold_file", None)
                        repaired = True
                if cold and stats is not None:
                    stats.bump("cold_loads")
                if cold or not mmap:
                    normalized = _load_npy(data, path, shard)
                else:
                    normalized = np.load(directory / shard["file"], mmap_mode="r")
            else:
                try:
                    normalized = np.load(path, mmap_mode="r" if mmap else None)
                except (OSError, ValueError):
                    # structurally unreadable: same quarantine →
                    # rebuild-or-refuse path as a checksum mismatch
                    data = IndexStore._verified_bytes(
                        directory, shard, path, stats, source=source
                    )
                    IndexStore._publish_shard(directory, shard["file"], data, stats)
                    normalized = (
                        np.load(directory / shard["file"], mmap_mode="r")
                        if mmap
                        else _load_npy(data, path, shard)
                    )
            gene_ids = list(shard["gene_ids"])  # JSON already yields str
            if normalized.ndim != 2 or normalized.shape[0] != len(gene_ids):
                raise StoreCorruptError(
                    f"shard {shard['name']!r} at {path} has shape "
                    f"{normalized.shape} for {len(gene_ids)} gene ids",
                    datasets=(str(shard["name"]),),
                    files=(stored,),
                )
            if normalized.dtype.name != shard["dtype"]:
                raise StoreCorruptError(
                    f"shard {shard['name']!r} at {path} is {normalized.dtype.name}, "
                    f"manifest says {shard['dtype']}",
                    datasets=(str(shard["name"]),),
                    files=(stored,),
                )
            entries.append(
                _DatasetIndex(
                    name=str(shard["name"]),
                    gene_ids=gene_ids,
                    normalized=normalized,
                    source=source,
                    fingerprint=str(shard["fingerprint"]),
                )
            )
        if repaired:
            IndexStore._publish_manifest(directory, manifest, stats)
        if stats is not None:
            cold = sum(1 for s in manifest.shards if s.get("tier") == TIER_COLD)
            stats.set_tiers(len(manifest.shards) - cold, cold)
        return SpellIndex(entries)

    @staticmethod
    def matches(directory: str | Path, compendium: Compendium, *, dtype=None) -> bool:
        """True when the store serves exactly ``compendium``'s content.

        Compares the ordered ``(name, fingerprint)`` sequence (order
        matters: aggregation order determines bit-level results) and,
        when given, the shard dtype.  Missing or unreadable stores are
        simply non-matches.
        """
        try:
            manifest = IndexStore._read_manifest(Path(directory))
        except StoreError:
            return False
        if dtype is not None and np.dtype(dtype).name != manifest.dtype:
            return False
        on_disk = [(s["name"], s["fingerprint"]) for s in manifest.shards]
        live = [(ds.name, ds.fingerprint) for ds in compendium]
        return on_disk == live

    @staticmethod
    def tiers(directory: str | Path) -> dict[str, str]:
        """Dataset name -> tier, straight from the committed manifest."""
        manifest = IndexStore._read_manifest(Path(directory))
        return {str(s["name"]): str(s.get("tier", TIER_RESIDENT)) for s in manifest.shards}


def _cli(argv: list[str] | None = None) -> int:
    """``python -m repro.spell.store <verb> <directory> [names...]``

    Operator verbs over a store directory: ``verify`` (scrub; exit 1 on
    any corrupt/missing shard), ``tiers`` (tier per dataset), ``demote``
    / ``promote`` (move named datasets between tiers).  JSON on stdout,
    one object per run, so the CI durability smoke and shell pipelines
    can assert on it.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.spell.store",
        description="Inspect and maintain a spell-index-store directory.",
    )
    parser.add_argument("verb", choices=("verify", "tiers", "demote", "promote"))
    parser.add_argument("directory")
    parser.add_argument("names", nargs="*", help="dataset names (demote/promote)")
    args = parser.parse_args(argv)
    stats = StorageStats()
    try:
        if args.verb == "verify":
            report = IndexStore.verify(args.directory, stats=stats)
            out = {
                "ok": list(report.ok),
                "corrupt": list(report.corrupt),
                "missing": list(report.missing),
                "storage": stats.snapshot(),
            }
            print(json.dumps(out, indent=2))
            return 0 if report.clean else 1
        if args.verb == "tiers":
            print(json.dumps(IndexStore.tiers(args.directory), indent=2))
            return 0
        mover = IndexStore.demote if args.verb == "demote" else IndexStore.promote
        moved = mover(args.directory, args.names, stats=stats)
        print(json.dumps({"moved": list(moved), "storage": stats.snapshot()}, indent=2))
        return 0
    except StoreError as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover — exercised by the CI smoke
    raise SystemExit(_cli())
