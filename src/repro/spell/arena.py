"""Fused shard arena + reusable scoring scratch for the SPELL hot path.

Two allocation sinks dominated the per-query cost of
:meth:`repro.spell.index.SpellIndex.search` once the math itself was
vectorized:

* **Shard fragmentation** — the index held one independently-allocated
  normalized matrix per dataset, so a query walked a Python list of
  arrays scattered across the heap.  :class:`ShardArena` lays every
  shard's rows into **one contiguous buffer per dtype** and hands back
  zero-copy *views* (an ``offsets`` table derived from the views is
  kept for introspection), so the scoring loop iterates windows of a
  single array.
  Matmuls against a view are bit-identical to matmuls against the
  original shard (same values, same BLAS reduction order), which the
  oracle tests assert.

* **Per-query scratch** — every search used to allocate three fresh
  universe-sized arrays (``totals``/``weight_mass``/``counts``).
  :class:`ScoreScratch` owns those arrays; a :class:`ScratchPool`
  free-list recycles them across queries *and threads* (a
  thread-per-request server like ``ThreadingHTTPServer`` never reuses a
  thread, so thread-local storage would defeat the pool on the primary
  serving path).  Handing arrays out zeroes them (one memset each, no
  allocator or page-fault traffic) and grows them only when the gene
  universe does.

**Fusion discipline**: only shards that are plain in-RAM arrays
*owning their data* are fused.  Shards reopened from the persistent
store (:mod:`repro.spell.store`) are ``np.memmap`` windows whose pages
fault in lazily — copying them would read every byte and destroy the
zero-copy cold start.  And shards that are already views into a
previous index's arena (the copy-on-write ``SpellIndex.updated`` path)
are reused as-is rather than re-copied, so an incremental sync costs
O(changed shards), not O(index bytes).  Either way the consumer sees
the same thing: a list of ``(genes, conditions)`` views.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

__all__ = ["ShardArena", "ScoreScratch", "ScratchPool"]


class ShardArena:
    """Contiguous (when possible) storage for a list of shard matrices.

    ``views[i]`` is the i-th shard as a ``(genes, conditions)`` array.
    When every input shard is a plain in-RAM ``ndarray`` owning its data
    and sharing one dtype, the views alias one flat buffer (``fused`` is
    True); otherwise the inputs themselves serve as the views (``fused``
    is False) — the mmap and copy-on-write-reuse cases.
    """

    __slots__ = ("views", "fused", "_flat")

    def __init__(self, shards: Sequence[np.ndarray]) -> None:
        shards = list(shards)
        self.fused = bool(shards) and all(
            s.ndim == 2 and type(s) is np.ndarray and s.base is None for s in shards
        ) and len({s.dtype for s in shards}) == 1
        if self.fused:
            total = sum(s.size for s in shards)
            flat = np.empty(total, dtype=shards[0].dtype)
            views: list[np.ndarray] = []
            pos = 0
            for s in shards:
                view = flat[pos : pos + s.size].reshape(s.shape)
                view[...] = s
                views.append(view)
                pos += s.size
            self._flat = flat
            self.views = views
        else:
            self._flat = None
            self.views = shards

    def __len__(self) -> int:
        return len(self.views)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.views[i]

    @property
    def offsets(self) -> list[int]:
        """Element offset of each view inside the flat buffer (-1 when the
        view lives outside it: unfused arenas and late-appended shards).

        Introspection only — the scoring loop addresses shards through
        ``views``; this exists so tests and debuggers can verify the
        contiguous layout without poking at ``ctypes`` themselves.
        """
        if self._flat is None:
            return [-1] * len(self.views)
        start = self._flat.ctypes.data
        end = start + self._flat.nbytes
        itemsize = self._flat.itemsize
        return [
            (v.ctypes.data - start) // itemsize
            if start <= v.ctypes.data < end
            else -1
            for v in self.views
        ]

    def append(self, shard: np.ndarray) -> None:
        """Register one more shard (in-place index maintenance).

        The flat buffer cannot be extended without copying every live
        view, so late arrivals stay standalone arrays; a fresh index
        (``SpellIndex.updated`` / ``build``) re-fuses everything.
        """
        self.views.append(shard)

    def remove(self, i: int) -> None:
        del self.views[i]

    def nbytes(self) -> int:
        return sum(int(v.nbytes) for v in self.views)


class ScoreScratch:
    """The three universe-sized accumulators one search needs, reusable.

    ``arrays(n_slots)`` returns zeroed ``totals`` / ``weight_mass`` /
    ``counts`` arrays of exactly ``n_slots`` entries, growing the
    backing buffers only when the universe has (slots are append-only,
    so growth is monotonic).  Zeroing is a memset per array — no
    allocation, no first-touch page faults after the first query.
    """

    __slots__ = ("totals", "weight_mass", "counts")

    def __init__(self) -> None:
        self.totals = np.zeros(0, dtype=np.float64)
        self.weight_mass = np.zeros(0, dtype=np.float64)
        self.counts = np.zeros(0, dtype=np.intp)

    def arrays(self, n_slots: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.totals.shape[0] < n_slots:
            self.totals = np.zeros(n_slots, dtype=np.float64)
            self.weight_mass = np.zeros(n_slots, dtype=np.float64)
            self.counts = np.zeros(n_slots, dtype=np.intp)
        else:
            self.totals[:n_slots] = 0.0
            self.weight_mass[:n_slots] = 0.0
            self.counts[:n_slots] = 0
        return (
            self.totals[:n_slots],
            self.weight_mass[:n_slots],
            self.counts[:n_slots],
        )


class ScratchPool:
    """A bounded free-list of :class:`ScoreScratch`, owned by the index.

    ``acquire()`` pops a recycled scratch (or builds the first one);
    ``release()`` returns it for the next query.  A free-list rather
    than thread-local storage because the primary serving transport
    (``ThreadingHTTPServer``) runs every request on a *fresh* thread —
    thread-locals there would allocate per query, exactly the cost this
    pool exists to remove.  Concurrent searches each hold their own
    scratch; the pool retains at most ``max_pooled`` idle ones (spikes
    beyond that allocate and are dropped on release).  The pool dies
    with its index, so a copy-on-write ``updated()`` swap never leaks
    scratch sized for a retired universe.
    """

    __slots__ = ("_idle", "_lock", "_max_pooled")

    def __init__(self, max_pooled: int = 32) -> None:
        self._idle: list[ScoreScratch] = []
        self._lock = threading.Lock()
        self._max_pooled = int(max_pooled)

    def acquire(self) -> ScoreScratch:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return ScoreScratch()

    def release(self, scratch: ScoreScratch) -> None:
        with self._lock:
            if len(self._idle) < self._max_pooled:
                self._idle.append(scratch)

    def idle_count(self) -> int:
        """Scratches currently parked in the free-list (observability:
        a leak shows up as this number *failing to return* to its
        steady state after queries finish, or the pool regrowing
        allocation churn; regression-tested against failing queries)."""
        with self._lock:
            return len(self._idle)
