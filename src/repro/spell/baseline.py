"""Text-search baseline SPELL is compared against.

Paper §3: "rather than searching through a collection of data by text
matches, SPELL uses the information within the data."  To quantify that
contrast, this module implements the text-match strawman: rank genes by
annotation-text overlap with the query genes' annotations, rank datasets
by how many query genes they contain.  It sees names, not expression —
so it cannot find unannotated co-expressed genes, which is exactly the
gap the FIG4 bench measures.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.data.compendium import Compendium
from repro.spell.engine import DatasetScore, GeneScore, GeneTable, SpellResult
from repro.util.errors import SearchError

__all__ = ["TextSearchBaseline"]

_STOPWORDS = {
    "the", "a", "an", "of", "to", "and", "or", "in", "protein", "putative",
    "uncharacterized", "open", "reading", "frame", "subunit",
}


def _tokens(text: str) -> set[str]:
    return {
        tok
        for tok in re.split(r"[^a-z0-9]+", text.lower())
        if len(tok) >= 3 and tok not in _STOPWORDS
    }


class TextSearchBaseline:
    """Annotation-text retrieval over a compendium (no expression data used)."""

    def __init__(self, compendium: Compendium) -> None:
        if len(compendium) == 0:
            raise SearchError("cannot search an empty compendium")
        self.compendium = compendium
        # gene -> token bag, unioned across datasets' annotation stores
        self._gene_tokens: dict[str, set[str]] = {}
        for ds in compendium:
            for gene_id in ds.gene_ids:
                record = ds.annotations.record(gene_id)
                bag = self._gene_tokens.setdefault(gene_id, set())
                for value in record.values():
                    bag |= _tokens(value)

    def search(self, query: Sequence[str]) -> SpellResult:
        """Rank genes by shared annotation tokens with the query genes."""
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        query_used = tuple(g for g in query if g in self._gene_tokens)
        query_missing = tuple(g for g in query if g not in self._gene_tokens)
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")
        query_bag: set[str] = set()
        for g in query_used:
            query_bag |= self._gene_tokens[g]

        query_set = set(query_used)
        gene_scores = []
        for gene_id, bag in self._gene_tokens.items():
            if gene_id in query_set:
                continue
            overlap = len(bag & query_bag)
            if overlap:
                union = len(bag | query_bag)
                gene_scores.append(
                    GeneScore(gene_id=gene_id, score=overlap / union, n_datasets=0)
                )
        gene_scores.sort(key=lambda s: (-s.score, s.gene_id))

        dataset_scores = [
            DatasetScore(
                name=ds.name,
                weight=float(sum(1 for g in query_used if g in ds.matrix)),
                n_query_present=sum(1 for g in query_used if g in ds.matrix),
            )
            for ds in self.compendium
        ]
        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=GeneTable.from_scores(gene_scores),
        )
