"""The SPELL search engine (Serial Patterns of Expression Levels Locator).

Paper §3: "take a small query of related genes from a user, examine all
of the available data to identify datasets where these genes are most
related, then within those datasets identify additional genes that
relate back to the query set."

Algorithm (following Hibbs et al. 2007):

1. **Dataset weighting** — for each dataset, the weight is the mean
   pairwise Pearson correlation among the query genes present there
   (Fisher-z averaged, floored at zero, squared to sharpen the
   contrast between informative and uninformative datasets).
2. **Per-dataset gene scoring** — each gene's score in a dataset is its
   mean correlation to the query genes present.
3. **Aggregation** — a gene's final score is the weight-normalized sum
   of its per-dataset scores over the datasets containing it.

Output is the pair of rankings the paper shows in Figure 4: datasets by
weight, genes by aggregate score.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.data.compendium import Compendium
from repro.stats.correlation import fisher_z, pearson_matrix, pearson_to_vector
from repro.util.errors import SearchError
from repro.parallel.pmap import parallel_map

__all__ = [
    "DatasetScore",
    "GeneScore",
    "GeneTable",
    "ranked_gene_table",
    "SpellResult",
    "SpellEngine",
]

#: A dataset needs this many query genes present to receive a weight.
MIN_QUERY_PRESENT = 2


@dataclass(frozen=True)
class DatasetScore:
    name: str
    weight: float
    n_query_present: int


@dataclass(frozen=True)
class GeneScore:
    gene_id: str
    score: float
    n_datasets: int  # datasets (with positive weight) that scored this gene


class GeneTable(SequenceABC):
    """Array-backed ranked gene list (the hot-path result representation).

    Aggregation produces parallel NumPy arrays; this container keeps them
    that way instead of materializing one :class:`GeneScore` per gene.
    It still *behaves* like a sequence of ``GeneScore`` — ``len``,
    iteration, integer indexing and slicing all work — so every existing
    consumer of ``SpellResult.genes`` keeps working, but ranking and
    pagination never touch per-gene Python objects.

    ``total`` is the number of candidate genes in the full ranking:
    equal to ``len(self)`` for complete results, larger when the table
    was truncated by a top-k query.
    """

    __slots__ = ("ids", "scores", "n_datasets", "total")

    def __init__(self, ids, scores, n_datasets, *, total: int | None = None) -> None:
        ids = np.asarray(ids)
        if ids.size == 0 and ids.dtype.kind not in ("U", "S", "O"):
            ids = ids.astype("U1")
        scores = np.asarray(scores, dtype=np.float64)
        n_ds = np.asarray(n_datasets, dtype=np.int64)
        if not (ids.shape == scores.shape == n_ds.shape) or ids.ndim != 1:
            raise SearchError(
                f"gene table arrays must be parallel 1-D, got shapes "
                f"{ids.shape}/{scores.shape}/{n_ds.shape}"
            )
        self.ids = ids
        self.scores = scores
        self.n_datasets = n_ds
        self.total = len(ids) if total is None else int(total)

    @classmethod
    def from_scores(
        cls, scores: Iterable[GeneScore], *, total: int | None = None
    ) -> "GeneTable":
        """Build from materialized :class:`GeneScore` objects (slow path)."""
        scores = list(scores)
        return cls(
            np.asarray([g.gene_id for g in scores]),
            np.asarray([g.score for g in scores], dtype=np.float64),
            np.asarray([g.n_datasets for g in scores], dtype=np.int64),
            total=total,
        )

    def __len__(self) -> int:
        return len(self.ids)

    def __getitem__(self, key):
        if isinstance(key, slice):
            return GeneTable(
                self.ids[key], self.scores[key], self.n_datasets[key], total=self.total
            )
        i = int(key)
        return GeneScore(
            gene_id=str(self.ids[i]),
            score=float(self.scores[i]),
            n_datasets=int(self.n_datasets[i]),
        )

    def __iter__(self):
        for gid, score, n in zip(self.ids, self.scores, self.n_datasets):
            yield GeneScore(gene_id=str(gid), score=float(score), n_datasets=int(n))

    def __eq__(self, other) -> bool:
        if not isinstance(other, GeneTable):
            return NotImplemented
        return (
            self.total == other.total
            and len(self) == len(other)
            and bool(np.array_equal(self.ids, other.ids))
            and bool(np.array_equal(self.scores, other.scores))
            and bool(np.array_equal(self.n_datasets, other.n_datasets))
        )

    def __hash__(self):
        return hash((self.total, len(self)))  # equal tables hash equal; cheap

    def ranking(self) -> list[str]:
        return [str(g) for g in self.ids]

    def rows(self, start: int, stop: int) -> list[tuple[int, str, float]]:
        """``(rank, gene_id, score)`` rows for the half-open slice
        ``[start, stop)``, with 1-based *global* ranks.

        Array-native: two ``tolist()`` calls instead of materializing a
        :class:`GeneScore` per row — the streaming-export hot path,
        where a deep result walks the whole table.  Values are
        bit-identical to iterating ``self[start:stop]`` (``tolist`` and
        ``float()``/``str()`` produce the same Python scalars).
        """
        start = max(0, int(start))
        ids = self.ids[start:stop].tolist()
        scores = self.scores[start:stop].tolist()
        return [
            (start + i + 1, str(gid), float(score))
            for i, (gid, score) in enumerate(zip(ids, scores))
        ]

    def __repr__(self) -> str:
        return f"GeneTable({len(self)} of {self.total} genes)"


def ranked_gene_table(
    ids: np.ndarray,
    scores: np.ndarray,
    n_datasets: np.ndarray,
    *,
    top_k: int | None = None,
) -> GeneTable:
    """Rank candidate genes by ``(-score, gene_id)`` entirely in NumPy.

    ``top_k=None`` sorts everything (one ``lexsort``); otherwise only the
    top ``k`` rows are selected with :func:`np.argpartition` and just
    those are sorted.  Candidates tied with the k-th score are all kept
    through the final sort, so the truncated table is bit-identical to
    the head of the full ranking regardless of partition order.
    """
    ids = np.asarray(ids)
    scores = np.asarray(scores, dtype=np.float64)
    n_datasets = np.asarray(n_datasets)
    n = scores.shape[0]
    if top_k is not None:
        top_k = int(top_k)
        if top_k < 0:
            raise SearchError(f"top_k must be >= 0, got {top_k}")
        if top_k == 0:
            return GeneTable(ids[:0], scores[:0], n_datasets[:0], total=n)
    if top_k is None or top_k >= n:
        order = np.lexsort((ids, -scores))
    else:
        neg = -scores
        kth = np.partition(neg, top_k - 1)[top_k - 1]
        cand = np.flatnonzero(neg <= kth)
        order = cand[np.lexsort((ids[cand], neg[cand]))][:top_k]
    return GeneTable(ids[order], scores[order], n_datasets[order], total=n)


@dataclass(frozen=True)
class SpellResult:
    """Ordered datasets + ordered genes for one query (Figure 4's output)."""

    query: tuple[str, ...]
    query_used: tuple[str, ...]  # query genes found in >= 1 dataset
    query_missing: tuple[str, ...]
    datasets: tuple[DatasetScore, ...]  # sorted by weight, descending
    genes: "GeneTable | tuple[GeneScore, ...]"  # by score desc; query excluded

    def top_genes(self, n: int) -> list[str]:
        return [g.gene_id for g in self.genes[:n]]

    def top_datasets(self, n: int) -> list[str]:
        return [d.name for d in self.datasets[:n]]

    def gene_ranking(self) -> list[str]:
        if isinstance(self.genes, GeneTable):
            return self.genes.ranking()
        return [g.gene_id for g in self.genes]

    def dataset_ranking(self) -> list[str]:
        return [d.name for d in self.datasets]

    @property
    def total_genes(self) -> int:
        """Candidate genes in the full ranking (>= ``len(genes)`` for top-k)."""
        if isinstance(self.genes, GeneTable):
            return self.genes.total
        return len(self.genes)


class SpellEngine:
    """Query-driven search over a :class:`Compendium`.

    ``n_workers > 1`` scores datasets concurrently (NumPy releases the
    GIL in the correlation matmuls, so threads give real parallelism).
    """

    def __init__(self, compendium: Compendium, *, n_workers: int = 1) -> None:
        if len(compendium) == 0:
            raise SearchError("cannot search an empty compendium")
        self.compendium = compendium
        self.n_workers = max(1, int(n_workers))

    # ------------------------------------------------------------------ query
    def search(
        self,
        query: Sequence[str],
        *,
        exclude_query_from_genes: bool = True,
        min_weight: float = 0.0,
        top_k: int | None = None,
        datasets: Sequence[str] | None = None,
    ) -> SpellResult:
        """Run one SPELL search; see module docstring for the algorithm.

        ``top_k`` truncates the gene ranking to its first ``k`` rows
        (selected with ``argpartition``, bit-identical to the head of the
        full ranking); the full candidate count stays available as
        ``result.total_genes``.  ``datasets`` restricts the search to the
        named datasets (in compendium order) — only they are weighted and
        only their genes are scored.
        """
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        targets = list(self.compendium)
        if datasets is not None:
            allowed = {str(d) for d in datasets}
            unknown = sorted(allowed - {ds.name for ds in targets})
            if unknown:
                raise SearchError(f"unknown dataset(s) in filter: {unknown}")
            targets = [ds for ds in targets if ds.name in allowed]
        present_anywhere = {
            g for g in query if any(g in ds.matrix for ds in targets)
        }
        query_used = tuple(g for g in query if g in present_anywhere)
        query_missing = tuple(g for g in query if g not in present_anywhere)
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")

        per_dataset = parallel_map(
            lambda ds: self._score_dataset(ds, query_used),
            targets,
            n_workers=self.n_workers,
        )

        dataset_scores = tuple(
            sorted(
                (entry[0] for entry in per_dataset),
                key=lambda d: (-d.weight, d.name),
            )
        )

        # aggregate gene scores across positively-weighted datasets: dense
        # scatter-add over a query-local gene universe (the same discipline
        # the index uses) instead of a per-gene Python dict loop, which
        # dominated engine query time on large universes
        contributing = [
            (ds_score.weight, gene_ids, scores)
            for ds_score, gene_ids, scores in per_dataset
            if ds_score.weight > min_weight and gene_ids is not None
        ]
        if contributing:
            id_arrays = [np.asarray(gene_ids, dtype=str) for _, gene_ids, _ in contributing]
            uniq, inv = np.unique(np.concatenate(id_arrays), return_inverse=True)
            inv = np.asarray(inv, dtype=np.intp)
            n_slots = uniq.shape[0]
            totals = np.zeros(n_slots)
            weight_mass = np.zeros(n_slots)
            counts = np.zeros(n_slots, dtype=np.int64)
            offset = 0
            for (w, _, scores), ids_arr in zip(contributing, id_arrays):
                slots = inv[offset : offset + ids_arr.shape[0]]
                offset += ids_arr.shape[0]
                scores = np.asarray(scores, dtype=np.float64)
                valid = ~np.isnan(scores)
                hit = slots[valid]  # gene ids are unique per dataset: += is safe
                totals[hit] += w * scores[valid]
                weight_mass[hit] += w
                counts[hit] += 1
            scored = np.flatnonzero(counts)
            if exclude_query_from_genes:
                scored = scored[~np.isin(uniq[scored], tuple(query_used))]
            ids = uniq[scored]
            with np.errstate(invalid="ignore", divide="ignore"):
                raw_scores = totals[scored] / weight_mass[scored]
            n_ds = counts[scored]
        else:
            ids = np.asarray([], dtype=str)
            raw_scores = np.asarray([], dtype=np.float64)
            n_ds = np.asarray([], dtype=np.int64)
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=dataset_scores,
            genes=ranked_gene_table(ids, raw_scores, n_ds, top_k=top_k),
        )

    def search_iterative(
        self, query: Sequence[str], *, rounds: int = 2, grow_by: int = 1
    ) -> SpellResult:
        """Directed search: grow the query with its own top hits and re-search.

        Each round appends the ``grow_by`` highest-scoring non-query genes
        and repeats; the final result is reported against the *original*
        query (the paper's "iteratively adjust the viewed gene subsets in
        tandem with statistical analysis").
        """
        if rounds < 1:
            raise SearchError(f"rounds must be >= 1, got {rounds}")
        current = list(dict.fromkeys(str(g) for g in query))
        result = self.search(current)
        for _ in range(rounds - 1):
            additions = [g.gene_id for g in result.genes[:grow_by]]
            if not additions:
                break
            current.extend(a for a in additions if a not in current)
            result = self.search(current)
        # re-attribute to the original query for reporting
        genes = result.genes
        if isinstance(genes, GeneTable):
            keep = ~np.isin(genes.ids, np.asarray([str(g) for g in query]))
            genes = GeneTable(
                genes.ids[keep], genes.scores[keep], genes.n_datasets[keep]
            )
        else:
            genes = tuple(g for g in genes if g.gene_id not in set(query))
        return SpellResult(
            query=tuple(str(g) for g in query),
            query_used=result.query_used,
            query_missing=result.query_missing,
            datasets=result.datasets,
            genes=genes,
        )

    # -------------------------------------------------------------- internals
    def _score_dataset(
        self, dataset, query_used: tuple[str, ...]
    ) -> tuple[DatasetScore, list[str] | None, np.ndarray | None]:
        """Weight one dataset and score all its genes against the query."""
        matrix = dataset.matrix
        present = [g for g in query_used if g in matrix]
        if len(present) < MIN_QUERY_PRESENT:
            return DatasetScore(dataset.name, 0.0, len(present)), None, None
        rows = matrix.indices_of(present)
        qdata = matrix.values[np.asarray(rows, dtype=np.intp)]

        # (1) coherence weight: mean pairwise query correlation, z-averaged
        qcorr = pearson_matrix(qdata)
        iu = np.triu_indices(len(present), k=1)
        pair_corrs = qcorr[iu]
        pair_corrs = pair_corrs[~np.isnan(pair_corrs)]
        if pair_corrs.size == 0:
            return DatasetScore(dataset.name, 0.0, len(present)), None, None
        mean_r = float(np.tanh(np.mean(fisher_z(pair_corrs))))
        weight = max(0.0, mean_r) ** 2

        # (2) per-gene mean correlation to the query genes
        corr_sum = np.zeros(matrix.n_genes)
        corr_n = np.zeros(matrix.n_genes)
        for r in rows:
            c = pearson_to_vector(matrix.values, matrix.values[r])
            valid = ~np.isnan(c)
            corr_sum[valid] += c[valid]
            corr_n[valid] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            scores = corr_sum / corr_n
        scores[corr_n == 0] = np.nan
        return DatasetScore(dataset.name, weight, len(present)), matrix.gene_ids, scores
