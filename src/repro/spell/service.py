"""SPELL's query service (the paper's Figure 4 backend), serving-grade.

The *public* query surface now lives in :mod:`repro.api`: transports and
frontends speak the versioned wire protocol
(:class:`~repro.api.protocol.SearchRequest` /
:class:`~repro.api.protocol.SearchResponse`) through
:class:`~repro.api.app.ApiApp` (or the HTTP facade in
:mod:`repro.api.http`), and :class:`SpellService` is the engine room
behind that boundary.  :meth:`SpellService.respond` /
:meth:`SpellService.respond_batch` are the protocol-typed entry points;
the historical :meth:`search_page` / :meth:`search_many` survive as thin
shims over them.

What the service adds over the raw engine/index:

* **Result cache** — an LRU keyed on the canonicalized query plus the
  compendium's version token (:mod:`repro.spell.cache`); repeated or
  permuted queries are answered without touching the index.  Dataset
  filters and top-k truncation are part of the key, so partial answers
  never masquerade as full ones.
* **Batched queries** — :meth:`respond_batch` fans a batch across threads
  sharing one index (NumPy releases the GIL in the scoring matmuls),
  modelling many concurrent users.
* **Incremental index maintenance** — when the compendium's version
  token moves, the service diffs dataset names and splices shards via
  ``SpellIndex.add_dataset`` / ``remove_dataset`` instead of rebuilding.
* **Persistent index** — ``store_dir=`` points the service at an
  :class:`~repro.spell.store.IndexStore` directory: a fresh process
  memory-maps the saved shards (zero-copy cold start) instead of
  re-normalizing the compendium, and every index sync also rewrites the
  stale shards on disk.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api.errors import ApiError
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    SearchRequest,
    SearchResponse,
)
from repro.data.compendium import Compendium
from repro.parallel.pmap import parallel_map
from repro.parallel.workqueue import WorkStealingPool
from repro.spell.cache import DEFAULT_CACHE_SIZE, QueryCache, rebind_result
from repro.spell.engine import SpellEngine, SpellResult
from repro.spell.index import SpellIndex
from repro.spell.store import IndexStore
from repro.util.errors import SearchError, StoreError
from repro.util.timing import Stopwatch

__all__ = ["SearchPage", "BatchSearchResult", "SpellService"]


@dataclass(frozen=True)
class SearchPage:
    """One page of search output, shaped like the Figure 4 web table.

    Legacy in-process shape, kept for existing callers; new code should
    consume :class:`repro.api.protocol.SearchResponse` (which adds
    ``total_pages`` and strict page-range checking).
    """

    query: tuple[str, ...]
    page: int
    page_size: int
    total_genes: int
    gene_rows: tuple[tuple[int, str, float], ...]  # (rank, gene, score)
    dataset_rows: tuple[tuple[int, str, float], ...]  # (rank, dataset, weight)
    elapsed_seconds: float


@dataclass(frozen=True)
class BatchSearchResult:
    """Per-query pages plus aggregate timing for one :meth:`search_many`."""

    pages: tuple[SearchPage, ...]
    total_seconds: float
    n_workers: int
    cache_hits: int  # hits observed during this batch
    cache_misses: int

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput; ``0.0`` when unmeasurable.

        An empty batch, or one that finished faster than the clock's
        resolution, has no measurable rate and reports ``0.0`` (never
        ``inf`` — downstream arithmetic and JSON encoding must survive
        the value).
        """
        if self.total_seconds <= 0.0 or not self.pages:
            return 0.0
        return len(self.pages) / self.total_seconds


def _page_from_response(response: SearchResponse) -> SearchPage:
    """Downgrade a protocol response to the legacy ``SearchPage`` shape."""
    return SearchPage(
        query=response.query,
        page=response.page,
        page_size=response.page_size,
        total_genes=response.total_genes,
        gene_rows=response.gene_rows,
        dataset_rows=response.dataset_rows,
        elapsed_seconds=response.elapsed_seconds,
    )


class SpellService:
    """Stateful query service over a (mutable) compendium.

    ``use_index=True`` (default) answers from the precomputed index;
    ``use_index=False`` recomputes correlations per query with the exact
    engine — the cold path the ablation bench compares against.
    ``cache_size=0`` disables result caching (every query recomputes).

    ``store_dir`` enables the persistent index: when the directory
    already holds shards for exactly this compendium (matched by content
    fingerprint and dtype) they are reopened via mmap (``store_mmap``)
    instead of rebuilt; otherwise the service builds once and saves.
    ``dtype`` selects the shard precision — ``float32`` halves index
    memory and speeds the matmuls at the cost of last-digit score drift
    (see the ablation bench for rank agreement).
    """

    def __init__(
        self,
        compendium: Compendium,
        *,
        use_index: bool = True,
        n_workers: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        dtype=np.float64,
        store_dir: str | Path | None = None,
        store_mmap: bool = True,
    ) -> None:
        self.compendium = compendium
        self.use_index = bool(use_index)
        self.n_workers = max(1, int(n_workers))
        self.dtype = np.dtype(dtype)
        self._store_dir = Path(store_dir) if store_dir is not None else None
        self._store_mmap = bool(store_mmap)
        self._engine = SpellEngine(compendium, n_workers=n_workers)
        self._index = self._open_index() if self.use_index else None
        self._indexed_version = compendium.version
        self._cache = QueryCache(cache_size) if cache_size > 0 else None
        self._history: list[tuple[tuple[str, ...], float]] = []
        self._lock = threading.Lock()  # guards history + index maintenance
        self._store_lock = threading.Lock()  # serializes on-disk store writes

    def _open_index(self) -> SpellIndex:
        """Reopen the persistent index when current, else build (and save).

        A *stale* store (the compendium changed since the last save) is
        still worth opening: shards whose fingerprints survive are
        reused from disk and only the diff re-normalizes, after which
        the store is synced back to current.
        """
        if self._store_dir is not None:
            # a matching-but-unreadable store (e.g. a shard file lost out
            # from under its manifest) falls through to a rebuild rather
            # than bricking construction
            try:
                stale = IndexStore.load(
                    self._store_dir, mmap=self._store_mmap, bind=self.compendium
                )
            except StoreError:
                stale = None
            if stale is not None and stale.dtype == self.dtype:
                # compare against the entries actually loaded, not a
                # re-read of the manifest (cheaper, and can't race a
                # concurrent sync into mixing old shards with a new
                # manifest's verdict)
                loaded = [(e.name, e.fingerprint) for e in stale._entries]
                live = [(ds.name, ds.fingerprint) for ds in self.compendium]
                if loaded == live:
                    return stale
                index = stale.updated(self.compendium)
                IndexStore.sync(index, self._store_dir)
                return index
        index = SpellIndex.build(
            self.compendium, n_workers=self.n_workers, dtype=self.dtype
        )
        if self._store_dir is not None:
            # sync, not save: a rebuild that supersedes an existing store
            # (e.g. a dtype switch) must also retire the old shard files
            IndexStore.sync(index, self._store_dir)
        return index

    # ------------------------------------------------------------ maintenance
    def _sync_index(self) -> None:
        """Bring the index up to the compendium's current version.

        Copy-on-write: ``SpellIndex.updated`` builds a new index reusing
        every unchanged shard (matched by dataset identity, so same-name
        replacements re-normalize) and only then is the reference
        swapped — in-flight searches on the old index stay consistent,
        and nothing is ever fully rebuilt.
        """
        if self._index is None:
            return
        with self._lock:
            if self.compendium.version == self._indexed_version:
                return
            self._index = self._index.updated(self.compendium)
            self._indexed_version = self.compendium.version
            index = self._index
        if self._store_dir is not None:
            # mirror the splice on disk: only stale shards rewrite.  Disk
            # IO happens outside self._lock (searches append history under
            # it); _store_lock alone serializes writers on the directory.
            with self._store_lock:
                IndexStore.sync(index, self._store_dir)

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: Sequence[str],
        *,
        use_cache: bool = True,
        top_k: int | None = None,
        datasets: Sequence[str] | None = None,
    ) -> SpellResult:
        """Raw search result, served from cache when possible.

        ``top_k`` asks for only the first ``k`` ranked genes (selected
        via ``argpartition``; identical to the head of the full ranking).
        ``datasets`` restricts the search to the named datasets.  Both
        are part of the cache key, so truncated or filtered answers never
        masquerade as full ones.
        """
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        if datasets is not None:
            datasets = tuple(str(d) for d in datasets)

        version = self.compendium.version
        extra: tuple = ()
        if top_k is not None:
            extra += ("top_k", int(top_k))
        if datasets is not None:
            extra += ("datasets", tuple(sorted(set(datasets))))
        with Stopwatch() as sw:
            cached = (
                self._cache.lookup(version, query, extra=extra)
                if (self._cache is not None and use_cache)
                else None
            )
            if cached is not None:
                result = rebind_result(cached, query)
            else:
                self._sync_index()
                if self._index is not None:
                    result = self._index.search(query, top_k=top_k, datasets=datasets)
                else:
                    result = self._engine.search(query, top_k=top_k, datasets=datasets)
                if self._cache is not None and use_cache:
                    self._cache.store(version, query, result, extra=extra)
        with self._lock:
            self._history.append((tuple(query), sw.elapsed))
        return result

    # -------------------------------------------------- protocol entry points
    def respond(
        self, request: SearchRequest, *, strict_page: bool = True
    ) -> SearchResponse:
        """Answer one protocol :class:`~repro.api.protocol.SearchRequest`.

        This is the canonical paged path every transport routes through:
        pagination, ``total_pages`` accounting, and the
        ``PAGE_OUT_OF_RANGE`` check all live in
        :meth:`SearchResponse.from_result`.  With the cache on,
        pagination slices the cached full result, so every page of a
        query shares one cache entry; with the cache off only the first
        ``(page + 1) * page_size`` rows are ranked (``argpartition``
        top-k) instead of sorting the whole gene universe.
        """
        caching = self._cache is not None and request.use_cache
        top_k = request.top_k
        if top_k is None and not caching:
            top_k = (request.page + 1) * request.page_size
        with Stopwatch() as sw:
            result = self.search(
                request.genes,
                use_cache=request.use_cache,
                top_k=top_k,
                datasets=request.datasets,
            )
        return SearchResponse.from_result(
            result, request, elapsed_seconds=sw.elapsed, strict=strict_page
        )

    def respond_batch(
        self, request: BatchSearchRequest, *, strict_page: bool = True
    ) -> BatchSearchResponse:
        """Answer a protocol batch concurrently over the shared index.

        ``scheduler="map"`` uses the order-preserving thread pool;
        ``"steal"`` routes through :class:`WorkStealingPool`, which
        absorbs the imbalance between cache hits and cold searches.
        Results come back in input order either way.  All-or-nothing: a
        failing member request fails the batch with its error.
        """
        self._sync_index()  # once up front, not per worker

        hits0 = self._cache.hits if self._cache is not None else 0
        misses0 = self._cache.misses if self._cache is not None else 0

        def one(req: SearchRequest) -> SearchResponse:
            return self.respond(req, strict_page=strict_page)

        searches = list(request.searches)
        with Stopwatch() as sw:
            if request.scheduler == "steal" and self.n_workers > 1:
                results = WorkStealingPool(self.n_workers).map(one, searches)
            else:
                results = parallel_map(one, searches, n_workers=self.n_workers)
        return BatchSearchResponse(
            results=tuple(results),
            total_seconds=sw.elapsed,
            n_workers=self.n_workers,
            cache_hits=(self._cache.hits - hits0) if self._cache is not None else 0,
            cache_misses=(self._cache.misses - misses0) if self._cache is not None else 0,
        )

    # ------------------------------------------------------------ legacy shims
    def search_page(
        self,
        query: Sequence[str],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
    ) -> SearchPage:
        """Legacy paginated view; thin shim over :meth:`respond`.

        Keeps the historical contract: invalid arguments raise
        :class:`SearchError` and a page past the end returns an *empty*
        page rather than failing (the protocol path raises
        ``PAGE_OUT_OF_RANGE`` instead).
        """
        if page < 0:
            raise SearchError(f"page must be >= 0, got {page}")
        if page_size < 1:
            raise SearchError(f"page_size must be >= 1, got {page_size}")
        try:
            request = SearchRequest(
                genes=tuple(str(g) for g in query),
                page=page,
                page_size=page_size,
                top_datasets=top_datasets,
                use_cache=use_cache,
            )
        except ApiError as exc:
            raise SearchError(exc.message) from exc
        return _page_from_response(self.respond(request, strict_page=False))

    def search_many(
        self,
        queries: Sequence[Sequence[str]],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
        scheduler: str = "map",
    ) -> BatchSearchResult:
        """Legacy batched entry point; thin shim over :meth:`respond_batch`."""
        if scheduler not in ("map", "steal"):
            raise SearchError(f"unknown scheduler {scheduler!r}")
        queries = [list(q) for q in queries]
        if not queries:
            raise SearchError("search_many needs at least one query")
        try:
            request = BatchSearchRequest(
                searches=tuple(
                    SearchRequest(
                        genes=tuple(str(g) for g in q),
                        page=page,
                        page_size=page_size,
                        top_datasets=top_datasets,
                        use_cache=use_cache,
                    )
                    for q in queries
                ),
                scheduler=scheduler,
            )
        except ApiError as exc:
            raise SearchError(exc.message) from exc
        response = self.respond_batch(request, strict_page=False)
        return BatchSearchResult(
            pages=tuple(_page_from_response(r) for r in response.results),
            total_seconds=response.total_seconds,
            n_workers=response.n_workers,
            cache_hits=response.cache_hits,
            cache_misses=response.cache_misses,
        )

    # ------------------------------------------------------------------ stats
    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._history)

    def mean_latency(self) -> float:
        with self._lock:
            if not self._history:
                raise SearchError("no queries executed yet")
            return sum(t for _, t in self._history) / len(self._history)

    def index_bytes(self) -> int:
        return self._index.nbytes() if self._index is not None else 0

    def cache_stats(self) -> dict[str, int]:
        if self._cache is None:
            return {"entries": 0, "max_entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        return self._cache.stats()
