"""SPELL's query service (the paper's Figure 4 backend), serving-grade.

The *public* query surface now lives in :mod:`repro.api`: transports and
frontends speak the versioned wire protocol
(:class:`~repro.api.protocol.SearchRequest` /
:class:`~repro.api.protocol.SearchResponse`) through
:class:`~repro.api.app.ApiApp` (or the HTTP facade in
:mod:`repro.api.http`), and :class:`SpellService` is the engine room
behind that boundary.  :meth:`SpellService.respond` /
:meth:`SpellService.respond_batch` are the protocol-typed entry points;
the historical :meth:`search_page` / :meth:`search_many` survive as thin
shims over them but are **deprecated** (they emit ``DeprecationWarning``
and will be removed once nothing in-repo or downstream calls them).

What the service adds over the raw engine/index:

* **Result cache** — an LRU keyed on the canonicalized query plus the
  compendium's version token (:mod:`repro.spell.cache`); repeated or
  permuted queries are answered without touching the index.  Dataset
  filters and top-k truncation are part of the key, so partial answers
  never masquerade as full ones.
* **Batched queries** — :meth:`respond_batch` fans a batch across threads
  sharing one index (NumPy releases the GIL in the scoring matmuls),
  modelling many concurrent users.
* **Incremental index maintenance** — when the compendium's version
  token moves, the service diffs dataset names and splices shards via
  ``SpellIndex.add_dataset`` / ``remove_dataset`` instead of rebuilding.
* **Persistent index** — ``store_dir=`` points the service at an
  :class:`~repro.spell.store.IndexStore` directory: a fresh process
  memory-maps the saved shards (zero-copy cold start) instead of
  re-normalizing the compendium, and every index sync also rewrites the
  stale shards on disk.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api.errors import ApiError
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ExportChunk,
    ExportRequest,
    ExportTrailer,
    SearchRequest,
    SearchResponse,
)
from repro.data.compendium import Compendium
from repro.parallel.pmap import parallel_map
from repro.parallel.workqueue import WorkStealingPool
from repro.spell.cache import DEFAULT_CACHE_SIZE, QueryCache, rebind_result
from repro.spell.engine import GeneTable, SpellEngine, SpellResult
from repro.spell.index import BatchQuery, SpellIndex
from repro.spell.procpool import (
    REPLY_TIMEOUT_SECONDS,
    IndexWorkerPool,
    WorkerPoolError,
)
from repro.spell.store import IndexStore, StorageStats
from repro.util.deadline import Deadline
from repro.util.errors import SearchError, StoreError
from repro.util.lru import LruCache
from repro.util.timing import Stopwatch

__all__ = ["SearchPage", "BatchSearchResult", "SpellService"]


@dataclass(frozen=True)
class SearchPage:
    """One page of search output, shaped like the Figure 4 web table.

    Legacy in-process shape, kept for existing callers; new code should
    consume :class:`repro.api.protocol.SearchResponse` (which adds
    ``total_pages`` and strict page-range checking).
    """

    query: tuple[str, ...]
    page: int
    page_size: int
    total_genes: int
    gene_rows: tuple[tuple[int, str, float], ...]  # (rank, gene, score)
    dataset_rows: tuple[tuple[int, str, float], ...]  # (rank, dataset, weight)
    elapsed_seconds: float


@dataclass(frozen=True)
class BatchSearchResult:
    """Per-query pages plus aggregate timing for one :meth:`search_many`."""

    pages: tuple[SearchPage, ...]
    total_seconds: float
    n_workers: int
    cache_hits: int  # hits observed during this batch
    cache_misses: int

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput; ``0.0`` when unmeasurable.

        An empty batch, or one that finished faster than the clock's
        resolution, has no measurable rate and reports ``0.0`` (never
        ``inf`` — downstream arithmetic and JSON encoding must survive
        the value).
        """
        if self.total_seconds <= 0.0 or not self.pages:
            return 0.0
        return len(self.pages) / self.total_seconds


def _page_from_response(response: SearchResponse) -> SearchPage:
    """Downgrade a protocol response to the legacy ``SearchPage`` shape."""
    return SearchPage(
        query=response.query,
        page=response.page,
        page_size=response.page_size,
        total_genes=response.total_genes,
        gene_rows=response.gene_rows,
        dataset_rows=response.dataset_rows,
        elapsed_seconds=response.elapsed_seconds,
    )


class SpellService:
    """Stateful query service over a (mutable) compendium.

    ``use_index=True`` (default) answers from the precomputed index;
    ``use_index=False`` recomputes correlations per query with the exact
    engine — the cold path the ablation bench compares against.
    ``cache_size=0`` disables result caching (every query recomputes).

    ``store_dir`` enables the persistent index: when the directory
    already holds shards for exactly this compendium (matched by content
    fingerprint and dtype) they are reopened via mmap (``store_mmap``)
    instead of rebuilt; otherwise the service builds once and saves.
    ``dtype`` selects the shard precision — ``float32`` halves index
    memory and speeds the matmuls at the cost of last-digit score drift
    (see the ablation bench for rank agreement).

    ``n_procs >= 2`` turns on multi-core *batch* serving: worker
    processes each reopen the persistent store via mmap (sharing shard
    pages through the OS page cache — the index is never pickled) and
    :meth:`respond_batch` scatters cache-missing batch members across
    them.  A service without ``store_dir`` gets a private temporary
    store (removed by :meth:`close`).  Per-batch version tokens keep
    workers honest: a stale worker resyncs or refuses, and any pool
    failure falls back to the in-process threaded path — answers first,
    parallelism second.  ``cache_min_cost`` sets the result cache's
    admission threshold (see :class:`~repro.spell.cache.QueryCache`).
    """

    def __init__(
        self,
        compendium: Compendium,
        *,
        use_index: bool = True,
        n_workers: int = 1,
        n_procs: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_min_cost: int = 0,
        dtype=np.float64,
        store_dir: str | Path | None = None,
        store_mmap: bool = True,
        store_verify: str | None = None,
        pool_timeout: float = REPLY_TIMEOUT_SECONDS,
    ) -> None:
        self.compendium = compendium
        self.use_index = bool(use_index)
        self.n_workers = max(1, int(n_workers))
        self.n_procs = max(1, int(n_procs))
        self.pool_timeout = float(pool_timeout)
        #: label -> zero-arg callable; serving facades report through here
        self._transport_probes: dict = {}
        self.dtype = np.dtype(dtype)
        self._store_dir = Path(store_dir) if store_dir is not None else None
        self._owns_store_dir = False
        if self.n_procs > 1 and self.use_index and self._store_dir is None:
            # process workers serve from the store; a caller who asked for
            # multi-core serving without naming one gets a private store
            self._store_dir = Path(tempfile.mkdtemp(prefix="spell-procpool-"))
            self._owns_store_dir = True
        self._store_mmap = bool(store_mmap)
        #: integrity policy for store loads: None = eager for in-RAM,
        #: lazy for mmap (the IndexStore default); "eager"/"lazy" forces
        self._store_verify = store_verify
        #: storage-tier counters for /v1/health — one object for the
        #: service's lifetime, threaded through every IndexStore call
        self.storage = StorageStats()
        #: per-dataset usage signal for cold-tier demotion: an LruCache
        #: whose per-entry hit counts rank how recently/often each
        #: dataset contributed positive weight to an answer
        self._dataset_hits: LruCache[str, bool] = LruCache(
            max(64, 4 * max(1, len(compendium)))
        )
        self._engine = SpellEngine(compendium, n_workers=n_workers)
        self._index = self._open_index() if self.use_index else None
        self._indexed_version = compendium.version
        self._cache = (
            QueryCache(cache_size, min_cost=cache_min_cost) if cache_size > 0 else None
        )
        self._procpool: IndexWorkerPool | None = None  # spawned lazily
        self._pool_respawns = 0
        self._pool_disabled = False  # set when respawning stops helping
        self._history: list[tuple[tuple[str, ...], float]] = []
        self._lock = threading.Lock()  # guards history + index maintenance
        self._store_lock = threading.Lock()  # serializes on-disk store writes
        self._pool_lock = threading.Lock()  # guards procpool lifecycle

    def _open_index(self) -> SpellIndex:
        """Reopen the persistent index when current, else build (and save).

        A *stale* store (the compendium changed since the last save) is
        still worth opening: shards whose fingerprints survive are
        reused from disk and only the diff re-normalizes, after which
        the store is synced back to current.
        """
        if self._store_dir is not None:
            # a matching-but-unreadable store (e.g. a shard file lost out
            # from under its manifest) falls through to a rebuild rather
            # than bricking construction
            try:
                stale = IndexStore.load(
                    self._store_dir,
                    mmap=self._store_mmap,
                    bind=self.compendium,
                    verify=self._store_verify,
                    stats=self.storage,
                )
            except StoreError:
                # covers StoreCorruptError too: with the compendium bound,
                # load already quarantined and rebuilt what it could; what
                # it could not is rebuilt from source right here
                stale = None
            if stale is not None and stale.dtype == self.dtype:
                # compare against the entries actually loaded, not a
                # re-read of the manifest (cheaper, and can't race a
                # concurrent sync into mixing old shards with a new
                # manifest's verdict)
                loaded = [(e.name, e.fingerprint) for e in stale._entries]
                live = [(ds.name, ds.fingerprint) for ds in self.compendium]
                if loaded == live:
                    return stale
                index = stale.updated(self.compendium)
                IndexStore.sync(index, self._store_dir, stats=self.storage)
                return index
        index = SpellIndex.build(
            self.compendium, n_workers=self.n_workers, dtype=self.dtype
        )
        if self._store_dir is not None:
            # sync, not save: a rebuild that supersedes an existing store
            # (e.g. a dtype switch) must also retire the old shard files
            IndexStore.sync(index, self._store_dir, stats=self.storage)
        return index

    # ------------------------------------------------------------ maintenance
    def _sync_index(self) -> None:
        """Bring the index up to the compendium's current version.

        Copy-on-write: ``SpellIndex.updated`` builds a new index reusing
        every unchanged shard (matched by dataset identity, so same-name
        replacements re-normalize) and only then is the reference
        swapped — in-flight searches on the old index stay consistent,
        and nothing is ever fully rebuilt.
        """
        if self._index is None:
            return
        with self._lock:
            if self.compendium.version == self._indexed_version:
                return
            self._index = self._index.updated(self.compendium)
            self._indexed_version = self.compendium.version
            index = self._index
        if self._store_dir is not None:
            # mirror the splice on disk: only stale shards rewrite.  Disk
            # IO happens outside self._lock (searches append history under
            # it); _store_lock alone serializes writers on the directory.
            with self._store_lock:
                IndexStore.sync(index, self._store_dir, stats=self.storage)

    def sync_index(self) -> None:
        """Publish any pending compendium change (public ``_sync_index``).

        Ingestion calls this eagerly after mutating the compendium so
        the copy-on-write swap (and the manifest-first disk publish)
        happens *inside* the ingest request — a racing query sees either
        the prior index or the fully-published one, never a half-synced
        state deferred to some later search.
        """
        self._sync_index()

    def ingest_dataset(self, dataset) -> str:
        """Add one parsed dataset to the live compendium and publish it.

        Append-only (``Compendium.add`` rejects a duplicate name), then
        an eager :meth:`sync_index`; returns the dataset's durable
        fingerprint.  Callers own any on-disk source bookkeeping — this
        method is purely the in-memory + index-store publication step.
        """
        self.compendium.add(dataset)
        self._sync_index()
        return dataset.fingerprint

    def dataset_tiers(self) -> dict[str, str]:
        """Storage tier per dataset (``"resident"`` / ``"cold"``).

        From the persistent store's committed manifest when one backs
        this service; in-memory-only serving is all ``"resident"`` by
        definition.  Datasets added but not yet synced report resident.
        """
        tiers = {ds.name: "resident" for ds in self.compendium}
        if self._store_dir is not None:
            with self._store_lock:
                stored = IndexStore.tiers(self._store_dir)
            for name, tier in stored.items():
                if name in tiers:
                    tiers[name] = tier
        return tiers

    def demote_cold(self, *, min_hits: int = 1, keep: int = 1) -> tuple[str, ...]:
        """Compress rarely-used datasets' shards into the store's cold tier.

        Victims are datasets whose per-entry hit count in the
        ``_dataset_hits`` LRU (see :meth:`_note_dataset_use`) is below
        ``min_hits`` — i.e. they have not contributed positive weight to
        recent answers.  At least ``keep`` datasets always stay resident.
        On-disk only: the in-RAM index keeps serving its current arrays
        (mmaps of an unlinked file stay valid); the next cold start pays
        decompression for exactly the datasets nobody was using.
        Returns the demoted dataset names.
        """
        if self._store_dir is None or self._index is None:
            return ()
        names = [ds.name for ds in self.compendium]
        victims = [
            name for name in names if self._dataset_hits.entry_hits(name) < min_hits
        ]
        if keep > 0 and len(victims) > max(0, len(names) - keep):
            victims = victims[: max(0, len(names) - keep)]
        if not victims:
            return ()
        with self._store_lock:
            return IndexStore.demote(self._store_dir, victims, stats=self.storage)

    def promote_cold(self, names: Sequence[str] | None = None) -> tuple[str, ...]:
        """Decompress cold shards back to the resident tier (all by default).

        Checksum re-verification happens inside :meth:`IndexStore.promote`;
        a rotten cold shard is quarantined and rebuilt from the bound
        compendium rather than promoted.
        """
        if self._store_dir is None:
            return ()
        if names is None:
            names = [
                name
                for name, tier in IndexStore.tiers(self._store_dir).items()
                if tier == "cold"
            ]
        if not names:
            return ()
        with self._store_lock:
            return IndexStore.promote(
                self._store_dir,
                list(names),
                bind=self.compendium,
                stats=self.storage,
            )

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: Sequence[str],
        *,
        use_cache: bool = True,
        top_k: int | None = None,
        datasets: Sequence[str] | None = None,
    ) -> SpellResult:
        """Raw search result, served from cache when possible.

        ``top_k`` asks for only the first ``k`` ranked genes (selected
        via ``argpartition``; identical to the head of the full ranking).
        ``datasets`` restricts the search to the named datasets.  Both
        are part of the cache key, so truncated or filtered answers never
        masquerade as full ones.
        """
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        if datasets is not None:
            datasets = tuple(str(d) for d in datasets)

        version = self.compendium.version
        extra = self._cache_extra(top_k, datasets)
        with Stopwatch() as sw:
            cached = (
                self._cache.lookup(version, query, extra=extra)
                if (self._cache is not None and use_cache)
                else None
            )
            if cached is not None:
                result = rebind_result(cached, query)
            else:
                self._sync_index()
                if self._index is not None:
                    result = self._index.search(query, top_k=top_k, datasets=datasets)
                else:
                    result = self._engine.search(query, top_k=top_k, datasets=datasets)
                if self._cache is not None and use_cache:
                    self._cache.store(
                        version, query, result, extra=extra, cost=result.total_genes
                    )
        self._note_dataset_use(result)
        with self._lock:
            self._history.append((tuple(query), sw.elapsed))
        return result

    def _note_dataset_use(self, result: SpellResult) -> None:
        """Record which datasets contributed to an answer.

        Feeds :meth:`demote_cold`: every positively-weighted dataset of
        the result (they are ranked descending, so the scan stops at the
        first non-contributor) gets a hit in the ``_dataset_hits`` LRU —
        per-entry hit counts then rank the hot set, and datasets that
        never score are the cold-tier candidates.
        """
        lru = self._dataset_hits
        for ds in result.datasets:
            if ds.weight <= 0.0:
                break
            if ds.name not in lru:
                lru.put(ds.name, True)
            lru.get(ds.name)

    @staticmethod
    def _cache_extra(
        top_k: int | None, datasets: Sequence[str] | None
    ) -> tuple:
        """The non-gene part of a result's cache key (shared by every path)."""
        extra: tuple = ()
        if top_k is not None:
            extra += ("top_k", int(top_k))
        if datasets is not None:
            extra += ("datasets", tuple(sorted(set(datasets))))
        return extra

    # -------------------------------------------------- protocol entry points
    def respond(
        self,
        request: SearchRequest,
        *,
        strict_page: bool = True,
        deadline: Deadline | None = None,
    ) -> SearchResponse:
        """Answer one protocol :class:`~repro.api.protocol.SearchRequest`.

        This is the canonical paged path every transport routes through:
        pagination, ``total_pages`` accounting, and the
        ``PAGE_OUT_OF_RANGE`` check all live in
        :meth:`SearchResponse.from_result`.  With the cache on,
        pagination slices the cached full result, so every page of a
        query shares one cache entry; with the cache off only the first
        ``(page + 1) * page_size`` rows are ranked (``argpartition``
        top-k) instead of sorting the whole gene universe.

        The deadline budget (``deadline`` composed with the request's
        own ``deadline_ms``) is checked before the search starts — the
        in-process scoring kernel is uninterruptible, so an already
        spent budget fails fast rather than committing to the work.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        budget.check("search admission")
        caching = self._cache is not None and request.use_cache
        top_k = request.top_k
        if top_k is None and not caching:
            top_k = (request.page + 1) * request.page_size
        with Stopwatch() as sw:
            result = self.search(
                request.genes,
                use_cache=request.use_cache,
                top_k=top_k,
                datasets=request.datasets,
            )
        return SearchResponse.from_result(
            result, request, elapsed_seconds=sw.elapsed, strict=strict_page
        )

    def iter_result(self, request: ExportRequest, *, deadline: Deadline | None = None):
        """Cursor over one query's *full* ranking in fixed-size slices.

        The deep-export path: one search resolves the whole ranking
        (capped by ``request.top_k``), then the cursor walks the
        :class:`~repro.spell.engine.GeneTable` in ``chunk_size`` slices
        — per-chunk work is two array ``tolist()`` calls off the arena
        ranking, never a per-page :class:`SearchResponse` (no repeated
        cache lookups, no repeated dataset rows, no page accounting).
        The concatenated chunk rows are bit-identical to the
        concatenation of every page of the equivalent paged search.

        Returns an iterator yielding :class:`ExportChunk` objects
        followed by exactly one ``status="ok"`` :class:`ExportTrailer`
        (``checksum``/``n_chunks`` are left for the stream encoder,
        which owns the wire bytes).  The search itself runs *eagerly*,
        so invalid queries raise here — before a transport has
        committed a success status line to the stream.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        budget.check("export admission")
        with Stopwatch() as sw:
            result = self.search(
                request.genes,
                use_cache=request.use_cache,
                top_k=request.top_k,
                datasets=request.datasets,
            )
        return self._iter_chunks(result, request, sw.elapsed)

    @staticmethod
    def _iter_chunks(result: SpellResult, request: ExportRequest, elapsed: float):
        table = result.genes
        exportable = result.total_genes
        if request.top_k is not None:
            exportable = min(exportable, request.top_k)
        exportable = min(exportable, len(table))
        # resume: skip whole chunks already streamed to the client.  The
        # protocol pins resume_offset to a chunk boundary, and chunks are
        # cut at fixed multiples of chunk_size from zero, so the resumed
        # stream's chunk lines are bit-identical to the same-offset lines
        # of an uninterrupted export (same search, same slicing).
        offset = min(request.resume_offset, exportable)
        while offset < exportable:
            stop = min(offset + request.chunk_size, exportable)
            if isinstance(table, GeneTable):
                rows = table.rows(offset, stop)
            else:  # legacy tuple-of-GeneScore results
                rows = [
                    (offset + i + 1, g.gene_id, g.score)
                    for i, g in enumerate(table[offset:stop])
                ]
            yield ExportChunk(offset=offset, gene_rows=tuple(rows))
            offset = stop
        yield ExportTrailer(
            status="ok",
            total_genes=result.total_genes,
            # rows this cursor walked (a resumed cursor skips the prefix);
            # the stream encoder re-counts what actually hit the wire
            total_rows=exportable - min(request.resume_offset, exportable),
            resume_offset=request.resume_offset,
            query=result.query,
            query_used=result.query_used,
            query_missing=result.query_missing,
            dataset_rows=tuple(
                (i + 1, d.name, d.weight)
                for i, d in enumerate(result.datasets[: request.top_datasets])
            ),
            elapsed_seconds=float(elapsed),
        )

    def respond_batch(
        self,
        request: BatchSearchRequest,
        *,
        strict_page: bool = True,
        deadline: Deadline | None = None,
    ) -> BatchSearchResponse:
        """Answer a protocol batch concurrently over the shared index.

        With ``n_procs >= 2`` the batch's cache misses are scattered
        across the process pool (each worker mmap-shares the persistent
        store and scores its slice with the fused batched kernel); cache
        hits are answered inline either way.  Any pool failure falls
        back to the thread path below.  ``scheduler="map"`` uses the
        order-preserving thread pool; ``"steal"`` routes through
        :class:`WorkStealingPool`, which absorbs the imbalance between
        cache hits and cold searches.  Results come back in input order
        on every path.  All-or-nothing: a failing member request fails
        the batch with its error.

        The deadline budget bounds the whole batch (member requests'
        own ``deadline_ms`` can only tighten it); on the process-pool
        path it clamps every gather wait, and a spent budget surfaces
        as ``DeadlineExceeded`` — never as an in-process fallback that
        would blow the same budget again.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        budget.check("batch admission")
        self._sync_index()  # once up front, not per worker

        hits0 = self._cache.hits if self._cache is not None else 0
        misses0 = self._cache.misses if self._cache is not None else 0

        searches = list(request.searches)
        if self._procs_usable():
            with Stopwatch() as sw:
                results = self._respond_batch_procs(searches, strict_page, budget)
            return BatchSearchResponse(
                results=tuple(results),
                total_seconds=sw.elapsed,
                n_workers=self.n_procs,
                cache_hits=(self._cache.hits - hits0)
                if self._cache is not None else 0,
                cache_misses=(self._cache.misses - misses0)
                if self._cache is not None else 0,
            )

        def one(req: SearchRequest) -> SearchResponse:
            return self.respond(req, strict_page=strict_page, deadline=budget)

        with Stopwatch() as sw:
            if request.scheduler == "steal" and self.n_workers > 1:
                results = WorkStealingPool(self.n_workers).map(one, searches)
            else:
                results = parallel_map(one, searches, n_workers=self.n_workers)
        return BatchSearchResponse(
            results=tuple(results),
            total_seconds=sw.elapsed,
            n_workers=self.n_workers,
            cache_hits=(self._cache.hits - hits0) if self._cache is not None else 0,
            cache_misses=(self._cache.misses - misses0) if self._cache is not None else 0,
        )

    # ----------------------------------------------- multi-process batch path
    #: A broken pool is respawned this many times before the service gives
    #: up on multi-process serving (a persistently failing environment
    #: must not pay spawn cost on every batch forever).
    MAX_POOL_RESPAWNS = 3

    def _procs_usable(self) -> bool:
        """Can (and should) this batch take the multi-process path?

        A *broken* pool does not disqualify — ``_ensure_procpool``
        respawns it (transient worker deaths heal); only
        ``_pool_disabled`` (respawn budget exhausted, or spawning
        impossible here) routes batches to the thread path for good.
        """
        return (
            self.n_procs > 1
            and self.use_index
            and self._index is not None
            and self._store_dir is not None
            and not self._pool_disabled
        )

    def _ensure_procpool(self) -> IndexWorkerPool:
        """The live worker pool, respawning a broken one (bounded)."""
        with self._pool_lock:
            if self._procpool is not None and self._procpool.broken:
                self._procpool.close()
                self._procpool = None
                self._pool_respawns += 1
                if self._pool_respawns > self.MAX_POOL_RESPAWNS:
                    self._pool_disabled = True
                    raise WorkerPoolError(
                        f"worker pool failed {self._pool_respawns} times; "
                        "multi-process serving disabled for this service"
                    )
            if self._procpool is None:
                try:
                    self._procpool = IndexWorkerPool(
                        self._store_dir,
                        n_procs=self.n_procs,
                        mmap=True,
                        reply_timeout=self.pool_timeout,
                    )
                except WorkerPoolError:
                    self._pool_disabled = True  # spawn is impossible here
                    raise
            return self._procpool

    def _respond_batch_procs(
        self,
        searches: list[SearchRequest],
        strict_page: bool,
        budget: Deadline,
    ) -> list[SearchResponse]:
        """Scatter the batch's cache misses across the worker processes.

        Cache hits are answered inline (the workers never see them);
        misses are dispatched as :class:`BatchQuery` specs carrying the
        same effective ``top_k`` the in-process path would use, and the
        full results coming back populate the cache exactly as a local
        search would — so the proc path and the thread path are
        indistinguishable to a later query.  If the pool cannot serve
        (spawn failure, dead worker, persistent staleness), the *same*
        pending specs are answered in-process by the batched kernel —
        the inline cache hits are never recomputed and every counter
        (hits, misses, history) moves exactly once per member.
        Member-request errors (bad page, unknown gene) propagate as
        themselves, failing the batch all-or-nothing.
        """
        version = self.compendium.version
        responses: dict[int, SearchResponse] = {}
        pending: list[int] = []
        specs: list[BatchQuery] = []
        plans: list[tuple[bool, int | None, tuple]] = []  # (caching, top_k, extra)
        for idx, req in enumerate(searches):
            caching = self._cache is not None and req.use_cache
            top_k = req.top_k
            if top_k is None and not caching:
                top_k = (req.page + 1) * req.page_size
            extra = self._cache_extra(top_k, req.datasets)
            if caching:
                with Stopwatch() as sw:
                    cached = self._cache.lookup(version, list(req.genes), extra=extra)
                if cached is not None:
                    result = rebind_result(cached, list(req.genes))
                    self._note_dataset_use(result)
                    with self._lock:
                        self._history.append((tuple(req.genes), sw.elapsed))
                    responses[idx] = SearchResponse.from_result(
                        result, req, elapsed_seconds=sw.elapsed, strict=strict_page
                    )
                    continue
            pending.append(idx)
            specs.append(
                BatchQuery(genes=req.genes, top_k=top_k, datasets=req.datasets)
            )
            plans.append((caching, top_k, extra))

        if specs:
            try:
                pool = self._ensure_procpool()
                results, busy = pool.run_batch(
                    self._index.fingerprints(), specs, deadline=budget
                )
                if len(results) != len(specs):  # defensive; a pool bug
                    raise WorkerPoolError(
                        f"pool returned {len(results)} results for "
                        f"{len(specs)} queries"
                    )
            except WorkerPoolError:
                # answers first: the misses run through the same batched
                # kernel in-process (never re-touching the inline hits)
                with Stopwatch() as sw:
                    results = self._index.search_batch(specs)
                busy = sw.elapsed
            per_query = busy / len(results) if results else 0.0
            for idx, (caching, top_k, extra), result in zip(pending, plans, results):
                req = searches[idx]
                if caching:
                    self._cache.store(
                        version, list(req.genes), result,
                        extra=extra, cost=result.total_genes,
                    )
                self._note_dataset_use(result)
                with self._lock:
                    self._history.append((tuple(req.genes), per_query))
                responses[idx] = SearchResponse.from_result(
                    result, req, elapsed_seconds=per_query, strict=strict_page
                )
        return [responses[i] for i in range(len(searches))]

    # ------------------------------------------------------------ legacy shims
    def search_page(
        self,
        query: Sequence[str],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
    ) -> SearchPage:
        """Legacy paginated view; thin shim over :meth:`respond`.

        .. deprecated::
            Build a :class:`~repro.api.protocol.SearchRequest` and call
            :meth:`respond` instead — the protocol path adds
            ``total_pages``, strict page-range checking, and the
            sharded-serving ``partial``/``shards`` fields.

        Keeps the historical contract: invalid arguments raise
        :class:`SearchError` and a page past the end returns an *empty*
        page rather than failing (the protocol path raises
        ``PAGE_OUT_OF_RANGE`` instead).
        """
        warnings.warn(
            "SpellService.search_page is deprecated; build a SearchRequest "
            "and call SpellService.respond",
            DeprecationWarning,
            stacklevel=2,
        )
        if page < 0:
            raise SearchError(f"page must be >= 0, got {page}")
        if page_size < 1:
            raise SearchError(f"page_size must be >= 1, got {page_size}")
        try:
            request = SearchRequest(
                genes=tuple(str(g) for g in query),
                page=page,
                page_size=page_size,
                top_datasets=top_datasets,
                use_cache=use_cache,
            )
        except ApiError as exc:
            raise SearchError(exc.message) from exc
        return _page_from_response(self.respond(request, strict_page=False))

    def search_many(
        self,
        queries: Sequence[Sequence[str]],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
        scheduler: str = "map",
    ) -> BatchSearchResult:
        """Legacy batched entry point; thin shim over :meth:`respond_batch`.

        .. deprecated::
            Build a :class:`~repro.api.protocol.BatchSearchRequest` and
            call :meth:`respond_batch` instead.
        """
        warnings.warn(
            "SpellService.search_many is deprecated; build a "
            "BatchSearchRequest and call SpellService.respond_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        if scheduler not in ("map", "steal"):
            raise SearchError(f"unknown scheduler {scheduler!r}")
        queries = [list(q) for q in queries]
        if not queries:
            raise SearchError("search_many needs at least one query")
        try:
            request = BatchSearchRequest(
                searches=tuple(
                    SearchRequest(
                        genes=tuple(str(g) for g in q),
                        page=page,
                        page_size=page_size,
                        top_datasets=top_datasets,
                        use_cache=use_cache,
                    )
                    for q in queries
                ),
                scheduler=scheduler,
            )
        except ApiError as exc:
            raise SearchError(exc.message) from exc
        response = self.respond_batch(request, strict_page=False)
        return BatchSearchResult(
            pages=tuple(_page_from_response(r) for r in response.results),
            total_seconds=response.total_seconds,
            n_workers=response.n_workers,
            cache_hits=response.cache_hits,
            cache_misses=response.cache_misses,
        )

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release serving resources: the worker pool and any private store.

        Idempotent; the service still answers queries afterwards (the
        in-process paths own no closable state), but multi-process
        serving stays off until a new service is built.
        """
        with self._pool_lock:
            if self._procpool is not None:
                self._procpool.close()
                self._procpool = None
        self.n_procs = 1
        if self._owns_store_dir and self._store_dir is not None:
            shutil.rmtree(self._store_dir, ignore_errors=True)
            self._store_dir = None
            self._owns_store_dir = False

    def __enter__(self) -> "SpellService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ stats
    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._history)

    def register_transport_stats(self, label: str, probe) -> None:
        """Attach a transport's counter snapshot to ``serving_stats``.

        A serving facade (threaded HTTP, asyncio) registers its
        :meth:`~repro.api.transport.TransportStats.snapshot` under a
        facade-specific label; ``/v1/health`` then reports every
        transport fronting this service side by side under the
        append-only ``serving.transport`` field.
        """
        self._transport_probes[str(label)] = probe

    def unregister_transport_stats(self, label: str) -> None:
        self._transport_probes.pop(str(label), None)

    def serving_stats(self) -> dict:
        """Observability snapshot of the batch-serving topology."""
        stats: dict = {"n_workers": self.n_workers, "n_procs": self.n_procs}
        with self._pool_lock:
            pool = self._procpool
            stats["procpool"] = pool.stats() if pool is not None else None
        if self._transport_probes:
            stats["transport"] = {
                label: probe() for label, probe in sorted(self._transport_probes.items())
            }
        return stats

    def mean_latency(self) -> float:
        with self._lock:
            if not self._history:
                raise SearchError("no queries executed yet")
            return sum(t for _, t in self._history) / len(self._history)

    def index_bytes(self) -> int:
        return self._index.nbytes() if self._index is not None else 0

    def cache_stats(self) -> dict[str, int]:
        if self._cache is None:
            return {"entries": 0, "max_entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        return self._cache.stats()

    def storage_stats(self) -> dict:
        """Storage-tier counters for ``/v1/health`` (append-only keys).

        ``resident``/``cold`` gauge the store's current tier split;
        ``promotions``/``demotions``/``quarantined``/``rebuilt``/
        ``corrupt``/``verified``/``cold_loads``/``swept``/
        ``publish_errors`` count lifetime events.  ``persistent`` says
        whether a store directory backs this service at all.
        """
        stats = self.storage.snapshot()
        stats["persistent"] = self._store_dir is not None
        stats["hot_datasets"] = [
            name for name, _ in self._dataset_hits.hottest(5)
        ]
        return stats
