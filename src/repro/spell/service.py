"""SPELL's web-interface facade (the paper's Figure 4), serving-grade.

The deployed SPELL system is a query box over a pre-built compendium;
:class:`SpellService` reproduces that contract and adds the machinery an
interactive service under load needs:

* **Result cache** — an LRU keyed on the canonicalized query plus the
  compendium's version token (:mod:`repro.spell.cache`); repeated or
  permuted queries are answered without touching the index.
* **Batched queries** — :meth:`search_many` fans a batch across threads
  sharing one index (NumPy releases the GIL in the scoring matmuls),
  modelling many concurrent users.
* **Incremental index maintenance** — when the compendium's version
  token moves, the service diffs dataset names and splices shards via
  ``SpellIndex.add_dataset`` / ``remove_dataset`` instead of rebuilding.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.data.compendium import Compendium
from repro.parallel.pmap import parallel_map
from repro.parallel.workqueue import WorkStealingPool
from repro.spell.cache import DEFAULT_CACHE_SIZE, QueryCache, rebind_result
from repro.spell.engine import SpellEngine, SpellResult
from repro.spell.index import SpellIndex
from repro.util.errors import SearchError
from repro.util.timing import Stopwatch

__all__ = ["SearchPage", "BatchSearchResult", "SpellService"]


@dataclass(frozen=True)
class SearchPage:
    """One page of search output, shaped like the Figure 4 web table."""

    query: tuple[str, ...]
    page: int
    page_size: int
    total_genes: int
    gene_rows: tuple[tuple[int, str, float], ...]  # (rank, gene, score)
    dataset_rows: tuple[tuple[int, str, float], ...]  # (rank, dataset, weight)
    elapsed_seconds: float


@dataclass(frozen=True)
class BatchSearchResult:
    """Per-query pages plus aggregate timing for one :meth:`search_many`."""

    pages: tuple[SearchPage, ...]
    total_seconds: float
    n_workers: int
    cache_hits: int  # hits observed during this batch
    cache_misses: int

    @property
    def queries_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return float("inf")
        return len(self.pages) / self.total_seconds


class SpellService:
    """Stateful query service over a (mutable) compendium.

    ``use_index=True`` (default) answers from the precomputed index;
    ``use_index=False`` recomputes correlations per query with the exact
    engine — the cold path the ablation bench compares against.
    ``cache_size=0`` disables result caching (every query recomputes).
    """

    def __init__(
        self,
        compendium: Compendium,
        *,
        use_index: bool = True,
        n_workers: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.compendium = compendium
        self.use_index = bool(use_index)
        self.n_workers = max(1, int(n_workers))
        self._engine = SpellEngine(compendium, n_workers=n_workers)
        self._index = (
            SpellIndex.build(compendium, n_workers=self.n_workers)
            if self.use_index
            else None
        )
        self._indexed_version = compendium.version
        self._cache = QueryCache(cache_size) if cache_size > 0 else None
        self._history: list[tuple[tuple[str, ...], float]] = []
        self._lock = threading.Lock()  # guards history + index maintenance

    # ------------------------------------------------------------ maintenance
    def _sync_index(self) -> None:
        """Bring the index up to the compendium's current version.

        Copy-on-write: ``SpellIndex.updated`` builds a new index reusing
        every unchanged shard (matched by dataset identity, so same-name
        replacements re-normalize) and only then is the reference
        swapped — in-flight searches on the old index stay consistent,
        and nothing is ever fully rebuilt.
        """
        if self._index is None:
            return
        with self._lock:
            if self.compendium.version == self._indexed_version:
                return
            self._index = self._index.updated(self.compendium)
            self._indexed_version = self.compendium.version

    # ----------------------------------------------------------------- search
    def search(self, query: Sequence[str], *, use_cache: bool = True) -> SpellResult:
        """Raw search result (full rankings), served from cache when possible."""
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")

        version = self.compendium.version
        with Stopwatch() as sw:
            cached = (
                self._cache.lookup(version, query)
                if (self._cache is not None and use_cache)
                else None
            )
            if cached is not None:
                result = rebind_result(cached, query)
            else:
                self._sync_index()
                if self._index is not None:
                    result = self._index.search(query)
                else:
                    result = self._engine.search(query)
                if self._cache is not None and use_cache:
                    self._cache.store(version, query, result)
        with self._lock:
            self._history.append((tuple(query), sw.elapsed))
        return result

    def search_page(
        self,
        query: Sequence[str],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
    ) -> SearchPage:
        """Paginated view of a search (what the web UI shows per screen).

        Pagination slices the (possibly cached) full result, so every
        page of a query shares one cache entry.
        """
        if page < 0:
            raise SearchError(f"page must be >= 0, got {page}")
        if page_size < 1:
            raise SearchError(f"page_size must be >= 1, got {page_size}")
        with Stopwatch() as sw:
            result = self.search(query, use_cache=use_cache)
        start = page * page_size
        gene_rows = tuple(
            (start + i + 1, g.gene_id, g.score)
            for i, g in enumerate(result.genes[start : start + page_size])
        )
        dataset_rows = tuple(
            (i + 1, d.name, d.weight) for i, d in enumerate(result.datasets[:top_datasets])
        )
        return SearchPage(
            query=result.query,
            page=page,
            page_size=page_size,
            total_genes=len(result.genes),
            gene_rows=gene_rows,
            dataset_rows=dataset_rows,
            elapsed_seconds=sw.elapsed,
        )

    def search_many(
        self,
        queries: Sequence[Sequence[str]],
        *,
        page: int = 0,
        page_size: int = 20,
        top_datasets: int = 10,
        use_cache: bool = True,
        scheduler: str = "map",
    ) -> BatchSearchResult:
        """Answer a batch of queries concurrently over the shared index.

        ``scheduler="map"`` uses the order-preserving thread pool;
        ``"steal"`` routes through :class:`WorkStealingPool`, which
        absorbs the imbalance between cache hits and cold searches.
        Results come back in input order either way.
        """
        if scheduler not in ("map", "steal"):
            raise SearchError(f"unknown scheduler {scheduler!r}")
        queries = [list(q) for q in queries]
        if not queries:
            raise SearchError("search_many needs at least one query")
        self._sync_index()  # once up front, not per worker

        hits0 = self._cache.hits if self._cache is not None else 0
        misses0 = self._cache.misses if self._cache is not None else 0

        def one(query: list[str]) -> SearchPage:
            return self.search_page(
                query,
                page=page,
                page_size=page_size,
                top_datasets=top_datasets,
                use_cache=use_cache,
            )

        with Stopwatch() as sw:
            if scheduler == "steal" and self.n_workers > 1:
                pages = WorkStealingPool(self.n_workers).map(one, queries)
            else:
                pages = parallel_map(one, queries, n_workers=self.n_workers)
        return BatchSearchResult(
            pages=tuple(pages),
            total_seconds=sw.elapsed,
            n_workers=self.n_workers,
            cache_hits=(self._cache.hits - hits0) if self._cache is not None else 0,
            cache_misses=(self._cache.misses - misses0) if self._cache is not None else 0,
        )

    # ------------------------------------------------------------------ stats
    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._history)

    def mean_latency(self) -> float:
        with self._lock:
            if not self._history:
                raise SearchError("no queries executed yet")
            return sum(t for _, t in self._history) / len(self._history)

    def index_bytes(self) -> int:
        return self._index.nbytes() if self._index is not None else 0

    def cache_stats(self) -> dict[str, int]:
        if self._cache is None:
            return {"entries": 0, "max_entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        return self._cache.stats()
