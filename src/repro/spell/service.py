"""SPELL's web-interface facade (the paper's Figure 4).

The deployed SPELL system is a query box over a pre-built compendium;
:class:`SpellService` reproduces that contract: construct it once over a
compendium (building the index up front), then answer searches with
pagination and timing — the rows a web front-end would render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.compendium import Compendium
from repro.spell.engine import SpellEngine, SpellResult
from repro.spell.index import SpellIndex
from repro.util.errors import SearchError
from repro.util.timing import Stopwatch

__all__ = ["SearchPage", "SpellService"]


@dataclass(frozen=True)
class SearchPage:
    """One page of search output, shaped like the Figure 4 web table."""

    query: tuple[str, ...]
    page: int
    page_size: int
    total_genes: int
    gene_rows: tuple[tuple[int, str, float], ...]  # (rank, gene, score)
    dataset_rows: tuple[tuple[int, str, float], ...]  # (rank, dataset, weight)
    elapsed_seconds: float


class SpellService:
    """Stateful query service over a fixed compendium.

    ``use_index=True`` (default) answers from the precomputed index;
    ``use_index=False`` recomputes correlations per query with the exact
    engine — the cold path the ablation bench compares against.
    """

    def __init__(
        self, compendium: Compendium, *, use_index: bool = True, n_workers: int = 1
    ) -> None:
        self.compendium = compendium
        self.use_index = bool(use_index)
        self._engine = SpellEngine(compendium, n_workers=n_workers)
        self._index = SpellIndex.build(compendium) if self.use_index else None
        self._history: list[tuple[tuple[str, ...], float]] = []

    # ----------------------------------------------------------------- search
    def search(self, query: Sequence[str]) -> SpellResult:
        """Raw search result (full rankings)."""
        with Stopwatch() as sw:
            if self._index is not None:
                result = self._index.search(list(query))
            else:
                result = self._engine.search(list(query))
        self._history.append((tuple(str(g) for g in query), sw.elapsed))
        return result

    def search_page(
        self, query: Sequence[str], *, page: int = 0, page_size: int = 20, top_datasets: int = 10
    ) -> SearchPage:
        """Paginated view of a search (what the web UI shows per screen)."""
        if page < 0:
            raise SearchError(f"page must be >= 0, got {page}")
        if page_size < 1:
            raise SearchError(f"page_size must be >= 1, got {page_size}")
        with Stopwatch() as sw:
            result = (
                self._index.search(list(query))
                if self._index is not None
                else self._engine.search(list(query))
            )
        self._history.append((tuple(str(g) for g in query), sw.elapsed))
        start = page * page_size
        gene_rows = tuple(
            (start + i + 1, g.gene_id, g.score)
            for i, g in enumerate(result.genes[start : start + page_size])
        )
        dataset_rows = tuple(
            (i + 1, d.name, d.weight) for i, d in enumerate(result.datasets[:top_datasets])
        )
        return SearchPage(
            query=result.query,
            page=page,
            page_size=page_size,
            total_genes=len(result.genes),
            gene_rows=gene_rows,
            dataset_rows=dataset_rows,
            elapsed_seconds=sw.elapsed,
        )

    # ------------------------------------------------------------------ stats
    @property
    def query_count(self) -> int:
        return len(self._history)

    def mean_latency(self) -> float:
        if not self._history:
            raise SearchError("no queries executed yet")
        return sum(t for _, t in self._history) / len(self._history)

    def index_bytes(self) -> int:
        return self._index.nbytes() if self._index is not None else 0
